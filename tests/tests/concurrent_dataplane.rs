//! The concurrent controller loop, end to end: packet workers hammer a
//! shared `Network` from multiple threads while a `CompilerSession`
//! recompiles and publishes new configurations mid-flight. Exercises the
//! RCU snapshot path (readers never block on a recompile), state survival
//! across swaps, and the per-batch epoch guarantee (a packet never mixes
//! two configurations).

use snap_core::SolverChoice;
use snap_dataplane::{Network, SwitchConfig, TrafficEngine};
use snap_lang::prelude::*;
use snap_session::CompilerSession;
use snap_topology::generators::campus;
use snap_topology::{PortId, TrafficMatrix};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Count every packet per inport, then send it to `egress`.
fn counting_policy(egress: i64) -> Policy {
    state_incr("count", vec![field(Field::InPort)]).seq(modify(Field::OutPort, Value::Int(egress)))
}

/// A family of *distinct* programs with identical packet-state mappings: the
/// guard threshold is far beyond any count this test can reach, so every
/// version behaves like `counting_policy(6)` — but each version is a real
/// recompile-and-swap. Because the mapping and dependencies are unchanged,
/// the session reuses the placement and the counter's owner never moves,
/// which is what makes the concurrent totals exact.
fn guarded_counting_policy(threshold: i64) -> Policy {
    ite(
        state_test("count", vec![field(Field::InPort)], int(threshold)),
        drop(),
        state_incr("count", vec![field(Field::InPort)]),
    )
    .seq(modify(Field::OutPort, Value::Int(6)))
}

fn campus_session() -> CompilerSession {
    let topo = campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
    CompilerSession::new(topo, tm).with_solver(SolverChoice::Heuristic)
}

#[test]
fn traffic_flows_while_the_session_publishes_new_configs() {
    let mut session = campus_session();
    session
        .compile(&guarded_counting_policy(1_000_000))
        .unwrap();
    let network: Arc<Network> = session.build_shared_network().unwrap();

    const WORKERS: usize = 4;
    const BATCHES: usize = 25;
    const BATCH: usize = 8;
    const SWAPS: usize = 10;

    let published = std::thread::scope(|scope| {
        // Packet workers: each drives batches through its own clone of the
        // shared handle, recording the epochs its batches observed.
        let mut handles = Vec::new();
        for w in 0..WORKERS {
            let network = Arc::clone(&network);
            handles.push(scope.spawn(move || {
                let mut last_epoch = 0u64;
                let mut delivered = 0usize;
                for b in 0..BATCHES {
                    let batch: Vec<(PortId, Packet)> = (0..BATCH)
                        .map(|i| {
                            (
                                PortId(1 + (w + b + i) % 6),
                                Packet::new().with(Field::InPort, 1),
                            )
                        })
                        .collect();
                    let out = network.inject_batch(&batch);
                    // Snapshots are published in order: epochs never run
                    // backwards within a worker.
                    assert!(out.epoch >= last_epoch);
                    last_epoch = out.epoch;
                    for set in out.outputs {
                        let set = set.unwrap();
                        assert_eq!(set.len(), 1);
                        let port = set.iter().next().unwrap().0;
                        assert_eq!(port, PortId(6), "egress from a torn config");
                        delivered += 1;
                    }
                }
                delivered
            }));
        }

        // Controller: recompile and publish concurrently with the traffic.
        // Each version is a distinct program (new threshold) with the same
        // mapping, so placement is reused and the owner stays put.
        let mut published = 0u64;
        for s in 0..SWAPS {
            session
                .update_policy(&guarded_counting_policy(1_000_000 + 1 + s as i64))
                .unwrap();
            let epoch = session.publish(&network).unwrap();
            assert_eq!(epoch, (s + 1) as u64);
            published = epoch;
            std::thread::yield_now();
        }

        let delivered: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(delivered, WORKERS * BATCHES * BATCH);
        published
    });

    assert_eq!(network.current_epoch(), published);
    // The session really did reuse the placement on every recompile: the
    // owner never moved, so each injected packet incremented exactly once
    // and the total is exact despite the concurrent swaps.
    assert_eq!(session.stats().placement_reuses, SWAPS as u64);
    assert_eq!(
        network
            .aggregate_store()
            .get(&"count".into(), &[Value::Int(1)]),
        Value::Int((WORKERS * BATCHES * BATCH) as i64)
    );
}

#[test]
fn traffic_engine_reports_epochs_spanning_concurrent_swaps() {
    let mut session = campus_session();
    session
        .compile(&guarded_counting_policy(1_000_000))
        .unwrap();
    let network = session.build_shared_network().unwrap();

    let workload: Vec<(PortId, Packet)> = (0..400)
        .map(|i| (PortId(1 + i % 6), Packet::new().with(Field::InPort, 1)))
        .collect();

    let report = std::thread::scope(|scope| {
        let engine = TrafficEngine::new(4).with_batch_size(16);
        let net = Arc::clone(&network);
        let traffic = scope.spawn(move || engine.run(&net, &workload));
        for s in 0..6 {
            session
                .update_policy(&guarded_counting_policy(2_000_000 + s))
                .unwrap();
            session.publish(&network).unwrap();
            std::thread::yield_now();
        }
        traffic.join().unwrap()
    });

    assert!(report.is_clean(), "errors: {:?}", report.errors);
    assert_eq!(report.processed, 400);
    assert_eq!(report.total_egress(), 400);
    assert_eq!(report.egress.len(), 4);
    // Every observed epoch is one the controller actually published.
    assert!(report.epochs.iter().all(|&e| e <= 6));
    assert!(!report.epochs.is_empty());
    assert_eq!(
        network
            .aggregate_store()
            .get(&"count".into(), &[Value::Int(1)]),
        Value::Int(400)
    );
}

#[test]
fn aggregate_store_runs_concurrently_with_traffic() {
    // The aggregate view snapshots tables one short lock at a time, so it
    // can be polled while workers are mid-flight; totals observed along the
    // way never exceed the final exact count.
    let mut session = campus_session();
    session.compile(&counting_policy(6)).unwrap();
    let network = session.build_shared_network().unwrap();
    std::mem::drop(session); // static config for this test: only traffic runs

    const TOTAL: usize = 600;
    let workload: Vec<(PortId, Packet)> = (0..TOTAL)
        .map(|i| (PortId(1 + i % 6), Packet::new().with(Field::InPort, 1)))
        .collect();

    std::thread::scope(|scope| {
        let net = Arc::clone(&network);
        let traffic = scope.spawn(move || {
            TrafficEngine::new(3)
                .with_batch_size(8)
                .run(&net, &workload)
        });
        let mut last = 0i64;
        for _ in 0..50 {
            let snapshot_total = network
                .aggregate_store()
                .get(&"count".into(), &[Value::Int(1)])
                .as_int()
                .unwrap();
            assert!(snapshot_total >= last, "counter ran backwards");
            assert!(snapshot_total <= TOTAL as i64);
            last = snapshot_total;
            std::thread::yield_now();
        }
        let report = traffic.join().unwrap();
        assert!(report.is_clean());
    });
    assert_eq!(
        network
            .aggregate_store()
            .get(&"count".into(), &[Value::Int(1)]),
        Value::Int(TOTAL as i64)
    );
}

#[test]
fn swapping_between_manual_configs_preserves_distributed_semantics() {
    // A distributed sanity check under swaps with *hand-placed* state: the
    // variable's owner is pinned, so the concurrent total is exact even
    // though the program (egress port) keeps changing.
    let topo = campus();
    let make_configs = |egress: i64| -> Vec<SwitchConfig> {
        let program = snap_xfdd::compile(&counting_policy(egress)).unwrap();
        let owners = BTreeMap::from([(
            topo.node_by_name("C6").unwrap(),
            BTreeSet::from(["count".into()]),
        )]);
        SwitchConfig::for_topology(&topo, &program, &owners)
    };

    let network = Arc::new(Network::new(topo.clone(), make_configs(6)));
    const TOTAL: usize = 480;
    let workload: Vec<(PortId, Packet)> = (0..TOTAL)
        .map(|i| (PortId(1 + i % 6), Packet::new().with(Field::InPort, 1)))
        .collect();

    std::thread::scope(|scope| {
        let net = Arc::clone(&network);
        let traffic = scope.spawn(move || {
            TrafficEngine::new(4)
                .with_batch_size(12)
                .run(&net, &workload)
        });
        for s in 0..12u64 {
            let epoch = network.swap_configs(make_configs(if s % 2 == 0 { 1 } else { 6 }));
            assert_eq!(epoch, s + 1);
            std::thread::yield_now();
        }
        let report = traffic.join().unwrap();
        assert!(report.is_clean());
        assert_eq!(report.total_egress(), TOTAL);
    });
    assert_eq!(network.current_epoch(), 12);
    assert_eq!(
        network
            .aggregate_store()
            .get(&"count".into(), &[Value::Int(1)]),
        Value::Int(TOTAL as i64)
    );
}
