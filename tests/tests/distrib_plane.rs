//! The distribution plane end to end, per the acceptance criteria: traffic
//! flows through the per-switch agents from multiple worker threads while
//! the controller ships a sequence of two-phase delta commits. Every
//! delivered packet must be consistent with exactly one epoch (the program
//! version stamps its epoch into the packet, and the stamp must match the
//! epoch the packet ran under), per-port egress must drain in FIFO order
//! with per-source order preserved, state totals must be exact, and a
//! working-set edit's delta payload must come in under 25% of the
//! full-config payload on the campus topology.

use snap_apps as apps;
use snap_core::SolverChoice;
use snap_distrib::deploy_in_process;
use snap_lang::prelude::*;
use snap_session::CompilerSession;
use snap_topology::generators::campus;
use snap_topology::{PortId, TrafficMatrix};
use std::collections::BTreeMap;
use std::sync::Arc;

fn campus_session() -> CompilerSession {
    let topo = campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
    CompilerSession::new(topo, tm).with_solver(SolverChoice::Heuristic)
}

/// Version `v` of the running program: marks each (srcport, dstport) flow
/// as seen behind a never-true guard (thresholds far beyond reach, distinct
/// per version so each publish is a real recompile), forwards to port 6,
/// and stamps the version into the packet content — the marker that ties a
/// delivered packet to the program version it ran under. Mapping and
/// dependencies are identical across versions, so the session reuses the
/// placement and the state's owner never moves. The state write is a `set`
/// keyed by the packet's unique (worker, seq) tag, i.e. *idempotent*, so
/// the worker-side retry on a pruned epoch cannot skew the totals.
fn versioned_policy(v: i64) -> Policy {
    ite(
        state_test(
            "seen",
            vec![field(Field::SrcPort), field(Field::DstPort)],
            int(1_000_000 + v),
        ),
        drop(),
        state_set(
            "seen",
            vec![field(Field::SrcPort), field(Field::DstPort)],
            Value::Int(1),
        ),
    )
    .seq(modify(Field::OutPort, Value::Int(6)))
    .seq(modify(Field::Content, Value::Int(v)))
}

#[test]
fn traffic_over_agents_while_the_controller_ships_delta_commits() {
    const WORKERS: usize = 4;
    const PACKETS: usize = 100;
    const COMMITS: u64 = 12; // ≥ 10 delta commits while traffic flows

    let mut deployment = deploy_in_process(campus_session(), 4096);
    // Epoch v runs program version v.
    deployment
        .controller
        .update_policy(&versioned_policy(1))
        .unwrap();
    let network = Arc::clone(&deployment.network);
    assert!(
        network.agents().count() >= 4,
        "campus deploys one agent per switch"
    );

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..WORKERS {
            let network = Arc::clone(&network);
            handles.push(scope.spawn(move || {
                // Epoch monotonicity is a per-agent guarantee: an agent's
                // current epoch never runs backwards, but two *different*
                // ingress agents can legitimately sit one commit apart
                // while the flip wave passes — so track per ingress port.
                let mut last_epoch: BTreeMap<PortId, u64> = BTreeMap::new();
                for i in 0..PACKETS {
                    let pkt = Packet::new()
                        .with(Field::InPort, 1)
                        .with(Field::SrcPort, w as i64)
                        .with(Field::DstPort, i as i64);
                    let ingress = PortId(1 + (w + i) % 6);
                    // A worker descheduled across more than EPOCH_HISTORY
                    // commits can find its stamped epoch pruned mid-flight;
                    // re-injecting re-stamps against the fresh epoch (the
                    // consistency guarantees are per attempt, so retrying
                    // keeps the test deterministic on loaded CI).
                    let out = loop {
                        match network.inject(ingress, &pkt) {
                            Ok(out) => break out,
                            Err(snap_distrib::InjectError::EpochUnavailable { .. }) => continue,
                            Err(e) => panic!("inject failed: {e}"),
                        }
                    };
                    let prev = last_epoch.entry(ingress).or_insert(0);
                    assert!(out.epoch >= *prev, "ingress epoch ran backwards");
                    *prev = out.epoch;
                    assert_eq!(out.backpressure_drops, 0);
                    assert_eq!(out.delivered.len(), 1, "exactly one egress per packet");
                    let (port, delivered) = &out.delivered[0];
                    assert_eq!(*port, PortId(6));
                    // The whole trace is consistent with exactly one epoch:
                    // every leaf of version v stamps v, so a packet that
                    // mixed configurations would carry the wrong stamp for
                    // the epoch it reported.
                    assert_eq!(
                        delivered.get(&Field::Content),
                        Some(&Value::Int(out.epoch as i64)),
                        "packet executed a different version than its epoch"
                    );
                }
            }));
        }

        // The controller ships delta commits concurrently with the traffic.
        for v in 2..=COMMITS + 1 {
            let report = deployment
                .controller
                .update_policy(&versioned_policy(v as i64))
                .unwrap();
            assert_eq!(report.epoch, v);
            assert_eq!(report.resyncs, 0, "steady-state updates are pure deltas");
            std::thread::yield_now();
        }

        for h in handles {
            h.join().unwrap();
        }
    });
    assert_eq!(deployment.controller.epoch(), COMMITS + 1);
    // Placement was reused on every recompile: the owner never moved.
    assert_eq!(
        deployment.controller.session().stats().placement_reuses,
        COMMITS
    );

    // Every injected packet's state write survived all the commits: each
    // (worker, seq) key was seen exactly (idempotently) once, so the total
    // over all keys is exact.
    let store = network.aggregate_store();
    for w in 0..WORKERS {
        for i in 0..PACKETS {
            assert_eq!(
                store.get(
                    &"seen".into(),
                    &[Value::Int(w as i64), Value::Int(i as i64)]
                ),
                Value::Int(1),
                "packet ({w}, {i}) lost its state write"
            );
        }
    }

    // All egress went through port 6's bounded queue: nothing dropped, and
    // the drain is FIFO — globally by sequence number, and per source
    // worker by that worker's injection order.
    assert_eq!(network.total_backpressure(), 0);
    let events = network.drain_port(PortId(6));
    assert_eq!(events.len(), WORKERS * PACKETS);
    let mut last_seq = None;
    let mut last_per_worker: BTreeMap<i64, i64> = BTreeMap::new();
    for e in &events {
        assert!(last_seq.is_none_or(|s| e.seq > s), "per-port FIFO violated");
        last_seq = Some(e.seq);
        let worker = match e.packet.get(&Field::SrcPort) {
            Some(Value::Int(w)) => *w,
            other => panic!("missing worker tag: {other:?}"),
        };
        let seq_in_worker = match e.packet.get(&Field::DstPort) {
            Some(Value::Int(i)) => *i,
            other => panic!("missing per-worker seq: {other:?}"),
        };
        if let Some(prev) = last_per_worker.get(&worker) {
            assert!(
                seq_in_worker > *prev,
                "per-source FIFO violated for worker {worker}"
            );
        }
        last_per_worker.insert(worker, seq_in_worker);
        // Queue events carry the epoch they were processed under.
        assert!(e.epoch >= 1 && e.epoch <= COMMITS + 1);
    }

    deployment.shutdown();
}

#[test]
fn working_set_edit_delta_is_under_a_quarter_of_the_full_payload() {
    let mut deployment = deploy_in_process(campus_session(), 64);
    let calm = apps::dns_tunnel_detect(3).seq(apps::assign_egress(6));
    let attack = apps::dns_tunnel_detect(8).seq(apps::assign_egress(6));

    deployment.controller.update_policy(&calm).unwrap();
    deployment.controller.update_policy(&attack).unwrap();
    // The working-set flip back: every node of the calm program is already
    // mirrored on every switch, so the delta is the header plus a root.
    let flip = deployment.controller.update_policy(&calm).unwrap();
    assert_eq!(flip.new_nodes, 0);
    assert!(
        (flip.delta_bytes as f64) < 0.25 * flip.full_bytes as f64,
        "working-set delta {} B is not under 25% of the full payload {} B",
        flip.delta_bytes,
        flip.full_bytes
    );

    // A *novel* threshold edit still ships less than the full program: only
    // the changed subtree and its recomposition spine are new nodes.
    let novel = deployment
        .controller
        .update_policy(&apps::dns_tunnel_detect(5).seq(apps::assign_egress(6)))
        .unwrap();
    assert!(novel.new_nodes > 0);
    assert!(
        novel.delta_bytes < novel.full_bytes,
        "novel-edit delta {} B did not undercut the full payload {} B",
        novel.delta_bytes,
        novel.full_bytes
    );
    deployment.shutdown();
}

#[test]
fn shared_traffic_engine_drives_distributed_traffic() {
    use snap_dataplane::TrafficEngine;

    // The same N-worker harness that drives the in-process `Network` drives
    // the distribution plane: `DistNetwork` implements `TrafficTarget`, so
    // the engine pumps batched injections through the shared driver while
    // the controller ships delta commits underneath.
    const WORKERS: usize = 4;
    const PACKETS_PER_WORKER: usize = 100;
    // 1 + COMMITS epochs total stays within the agents' EPOCH_HISTORY ring,
    // so no worker can ever find its stamped epoch pruned mid-batch.
    const COMMITS: u64 = 5;

    let mut deployment = deploy_in_process(campus_session(), 4096);
    deployment
        .controller
        .update_policy(&versioned_policy(1))
        .unwrap();
    let network = Arc::clone(&deployment.network);

    // Worker w's shard is a contiguous run entering at its own ingress
    // port, so per-worker epoch monotonicity is exactly the per-agent
    // guarantee (one agent's epoch never runs backwards).
    let load: Vec<(PortId, Packet)> = (0..WORKERS)
        .flat_map(|w| {
            (0..PACKETS_PER_WORKER).map(move |i| {
                (
                    PortId(1 + w),
                    Packet::new()
                        .with(Field::InPort, 1)
                        .with(Field::SrcPort, w as i64)
                        .with(Field::DstPort, i as i64),
                )
            })
        })
        .collect();

    let report = std::thread::scope(|scope| {
        let engine = TrafficEngine::new(WORKERS).with_batch_size(16);
        let net = Arc::clone(&network);
        let traffic = scope.spawn(move || engine.run(&net, &load));
        for v in 2..=COMMITS + 1 {
            deployment
                .controller
                .update_policy(&versioned_policy(v as i64))
                .unwrap();
            std::thread::yield_now();
        }
        traffic.join().unwrap()
    });

    assert!(report.is_clean(), "errors: {:?}", report.errors);
    assert_eq!(report.processed, WORKERS * PACKETS_PER_WORKER);
    assert_eq!(report.total_egress(), WORKERS * PACKETS_PER_WORKER);
    assert!(report.epochs.iter().all(|e| (1..=COMMITS + 1).contains(e)));

    // Per-worker monotone epochs, and — via the version stamp each program
    // writes into the packet — every packet executed exactly the program of
    // the epoch it reported: one configuration end to end, through the
    // shared engine and the batched driver.
    assert_eq!(report.worker_epochs.len(), WORKERS);
    for (w, (epochs, egress)) in report
        .worker_epochs
        .iter()
        .zip(report.egress.iter())
        .enumerate()
    {
        assert_eq!(epochs.len(), PACKETS_PER_WORKER);
        assert!(
            epochs.windows(2).all(|p| p[0] <= p[1]),
            "worker {w} epochs ran backwards: {epochs:?}"
        );
        // One egress event per packet, in shard order, paired with the
        // epoch the engine recorded for that packet.
        assert_eq!(egress.len(), PACKETS_PER_WORKER);
        for (k, ((port, pkt), epoch)) in egress.iter().zip(epochs).enumerate() {
            assert_eq!(*port, PortId(6));
            assert_eq!(
                pkt.get(&Field::Content),
                Some(&Value::Int(*epoch as i64)),
                "worker {w} packet {k} executed a different version than its epoch"
            );
        }
    }

    // Exact state totals: each (worker, seq) key was set exactly once.
    let store = network.aggregate_store();
    for w in 0..WORKERS {
        for i in 0..PACKETS_PER_WORKER {
            assert_eq!(
                store.get(
                    &"seen".into(),
                    &[Value::Int(w as i64), Value::Int(i as i64)]
                ),
                Value::Int(1),
                "packet ({w}, {i}) lost its state write"
            );
        }
    }

    // All egress also landed in port 6's bounded queue, stamped with its
    // epoch, nothing tail-dropped.
    assert_eq!(network.total_backpressure(), 0);
    let events = network.drain_port(PortId(6));
    assert_eq!(events.len(), WORKERS * PACKETS_PER_WORKER);
    let mut last_seq = None;
    for e in &events {
        assert!(last_seq.is_none_or(|s| e.seq > s), "per-port FIFO violated");
        last_seq = Some(e.seq);
        assert!(e.epoch >= 1 && e.epoch <= COMMITS + 1);
    }

    deployment.shutdown();
}
