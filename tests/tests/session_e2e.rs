//! End-to-end controller loop: a long-lived `CompilerSession` driving a
//! running `Network` through policy edits, traffic changes and pool GC,
//! checked against the one-big-switch semantics after every swap — plus
//! controller→switch distribution of the program over the wire format.

use snap_apps as apps;
use snap_lang::prelude::*;
use snap_session::{CompilerSession, SessionOptions};
use snap_topology::generators::campus;
use snap_topology::{PortId, TrafficMatrix};
use snap_xfdd::{decode_diagram, encode_diagram};
use std::collections::BTreeSet;

fn running_example(threshold: i64) -> Policy {
    apps::dns_tunnel_detect(threshold).seq(apps::assign_egress(6))
}

fn dns_packet(client: &Value, rdata: Value) -> Packet {
    Packet::new()
        .with(Field::SrcIp, Value::ip(8, 8, 8, 8))
        .with(Field::DstIp, client.clone())
        .with(Field::SrcPort, 53)
        .with(Field::DnsRdata, rdata)
}

#[test]
fn controller_loop_with_policy_edits_traffic_changes_and_gc() {
    let topo = campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
    let mut session = CompilerSession::new(topo, tm)
        .with_solver(snap_core::SolverChoice::Heuristic)
        .with_options(SessionOptions {
            solver: snap_core::SolverChoice::Heuristic,
            gc_threshold: 2_000,
            ..SessionOptions::default()
        });

    // Boot: cold compile, bring the network up.
    session.compile(&running_example(2)).unwrap();
    let network = session.build_network().unwrap();

    // Reference one-big-switch state, kept in lockstep with the network.
    let mut obs_store = Store::new();
    let mut policy = running_example(2);

    let client = Value::ip(10, 0, 6, 77);
    let mut seq = 0u8;
    let mut drive =
        |network: &snap_dataplane::Network, obs_store: &mut Store, policy: &Policy, n: usize| {
            for _ in 0..n {
                seq += 1;
                let pkt = dns_packet(&client, Value::ip(9, 9, 9, seq));
                let obs = eval(policy, obs_store, &pkt).unwrap();
                *obs_store = obs.store;
                let out = network.inject(PortId(1), &pkt).unwrap();
                let pkts: BTreeSet<Packet> = out.into_iter().map(|(_, p)| p).collect();
                assert_eq!(pkts, obs.packets, "network and OBS disagree");
            }
        };

    drive(&network, &mut obs_store, &policy, 1);

    // Controller loop: alternate policy edits (threshold bumps) and traffic
    // updates, swapping configs into the running network each time. The
    // per-switch state must survive every swap and keep matching OBS.
    for round in 0..6 {
        if round % 2 == 0 {
            policy = running_example(3 + round);
            session.update_policy(&policy).unwrap();
        } else {
            let tm = TrafficMatrix::gravity(session.topology(), 700.0 + round as f64, round as u64);
            session.update_traffic(tm).unwrap();
        }
        let epoch_before = network.current_epoch();
        session.apply(&network).unwrap();
        assert_eq!(network.current_epoch(), epoch_before + 1);
        drive(&network, &mut obs_store, &policy, 2);
    }
    assert_eq!(network.aggregate_store(), obs_store);

    // GC the session pool and keep going: still correct after compaction.
    let report = session.compact_now();
    assert!(report.nodes_after <= report.nodes_before);
    policy = running_example(50);
    session.update_policy(&policy).unwrap();
    session.apply(&network).unwrap();
    drive(&network, &mut obs_store, &policy, 2);
    assert_eq!(network.aggregate_store(), obs_store);

    // The session did real incremental work along the way.
    let stats = session.stats();
    assert!(stats.subtree_hits > 0);
    assert!(stats.placement_reuses > 0);
    assert!(stats.reroutes > 0);
}

#[test]
fn program_distribution_over_the_wire_preserves_semantics() {
    // Controller side: compile in a session, freeze, encode.
    let topo = campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
    let mut session =
        CompilerSession::new(topo, tm).with_solver(snap_core::SolverChoice::Heuristic);
    let compiled = session.compile(&running_example(3)).unwrap();
    let bytes = encode_diagram(compiled.xfdd.pool(), compiled.xfdd.root());

    // Switch side: decode into a fresh arena and execute.
    let (pool, root) = decode_diagram(&bytes).unwrap();
    let store = Store::new();
    let pkt = dns_packet(&Value::ip(10, 0, 6, 9), Value::ip(1, 2, 3, 4));
    assert_eq!(
        pool.evaluate(root, &pkt, &store).unwrap(),
        compiled.xfdd.evaluate(&pkt, &store).unwrap()
    );
    // The decoded arena is exactly the reachable part of the original.
    assert_eq!(pool.size(root), compiled.xfdd.size());
}
