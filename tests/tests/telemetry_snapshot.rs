//! The acceptance scenario for the telemetry plane: one
//! `MetricsSnapshot::to_json()` from a campus `DistNetwork` run contains
//! per-switch packet / hop / state-write counters, egress queue stats,
//! wave-prefix survivor ratios, at least one sampled end-to-end packet
//! trace, and the commit event log for every epoch.

use snap_core::SolverChoice;
use snap_dataplane::TrafficEngine;
use snap_lang::prelude::*;
use snap_session::CompilerSession;
use snap_telemetry::CommitEvent;
use snap_topology::generators::campus;
use snap_topology::{PortId, TrafficMatrix};

fn counting_policy(threshold: i64) -> Policy {
    ite(
        state_test("count", vec![field(Field::InPort)], int(threshold)),
        drop(),
        state_incr("count", vec![field(Field::InPort)]),
    )
    .seq(modify(Field::OutPort, Value::Int(6)))
}

#[test]
fn campus_distributed_snapshot_is_complete() {
    let topo = campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
    let session = CompilerSession::new(topo, tm).with_solver(SolverChoice::Heuristic);
    let mut deployment = snap_distrib::deploy_in_process(session, 4096);

    // Sample aggressively so a short run is guaranteed a full trace.
    deployment
        .network
        .telemetry()
        .unwrap()
        .telemetry()
        .tracer()
        .set_every(10);

    // Two distributed commits (a policy update and its follow-up), then a
    // multi-worker traffic run against the committed epoch.
    deployment
        .controller
        .update_policy(&counting_policy(1_000_000))
        .unwrap();
    deployment
        .controller
        .update_policy(&counting_policy(2_000_000))
        .unwrap();
    let committed = deployment.controller.epoch();
    assert_eq!(committed, 2);

    let load: Vec<(PortId, Packet)> = (0..300)
        .map(|i| (PortId(1 + i % 6), Packet::new().with(Field::InPort, 1)))
        .collect();
    let report = TrafficEngine::new(4)
        .with_batch_size(16)
        .run(deployment.network.as_ref(), &load);
    assert!(report.is_clean(), "errors: {:?}", report.errors);

    let snap = deployment.network.metrics_snapshot();

    // Per-switch counters, with non-zero totals.
    for family in ["switch.packets", "switch.hops", "switch.state_writes"] {
        let total: u64 = snap.families[family].iter().map(|(_, v)| v).sum();
        assert!(total > 0, "{family} is empty");
    }
    // Egress queue stats for the delivery switch's agent (port 6 — the CS
    // department — hangs off D4 in the campus topology).
    let enqueued: u64 = snap.families["egress.D4.enqueued"]
        .iter()
        .map(|(_, v)| v)
        .sum();
    assert_eq!(enqueued, 300);
    let depth: u64 = snap.families["egress.D4.depth"]
        .iter()
        .map(|(_, v)| v)
        .sum();
    assert_eq!(depth, 300, "nothing drained: depth equals enqueued");
    // Wave-prefix survivor ratio is well-formed.
    let wp = snap.counters["driver.wave_prefix.packets"];
    let ws = snap.counters["driver.wave_prefix.survivors"];
    assert!(wp > 0 && ws <= wp);
    // At least one sampled end-to-end trace, with hops and an egress.
    assert!(!snap.traces.is_empty(), "no packet trace sampled");
    let trace = snap
        .traces
        .iter()
        .find(|t| t.egress.is_some())
        .expect("a delivered packet was sampled");
    assert!(!trace.hops.is_empty());
    assert!(trace.hops.iter().all(|h| h.epoch == trace.ingress_epoch));
    assert!(!trace.hops.last().unwrap().outcome.is_empty());
    // The commit event log covers every epoch: one prepare and one commit
    // per distributed update.
    for epoch in 1..=committed {
        assert!(
            snap.events.iter().any(|r| r.event.epoch() == epoch
                && matches!(r.event, CommitEvent::Prepare { .. })),
            "no prepare event for epoch {epoch}"
        );
        let commit = snap
            .events
            .iter()
            .find(|r| r.event.epoch() == epoch && matches!(r.event, CommitEvent::Commit { .. }))
            .unwrap_or_else(|| panic!("no commit event for epoch {epoch}"));
        if let CommitEvent::Commit { per_agent, .. } = &commit.event {
            assert_eq!(
                per_agent.agents(),
                deployment.controller.agent_count(),
                "per-agent timings incomplete"
            );
        }
    }

    // All of it reachable from the single JSON export.
    let json = snap.to_json();
    for needle in [
        "\"switch.packets\"",
        "\"switch.hops\"",
        "\"switch.state_writes\"",
        "\"egress.D4.enqueued\"",
        "\"driver.wave_prefix.survivors\"",
        "\"traces\"",
        "\"kind\": \"prepare\"",
        "\"kind\": \"commit\"",
        "\"session.compiles\"",
        "\"commit.prepare_us\"",
    ] {
        assert!(json.contains(needle), "snapshot JSON lacks {needle}");
    }

    deployment.shutdown();
}
