//! Cross-crate integration tests: the full pipeline — language front end,
//! xFDD translation, placement/routing, rule generation and distributed
//! execution — exercised together on the campus topology.

use snap_apps as apps;
use snap_core::{Compiler, SolverChoice};
use snap_dataplane::NetAsmProgram;
use snap_lang::prelude::*;
use snap_topology::{generators, PortId, TrafficMatrix};
use std::collections::BTreeSet;

fn campus_compiler() -> Compiler {
    let topo = generators::campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 11);
    Compiler::new(topo, tm).with_solver(SolverChoice::Heuristic)
}

#[test]
fn all_catalogue_applications_compile_on_the_campus_topology() {
    let compiler = campus_compiler();
    for (name, policy) in apps::catalogue() {
        let program = policy.seq(apps::assign_egress(6));
        let compiled = compiler
            .compile(&program)
            .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        // Every state variable got exactly one location.
        assert_eq!(
            compiled.placement.placement.len(),
            compiled.deps.variables.len(),
            "{name}: every variable must be placed"
        );
        // Paths visit the needed variables in dependency order.
        let order = compiled.deps.var_order();
        for (u, v, vars) in compiled.mapping.iter() {
            if compiler.traffic.get(u, v) <= 0.0 {
                continue;
            }
            let mut sorted: Vec<_> = vars.iter().cloned().collect();
            sorted.sort_by_key(|s| order.rank(s));
            assert!(
                compiled.placement.path_respects_order(u, v, &sorted),
                "{name}: path {u:?}->{v:?} must visit {sorted:?} in order"
            );
        }
    }
}

#[test]
fn parsed_program_compiles_and_runs_like_the_built_one() {
    let src = r#"
        // A stateful firewall for the CS department, in surface syntax.
        if srcip = 10.0.6.0/24 then
            established[srcip][dstip] <- True
        else
            if dstip = 10.0.6.0/24 then
                (if established[dstip][srcip] then id else drop)
            else id
    "#;
    let parsed = parse_policy(src).expect("parses");
    let built = apps::stateful_firewall();
    // Structurally different formulations, semantically the same on a trace.
    let inside = Value::ip(10, 0, 6, 1);
    let outside = Value::ip(1, 2, 3, 4);
    let trace = vec![
        Packet::new()
            .with(Field::SrcIp, outside.clone())
            .with(Field::DstIp, inside.clone()),
        Packet::new()
            .with(Field::SrcIp, inside.clone())
            .with(Field::DstIp, outside.clone()),
        Packet::new()
            .with(Field::SrcIp, outside)
            .with(Field::DstIp, inside),
    ];
    let (s1, o1) = snap_lang::eval_trace(&parsed, &Store::new(), &trace).unwrap();
    let (s2, o2) = snap_lang::eval_trace(&built, &Store::new(), &trace).unwrap();
    assert_eq!(o1, o2);
    assert_eq!(s1, s2);

    // And the parsed program goes through the whole compiler.
    let compiler = campus_compiler();
    let compiled = compiler
        .compile(&parsed.seq(apps::assign_egress(6)))
        .expect("parsed program compiles");
    assert_eq!(compiled.placement.placement.len(), 1);
}

#[test]
fn distributed_execution_equals_obs_for_the_stateful_firewall() {
    let compiler = campus_compiler();
    let program = apps::stateful_firewall().seq(apps::assign_egress(6));
    let compiled = compiler.compile(&program).unwrap();
    let network = compiler.build_network(&compiled);

    let inside = Value::ip(10, 0, 6, 10);
    let outside = Value::ip(10, 0, 2, 20);
    let trace = vec![
        (
            PortId(2),
            Packet::new()
                .with(Field::SrcIp, outside.clone())
                .with(Field::DstIp, inside.clone()),
        ),
        (
            PortId(6),
            Packet::new()
                .with(Field::SrcIp, inside.clone())
                .with(Field::DstIp, outside.clone()),
        ),
        (
            PortId(2),
            Packet::new()
                .with(Field::SrcIp, outside)
                .with(Field::DstIp, inside),
        ),
    ];

    let mut store = Store::new();
    let mut obs = Vec::new();
    for (_, pkt) in &trace {
        let r = snap_lang::eval(&program, &store, pkt).unwrap();
        store = r.store;
        obs.push(r.packets);
    }
    let dist = network.inject_trace(&trace).unwrap();
    for (d, o) in dist.iter().zip(obs.iter()) {
        let pkts: BTreeSet<Packet> = d.iter().map(|(_, p)| p.clone()).collect();
        assert_eq!(&pkts, o);
    }
    assert_eq!(network.aggregate_store(), store);
}

#[test]
fn netasm_lowering_matches_xfdd_for_several_applications() {
    let sample_packets = vec![
        Packet::new()
            .with(Field::SrcIp, Value::ip(10, 0, 6, 1))
            .with(Field::DstIp, Value::ip(10, 0, 2, 2))
            .with(Field::SrcPort, 53)
            .with(Field::DstPort, 9000)
            .with(Field::Proto, 17)
            .with(Field::InPort, 6)
            .with(Field::TcpFlags, Value::sym("SYN"))
            .with(Field::DnsRdata, Value::ip(9, 9, 9, 9))
            .with(Field::DnsQname, Value::str("example.com"))
            .with(Field::DnsTtl, 300),
        Packet::new()
            .with(Field::SrcIp, Value::ip(10, 0, 1, 7))
            .with(Field::DstIp, Value::ip(10, 0, 6, 3))
            .with(Field::SrcPort, 5000)
            .with(Field::DstPort, 53)
            .with(Field::Proto, 6)
            .with(Field::InPort, 1)
            .with(Field::TcpFlags, Value::sym("ACK"))
            .with(Field::DnsRdata, Value::ip(8, 8, 8, 8))
            .with(Field::DnsQname, Value::str("tunnel.evil"))
            .with(Field::DnsTtl, 60),
    ];
    for (name, policy) in apps::catalogue().into_iter().take(8) {
        let xfdd = snap_xfdd::compile(&policy).unwrap();
        let asm = NetAsmProgram::lower(&xfdd);
        let mut store_a = Store::new();
        let mut store_b = Store::new();
        for pkt in &sample_packets {
            let a = xfdd.evaluate(pkt, &store_a);
            let b = asm.execute(pkt, &store_b);
            match (a, b) {
                (Ok((pa, sa)), Ok((pb, sb))) => {
                    assert_eq!(pa, pb, "{name}: packets differ");
                    assert_eq!(sa, sb, "{name}: stores differ");
                    store_a = sa;
                    store_b = sb;
                }
                (Err(_), Err(_)) => {}
                (a, b) => panic!("{name}: one representation failed: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn te_reroute_after_traffic_shift_preserves_state_traversal() {
    let compiler = campus_compiler();
    let program = apps::dns_tunnel_detect(4).seq(apps::assign_egress(6));
    let compiled = compiler.compile(&program).unwrap();
    let shifted = TrafficMatrix::gravity(&compiler.topology, 2_000.0, 77);
    let (updated, _) = compiler.reroute(&compiled, &shifted);
    let order = compiled.deps.var_order();
    for (u, v, vars) in compiled.mapping.iter() {
        if shifted.get(u, v) <= 0.0 {
            continue;
        }
        let mut sorted: Vec<_> = vars.iter().cloned().collect();
        sorted.sort_by_key(|s| order.rank(s));
        assert!(updated.placement.path_respects_order(u, v, &sorted));
    }
}
