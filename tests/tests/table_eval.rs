//! Regression corpus for the table-compiled evaluator: every application in
//! the snap-apps catalogue, compiled to an xFDD, flattened and then
//! table-compiled, must evaluate exactly like the flat program it was
//! lowered from — on realistic packets, with state evolving across packets
//! so the stateful suffixes are actually exercised, and from every possible
//! packet-tag entry point (mid-chain resumes included).

use snap_apps as apps;
use snap_lang::prelude::*;
use snap_xfdd::TableProgram;

/// Deterministic mini-generator for sample packets exercising the catalogue
/// policies (header fields the Table 3 applications actually test).
fn sample_packets() -> Vec<Packet> {
    let mut out = Vec::new();
    for i in 0..8u8 {
        out.push(
            Packet::new()
                .with(Field::SrcIp, Value::ip(10, 0, 1 + (i % 3), 7))
                .with(Field::DstIp, Value::ip(10, 0, 6 - (i % 3), 9))
                .with(
                    Field::SrcPort,
                    if i % 2 == 0 { 53 } else { 5000 + i as i64 },
                )
                .with(Field::DstPort, if i % 3 == 0 { 53 } else { 80 })
                .with(Field::Proto, if i % 2 == 0 { 17 } else { 6 })
                .with(Field::InPort, 1 + (i % 6) as i64)
                .with(
                    Field::TcpFlags,
                    Value::sym(if i % 2 == 0 { "SYN" } else { "ACK" }),
                )
                .with(Field::DnsRdata, Value::ip(9, 9, 9, i))
                .with(Field::DnsQname, Value::str("example.com"))
                .with(Field::DnsTtl, 60 + (i % 2) as i64),
        );
    }
    out
}

#[test]
fn table_programs_match_flat_programs_across_the_catalogue() {
    let packets = sample_packets();
    for (name, policy) in apps::catalogue() {
        let program = policy.seq(apps::assign_egress(6));
        let xfdd = snap_xfdd::compile(&program)
            .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        let flat = xfdd.flatten();
        let tables = TableProgram::compile(&flat);

        // State threads through the packet sequence: the store produced by
        // packet i is the input store for packet i+1, so firewall-style
        // "second packet sees the hole punched by the first" paths run.
        let mut store = Store::new();
        for (i, pkt) in packets.iter().enumerate() {
            let via_flat = flat.evaluate(pkt, &store);
            let via_tables = tables.evaluate(&flat, pkt, &store);
            assert_eq!(
                via_flat, via_tables,
                "{name}: evaluation diverged on packet {i}"
            );
            if let Ok((_, next)) = via_tables {
                store = next;
            }
        }
    }
}

#[test]
fn table_walks_match_flat_walks_from_every_entry_point() {
    // Packet tags can name any branch in the program; a tag minted on one
    // switch may resume inside a collapsed same-field run on another.
    let packets = sample_packets();
    for (name, policy) in apps::catalogue() {
        let program = policy.seq(apps::assign_egress(6));
        let xfdd = snap_xfdd::compile(&program)
            .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        let flat = xfdd.flatten();
        let tables = TableProgram::compile(&flat);
        let store = Store::new();
        for pkt in packets.iter().take(3) {
            for i in 0..flat.num_branches() {
                let from = flat.branch_id(i);
                assert_eq!(
                    flat.walk(from, pkt, &store),
                    tables.walk(&flat, from, pkt, &store),
                    "{name}: walk from branch {i} diverged"
                );
            }
        }
    }
}

#[test]
fn the_catalogue_actually_produces_dispatch_tables() {
    // Sanity that the corpus exercises the tentpole: across the catalogue,
    // table compilation must find same-field runs to collapse — otherwise
    // these regressions test nothing.
    let mut total_stages = 0usize;
    let mut total_collapsed = 0usize;
    for (name, policy) in apps::catalogue() {
        let program = policy.seq(apps::assign_egress(6));
        let xfdd = snap_xfdd::compile(&program)
            .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        let flat = xfdd.flatten();
        let tables = TableProgram::compile(&flat);
        let stats = tables.stats();
        total_stages += stats.stages;
        total_collapsed += stats.collapsed_tests;
        println!(
            "{name}: {} branches -> {} stages ({} tests collapsed, longest chain {})",
            flat.num_branches(),
            stats.stages,
            stats.collapsed_tests,
            stats.longest_chain
        );
    }
    assert!(
        total_stages > 0,
        "catalogue produced no dispatch stages at all"
    );
    assert!(
        total_collapsed > total_stages,
        "stages should collapse more than one test each on average \
         ({total_collapsed} collapsed over {total_stages} stages)"
    );
}
