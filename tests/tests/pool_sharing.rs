//! Hash-consing effectiveness and correctness across the full application
//! catalogue: the arena representation must store strictly fewer nodes than
//! the tree baseline on the campus workload, behave identically to the
//! formal semantics, and share a single pool across every switch of the
//! compiled network.

use snap_apps as apps;
use snap_core::{Compiler, SolverChoice};
use snap_lang::prelude::*;
use snap_topology::{generators, TrafficMatrix};

/// Deterministic mini-generator for sample packets exercising the catalogue
/// policies (header fields the Table 3 applications actually test).
fn sample_packets() -> Vec<Packet> {
    let mut out = Vec::new();
    for i in 0..6u8 {
        out.push(
            Packet::new()
                .with(Field::SrcIp, Value::ip(10, 0, 1 + (i % 3), 7))
                .with(Field::DstIp, Value::ip(10, 0, 6 - (i % 3), 9))
                .with(
                    Field::SrcPort,
                    if i % 2 == 0 { 53 } else { 5000 + i as i64 },
                )
                .with(Field::DstPort, if i % 3 == 0 { 53 } else { 80 })
                .with(Field::Proto, if i % 2 == 0 { 17 } else { 6 })
                .with(Field::InPort, 1 + (i % 6) as i64)
                .with(
                    Field::TcpFlags,
                    Value::sym(if i % 2 == 0 { "SYN" } else { "ACK" }),
                )
                .with(Field::DnsRdata, Value::ip(9, 9, 9, i))
                .with(Field::DnsQname, Value::str("example.com"))
                .with(Field::DnsTtl, 60 + i as i64),
        );
    }
    out
}

#[test]
fn catalogue_on_campus_stores_strictly_fewer_nodes_than_the_tree_baseline() {
    // The acceptance bar for the hash-consing refactor: compiling the full
    // snap-apps catalogue (each app composed with egress assignment, as on
    // the campus topology) must yield strictly fewer interned nodes than the
    // old tree representation materialized.
    let mut total_arena: u64 = 0;
    let mut total_tree: u64 = 0;
    for (name, policy) in apps::catalogue() {
        let program = policy.seq(apps::assign_egress(6));
        let xfdd = snap_xfdd::compile(&program)
            .unwrap_or_else(|e| panic!("{name} failed to compile: {e}"));
        let arena = xfdd.size() as u64;
        let tree = xfdd.tree_size();
        assert!(
            arena <= tree,
            "{name}: arena {arena} nodes exceeds tree baseline {tree}"
        );
        total_arena += arena;
        total_tree += tree;
    }
    assert!(
        total_arena < total_tree,
        "expected strict sharing across the catalogue: arena {total_arena} vs tree {total_tree}"
    );
    // The campus workload shares heavily; make the margin visible in test
    // output when run with --nocapture.
    println!(
        "catalogue on campus: {total_arena} interned nodes vs {total_tree} tree nodes \
         ({:.1}x smaller)",
        total_tree as f64 / total_arena as f64
    );
}

#[test]
fn interned_diagrams_match_eval_across_the_catalogue() {
    // Semantic identity of the pooled representation with the formal
    // semantics, on real applications rather than random programs.
    let packets = sample_packets();
    for (name, policy) in apps::catalogue() {
        let xfdd = snap_xfdd::compile(&policy).unwrap();
        let mut store_eval = Store::new();
        let mut store_xfdd = Store::new();
        for pkt in &packets {
            let reference = snap_lang::eval(&policy, &store_eval, pkt);
            let pooled = xfdd.evaluate(pkt, &store_xfdd);
            match (reference, pooled) {
                (Ok(r), Ok((pkts, store))) => {
                    assert_eq!(pkts, r.packets, "{name}: packet sets differ");
                    assert_eq!(store, r.store, "{name}: stores differ");
                    store_eval = r.store;
                    store_xfdd = store;
                }
                (Err(_), Err(_)) => {}
                (r, p) => panic!("{name}: one representation failed: {r:?} vs {p:?}"),
            }
        }
    }
}

#[test]
fn every_switch_shares_one_interned_pool() {
    // Rule generation hands the full diagram to every switch (§4.5); with
    // hash-consing that must be the *same* arena, not per-switch copies.
    let topo = generators::campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 3);
    let compiler = Compiler::new(topo, tm).with_solver(SolverChoice::Heuristic);
    let program = apps::dns_tunnel_detect(5).seq(apps::assign_egress(6));
    let compiled = compiler.compile(&program).unwrap();
    let pool = compiled.xfdd.pool() as *const _;
    assert!(!compiled.rules.configs.is_empty());
    for config in &compiled.rules.configs {
        assert!(
            std::ptr::eq(config.program.pool() as *const _, pool),
            "switch {:?} holds a different pool",
            config.node
        );
        assert_eq!(config.program.root(), compiled.xfdd.root());
    }
}
