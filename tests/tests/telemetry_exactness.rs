//! Metric exactness under concurrency, over both planes.
//!
//! The telemetry registry shards hot-path counters per worker and only
//! aggregates on read; the contract is that once the workers have joined,
//! the sums are *exact*. These tests pin that down by driving the same
//! workload through the multi-worker `TrafficEngine` and comparing the
//! aggregated per-switch packet / hop / state-write counters against
//! totals computed independently — the workload size, and the state
//! counter the existing invariant tests already prove exact via
//! `aggregate_store`.

use snap_core::SolverChoice;
use snap_dataplane::{Network, PlaneTelemetry, SwitchConfig, TrafficEngine};
use snap_lang::prelude::*;
use snap_session::CompilerSession;
use snap_telemetry::MetricsSnapshot;
use snap_topology::generators::campus;
use snap_topology::{PortId, TrafficMatrix};
use std::collections::{BTreeMap, BTreeSet};

const TOTAL: usize = 600;

/// Count every packet per inport on C6, then deliver via port 6.
fn counting_policy() -> Policy {
    state_incr("count", vec![field(Field::InPort)]).seq(modify(Field::OutPort, Value::Int(6)))
}

fn campus_network() -> Network {
    let topo = campus();
    let program = snap_xfdd::compile(&counting_policy()).unwrap();
    let owners = BTreeMap::from([(
        topo.node_by_name("C6").unwrap(),
        BTreeSet::from(["count".into()]),
    )]);
    let configs = SwitchConfig::for_topology(&topo, &program, &owners);
    Network::new(topo, configs)
}

fn workload() -> Vec<(PortId, Packet)> {
    (0..TOTAL)
        .map(|i| (PortId(1 + i % 6), Packet::new().with(Field::InPort, 1)))
        .collect()
}

fn family_total(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.families[name].iter().map(|(_, v)| v).sum()
}

/// The independently exact totals: every packet counted, every state
/// write landed on C6, and every counter family consistent with them.
fn assert_exact(snap: &MetricsSnapshot, state_writes_per_packet: u64) {
    assert_eq!(snap.counters["driver.packets"], TOTAL as u64);
    assert_eq!(snap.counters["driver.deliveries"], TOTAL as u64);
    assert_eq!(snap.counters["driver.policy_drops"], 0);
    assert_eq!(snap.counters["driver.errors"], 0);
    assert_eq!(family_total(snap, "switch.packets"), TOTAL as u64);
    assert_eq!(
        family_total(snap, "switch.state_writes"),
        TOTAL as u64 * state_writes_per_packet
    );
    // Each state variable lives on exactly one switch, so one row — the
    // counter's owner, wherever placement put it — carries the entire
    // family.
    let max_writes = snap.families["switch.state_writes"]
        .iter()
        .map(|(_, v)| *v)
        .max()
        .unwrap();
    assert_eq!(max_writes, TOTAL as u64 * state_writes_per_packet);
    // Every locked-phase visit is attributed to exactly one switch, and
    // every delivered packet visited at least its state owner.
    assert!(family_total(snap, "switch.hops") >= TOTAL as u64);
    // The delivery histogram saw every delivered packet.
    assert_eq!(snap.histograms["packet.delivery_hops"].count, TOTAL as u64);
    // Wave-prefix accounting is consistent: survivors are a subset.
    assert!(
        snap.counters["driver.wave_prefix.survivors"]
            <= snap.counters["driver.wave_prefix.packets"]
    );
}

#[test]
fn network_counters_are_exact_across_workers() {
    let load = workload();

    let single = campus_network();
    TrafficEngine::new(1)
        .with_batch_size(16)
        .run(&single, &load);
    let single_snap = single.metrics_snapshot();
    assert_exact(&single_snap, 1);

    let multi = campus_network();
    let report = TrafficEngine::new(4).with_batch_size(16).run(&multi, &load);
    assert!(report.is_clean());
    let multi_snap = multi.metrics_snapshot();
    assert_exact(&multi_snap, 1);

    // The exact total the existing invariant tests compute independently.
    assert_eq!(
        multi
            .aggregate_store()
            .get(&"count".into(), &[Value::Int(1)]),
        Value::Int(TOTAL as i64)
    );

    // Worker count must not change any aggregated reading: same workload,
    // same per-switch attribution, sharded or not.
    for family in ["switch.packets", "switch.hops", "switch.state_writes"] {
        assert_eq!(
            single_snap.families[family], multi_snap.families[family],
            "{family} diverged between 1 and 4 workers"
        );
    }
    for counter in [
        "driver.packets",
        "driver.deliveries",
        "driver.wave_prefix.packets",
        "driver.wave_prefix.survivors",
    ] {
        assert_eq!(
            single_snap.counters[counter], multi_snap.counters[counter],
            "{counter} diverged between 1 and 4 workers"
        );
    }
    // Lock acquisitions are amortized per (switch, batch-group), so their
    // count depends on how the engine split the workload — bounded by the
    // packet count either way, and never zero with state traffic.
    for snap in [&single_snap, &multi_snap] {
        let locks = snap.counters["driver.store_lock_acquisitions"];
        assert!(locks > 0 && locks <= TOTAL as u64);
    }
}

#[test]
fn two_instances_never_contaminate_each_other() {
    // The regression the per-instance registry fixed: before it, these
    // counters were process-wide statics, and two networks driven in the
    // same process bled into each other's readings.
    let load = workload();
    let a = campus_network();
    let b = campus_network();
    TrafficEngine::new(2).with_batch_size(16).run(&a, &load);
    let half: Vec<_> = load[..TOTAL / 2].to_vec();
    TrafficEngine::new(2).with_batch_size(16).run(&b, &half);
    assert_eq!(
        a.metrics_snapshot().counters["driver.packets"],
        TOTAL as u64
    );
    assert_eq!(
        b.metrics_snapshot().counters["driver.packets"],
        (TOTAL / 2) as u64
    );
}

#[test]
fn dist_plane_counters_are_exact_across_workers() {
    let topo = campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
    let session = CompilerSession::new(topo, tm).with_solver(SolverChoice::Heuristic);
    let mut deployment = snap_distrib::deploy_in_process(session, 4096);
    deployment
        .controller
        .update_policy(&counting_policy())
        .unwrap();

    let load = workload();
    let report = TrafficEngine::new(4)
        .with_batch_size(16)
        .run(deployment.network.as_ref(), &load);
    assert!(report.is_clean(), "errors: {:?}", report.errors);

    let snap = deployment.network.metrics_snapshot();
    assert_exact(&snap, 1);
    assert_eq!(
        deployment
            .network
            .aggregate_store()
            .get(&"count".into(), &[Value::Int(1)]),
        Value::Int(TOTAL as i64)
    );
    // The deployment shares one registry: the session's compile counters
    // land in the same snapshot as the packet counters.
    assert_eq!(snap.counters["session.compiles"], 1);
    deployment.shutdown();
}

#[test]
fn disabled_telemetry_records_nothing() {
    let net = campus_network().without_telemetry();
    TrafficEngine::new(2)
        .with_batch_size(16)
        .run(&net, &workload());
    assert!(net.telemetry().is_none());
    let snap = net.metrics_snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.traces.is_empty());
}

#[test]
fn shared_telemetry_can_merge_two_planes() {
    // Sharing is explicit: two networks handed the same Telemetry instance
    // sum into one registry (the deployment helpers use exactly this to
    // merge controller and data plane).
    let telemetry = snap_telemetry::Telemetry::new();
    let a = campus_network().with_telemetry(telemetry.clone());
    let b = campus_network().with_telemetry(telemetry.clone());
    let load = workload();
    TrafficEngine::new(2).with_batch_size(16).run(&a, &load);
    TrafficEngine::new(2).with_batch_size(16).run(&b, &load);
    assert_eq!(
        telemetry.snapshot().counters["driver.packets"],
        2 * TOTAL as u64
    );
}

#[test]
fn plane_telemetry_wave_prefix_stats_matches_counters() {
    // Needs a program with a stateless prefix: an all-state root goes
    // straight to the locked phase and the wave-prefix pass sees nothing.
    let topo = campus();
    let policy = ite(
        test(Field::SrcPort, Value::Int(53)),
        state_incr("count", vec![field(Field::InPort)]),
        id(),
    )
    .seq(modify(Field::OutPort, Value::Int(6)));
    let program = snap_xfdd::compile(&policy).unwrap();
    let owners = BTreeMap::from([(
        topo.node_by_name("C6").unwrap(),
        BTreeSet::from(["count".into()]),
    )]);
    let configs = SwitchConfig::for_topology(&topo, &program, &owners);
    let net = Network::new(topo, configs);

    let load: Vec<(PortId, Packet)> = (0..TOTAL)
        .map(|i| {
            (
                PortId(1 + i % 6),
                Packet::new()
                    .with(Field::InPort, 1)
                    .with(Field::SrcPort, if i % 4 == 0 { 53 } else { 9999 }),
            )
        })
        .collect();
    TrafficEngine::new(2).with_batch_size(16).run(&net, &load);
    let t: &PlaneTelemetry = net.telemetry().unwrap();
    let (packets, survivors) = t.wave_prefix_stats();
    let snap = net.metrics_snapshot();
    assert_eq!(snap.counters["driver.wave_prefix.packets"], packets);
    assert_eq!(snap.counters["driver.wave_prefix.survivors"], survivors);
    assert!(packets > 0);
    // Only the DNS-flavoured quarter of the workload pays for state.
    assert!(survivors < packets);
}
