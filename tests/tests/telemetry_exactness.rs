//! Metric exactness under concurrency, over both planes.
//!
//! The telemetry registry shards hot-path counters per worker and only
//! aggregates on read; the contract is that once the workers have joined,
//! the sums are *exact*. These tests pin that down by driving the same
//! workload through the multi-worker `TrafficEngine` and comparing the
//! aggregated per-switch packet / hop / state-write counters against
//! totals computed independently — the workload size, and the state
//! counter the existing invariant tests already prove exact via
//! `aggregate_store`.
//!
//! The replicated-state suite at the bottom extends the same contract to
//! the sharded state plane: per-worker replica buffers (commuting
//! variables) and key-range shard locks (exact variables) must produce
//! totals bit-identical to a single-threaded run, at 1/2/4/8 workers, on
//! both planes, and across a config swap that migrates a replicated
//! variable.

use snap_core::SolverChoice;
use snap_dataplane::{Network, PlaneTelemetry, SwitchConfig, TrafficEngine};
use snap_lang::prelude::*;
use snap_session::CompilerSession;
use snap_telemetry::MetricsSnapshot;
use snap_topology::generators::campus;
use snap_topology::{PortId, TrafficMatrix};
use std::collections::{BTreeMap, BTreeSet};

const TOTAL: usize = 600;

/// Count every packet per inport on C6, then deliver via port 6.
fn counting_policy() -> Policy {
    state_incr("count", vec![field(Field::InPort)]).seq(modify(Field::OutPort, Value::Int(6)))
}

fn campus_network() -> Network {
    let topo = campus();
    let program = snap_xfdd::compile(&counting_policy()).unwrap();
    let owners = BTreeMap::from([(
        topo.node_by_name("C6").unwrap(),
        BTreeSet::from(["count".into()]),
    )]);
    let configs = SwitchConfig::for_topology(&topo, &program, &owners);
    Network::new(topo, configs)
}

fn workload() -> Vec<(PortId, Packet)> {
    (0..TOTAL)
        .map(|i| (PortId(1 + i % 6), Packet::new().with(Field::InPort, 1)))
        .collect()
}

/// Like [`workload`], but spreading the state index across six inports so
/// replica merges and key-range shard routing both see multiple keys.
fn keyed_workload() -> Vec<(PortId, Packet)> {
    (0..TOTAL)
        .map(|i| {
            (
                PortId(1 + i % 6),
                Packet::new().with(Field::InPort, (1 + i % 6) as i64),
            )
        })
        .collect()
}

fn family_total(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.families[name].iter().map(|(_, v)| v).sum()
}

/// The independently exact totals: every packet counted, every state
/// write landed on C6, and every counter family consistent with them.
fn assert_exact(snap: &MetricsSnapshot, state_writes_per_packet: u64) {
    assert_eq!(snap.counters["driver.packets"], TOTAL as u64);
    assert_eq!(snap.counters["driver.deliveries"], TOTAL as u64);
    assert_eq!(snap.counters["driver.policy_drops"], 0);
    assert_eq!(snap.counters["driver.errors"], 0);
    assert_eq!(family_total(snap, "switch.packets"), TOTAL as u64);
    assert_eq!(
        family_total(snap, "switch.state_writes"),
        TOTAL as u64 * state_writes_per_packet
    );
    // Each state variable lives on exactly one switch, so one row — the
    // counter's owner, wherever placement put it — carries the entire
    // family.
    let max_writes = snap.families["switch.state_writes"]
        .iter()
        .map(|(_, v)| *v)
        .max()
        .unwrap();
    assert_eq!(max_writes, TOTAL as u64 * state_writes_per_packet);
    // Every locked-phase visit is attributed to exactly one switch, and
    // every delivered packet visited at least its state owner.
    assert!(family_total(snap, "switch.hops") >= TOTAL as u64);
    // The delivery histogram saw every delivered packet.
    assert_eq!(snap.histograms["packet.delivery_hops"].count, TOTAL as u64);
    // Wave-prefix accounting is consistent: survivors are a subset.
    assert!(
        snap.counters["driver.wave_prefix.survivors"]
            <= snap.counters["driver.wave_prefix.packets"]
    );
}

#[test]
fn network_counters_are_exact_across_workers() {
    let load = workload();

    let single = campus_network();
    TrafficEngine::new(1)
        .with_batch_size(16)
        .run(&single, &load);
    let single_snap = single.metrics_snapshot();
    assert_exact(&single_snap, 1);

    let multi = campus_network();
    let report = TrafficEngine::new(4).with_batch_size(16).run(&multi, &load);
    assert!(report.is_clean());
    let multi_snap = multi.metrics_snapshot();
    assert_exact(&multi_snap, 1);

    // The exact total the existing invariant tests compute independently.
    assert_eq!(
        multi
            .aggregate_store()
            .get(&"count".into(), &[Value::Int(1)]),
        Value::Int(TOTAL as i64)
    );

    // Worker count must not change any aggregated reading: same workload,
    // same per-switch attribution, sharded or not.
    for family in ["switch.packets", "switch.hops", "switch.state_writes"] {
        assert_eq!(
            single_snap.families[family], multi_snap.families[family],
            "{family} diverged between 1 and 4 workers"
        );
    }
    for counter in [
        "driver.packets",
        "driver.deliveries",
        "driver.wave_prefix.packets",
        "driver.wave_prefix.survivors",
    ] {
        assert_eq!(
            single_snap.counters[counter], multi_snap.counters[counter],
            "{counter} diverged between 1 and 4 workers"
        );
    }
    // Store-lock accounting lives on the per-switch shard planes now (the
    // process-wide `driver.store_lock_acquisitions` counter is gone):
    // per-shard families are read off the shards at snapshot time.
    // Acquisitions are amortized per (switch, batch-group) and the counting
    // variable is replicable, so the only locks are replica merge flushes —
    // bounded by the packet count either way, and never zero with state
    // traffic.
    for snap in [&single_snap, &multi_snap] {
        let locks = family_total(snap, "store.shard.acquisitions");
        assert!(locks > 0 && locks <= TOTAL as u64);
        assert!(family_total(snap, "store.shard.contended") <= locks);
        assert!(family_total(snap, "store.shard.merge_flushes") > 0);
    }
}

#[test]
fn two_instances_never_contaminate_each_other() {
    // The regression the per-instance registry fixed: before it, these
    // counters were process-wide statics, and two networks driven in the
    // same process bled into each other's readings.
    let load = workload();
    let a = campus_network();
    let b = campus_network();
    TrafficEngine::new(2).with_batch_size(16).run(&a, &load);
    let half: Vec<_> = load[..TOTAL / 2].to_vec();
    TrafficEngine::new(2).with_batch_size(16).run(&b, &half);
    assert_eq!(
        a.metrics_snapshot().counters["driver.packets"],
        TOTAL as u64
    );
    assert_eq!(
        b.metrics_snapshot().counters["driver.packets"],
        (TOTAL / 2) as u64
    );
}

#[test]
fn dist_plane_counters_are_exact_across_workers() {
    let topo = campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
    let session = CompilerSession::new(topo, tm).with_solver(SolverChoice::Heuristic);
    let mut deployment = snap_distrib::deploy_in_process(session, 4096);
    deployment
        .controller
        .update_policy(&counting_policy())
        .unwrap();

    let load = workload();
    let report = TrafficEngine::new(4)
        .with_batch_size(16)
        .run(deployment.network.as_ref(), &load);
    assert!(report.is_clean(), "errors: {:?}", report.errors);

    let snap = deployment.network.metrics_snapshot();
    assert_exact(&snap, 1);
    assert_eq!(
        deployment
            .network
            .aggregate_store()
            .get(&"count".into(), &[Value::Int(1)]),
        Value::Int(TOTAL as i64)
    );
    // The deployment shares one registry: the session's compile counters
    // land in the same snapshot as the packet counters.
    assert_eq!(snap.counters["session.compiles"], 1);
    deployment.shutdown();
}

#[test]
fn disabled_telemetry_records_nothing() {
    let net = campus_network().without_telemetry();
    TrafficEngine::new(2)
        .with_batch_size(16)
        .run(&net, &workload());
    assert!(net.telemetry().is_none());
    let snap = net.metrics_snapshot();
    assert!(snap.counters.is_empty());
    assert!(snap.traces.is_empty());
}

#[test]
fn shared_telemetry_can_merge_two_planes() {
    // Sharing is explicit: two networks handed the same Telemetry instance
    // sum into one registry (the deployment helpers use exactly this to
    // merge controller and data plane).
    let telemetry = snap_telemetry::Telemetry::new();
    let a = campus_network().with_telemetry(telemetry.clone());
    let b = campus_network().with_telemetry(telemetry.clone());
    let load = workload();
    TrafficEngine::new(2).with_batch_size(16).run(&a, &load);
    TrafficEngine::new(2).with_batch_size(16).run(&b, &load);
    assert_eq!(
        telemetry.snapshot().counters["driver.packets"],
        2 * TOTAL as u64
    );
}

// ---------------------------------------------------------------------------
// Replicated-state exactness: the sharded state plane buffers commuting
// updates in per-worker replicas and key-range-shards exact variables;
// neither path may change any total a single-threaded run would produce.
// ---------------------------------------------------------------------------

/// Per-inport counter totals after one run of `load` at `workers` workers.
fn run_and_collect(workers: usize, load: &[(PortId, Packet)]) -> Vec<(i64, Value)> {
    let net = campus_network();
    let report = TrafficEngine::new(workers)
        .with_batch_size(16)
        .run(&net, load);
    assert!(report.is_clean(), "errors: {:?}", report.errors);
    let store = net.aggregate_store();
    (1..=6)
        .map(|p| (p, store.get(&"count".into(), &[Value::Int(p)])))
        .collect()
}

#[test]
fn replicated_counter_is_exact_across_worker_counts() {
    // The compiler proves "count" commuting (every write an increment,
    // never tested), so the data plane takes the lock-free replica path —
    // and the merged totals must still be bit-identical to the
    // single-threaded reference at every worker count.
    let flat = snap_xfdd::compile(&counting_policy()).unwrap().flatten();
    assert_eq!(
        flat.state_class(&"count".into()),
        snap_xfdd::StateClass::Counter
    );

    let load = keyed_workload();
    let reference = run_and_collect(1, &load);
    for (p, total) in &reference {
        assert_eq!(*total, Value::Int((TOTAL / 6) as i64), "inport {p}");
    }
    for workers in [2usize, 4, 8] {
        assert_eq!(
            run_and_collect(workers, &load),
            reference,
            "{workers}-worker totals diverged from the single-threaded reference"
        );
    }
}

#[test]
fn exact_keyed_flag_is_exact_across_worker_counts() {
    // A *tested* variable is not replicable — it takes the key-range shard
    // path, one short lock per access. The first packet per inport sets
    // the flag, every later one reads it; the final table is
    // order-independent, so any divergence is a locking bug, not
    // scheduling noise.
    let policy = ite(
        state_test("seen", vec![field(Field::InPort)], int(1)),
        id(),
        state_set("seen", vec![field(Field::InPort)], int(1)),
    )
    .seq(modify(Field::OutPort, Value::Int(6)));
    let flat = snap_xfdd::compile(&policy).unwrap().flatten();
    assert_eq!(
        flat.state_class(&"seen".into()),
        snap_xfdd::StateClass::Exact
    );

    let topo = campus();
    let program = snap_xfdd::compile(&policy).unwrap();
    let owners = BTreeMap::from([(
        topo.node_by_name("C6").unwrap(),
        BTreeSet::from(["seen".into()]),
    )]);
    let load = keyed_workload();
    for workers in [1usize, 2, 4, 8] {
        let configs = SwitchConfig::for_topology(&topo, &program, &owners);
        let net = Network::new(topo.clone(), configs);
        let report = TrafficEngine::new(workers)
            .with_batch_size(16)
            .run(&net, &load);
        assert!(report.is_clean(), "errors: {:?}", report.errors);
        let store = net.aggregate_store();
        for p in 1..=6 {
            assert_eq!(
                store.get(&"seen".into(), &[Value::Int(p)]),
                Value::Int(1),
                "{workers} workers, inport {p}"
            );
        }
    }
}

#[test]
fn dist_plane_replicated_totals_match_reference_across_workers() {
    // The same replica path on the distributed plane: one deployment per
    // worker count, each compared against the arithmetic reference.
    let load = keyed_workload();
    for workers in [1usize, 2, 4, 8] {
        let topo = campus();
        let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
        let session = CompilerSession::new(topo, tm).with_solver(SolverChoice::Heuristic);
        let mut deployment = snap_distrib::deploy_in_process(session, 4096);
        deployment
            .controller
            .update_policy(&counting_policy())
            .unwrap();
        let report = TrafficEngine::new(workers)
            .with_batch_size(16)
            .run(deployment.network.as_ref(), &load);
        assert!(report.is_clean(), "errors: {:?}", report.errors);
        let store = deployment.network.aggregate_store();
        for p in 1..=6 {
            assert_eq!(
                store.get(&"count".into(), &[Value::Int(p)]),
                Value::Int((TOTAL / 6) as i64),
                "{workers} workers, inport {p}"
            );
        }
        deployment.shutdown();
    }
}

#[test]
fn config_swap_migrates_replicated_variable_mid_run() {
    // Half the workload accrues on C6, the variable's owner moves to C1,
    // the rest accrues there: the replica deltas flushed before the swap
    // must migrate with the table, exactly.
    let topo = campus();
    let program = snap_xfdd::compile(&counting_policy()).unwrap();
    let on_c6 = BTreeMap::from([(
        topo.node_by_name("C6").unwrap(),
        BTreeSet::from(["count".into()]),
    )]);
    let on_c1 = BTreeMap::from([(
        topo.node_by_name("C1").unwrap(),
        BTreeSet::from(["count".into()]),
    )]);
    let net = Network::new(
        topo.clone(),
        SwitchConfig::for_topology(&topo, &program, &on_c6),
    );
    let load = keyed_workload();
    let engine = TrafficEngine::new(4).with_batch_size(16);
    let report = engine.run(&net, &load[..TOTAL / 2]);
    assert!(report.is_clean(), "errors: {:?}", report.errors);
    net.swap_configs(SwitchConfig::for_topology(&topo, &program, &on_c1));
    let report = engine.run(&net, &load[TOTAL / 2..]);
    assert!(report.is_clean(), "errors: {:?}", report.errors);
    let store = net.aggregate_store();
    for p in 1..=6 {
        assert_eq!(
            store.get(&"count".into(), &[Value::Int(p)]),
            Value::Int((TOTAL / 6) as i64),
            "inport {p} total lost in migration"
        );
    }
}

#[test]
fn plane_telemetry_wave_prefix_stats_matches_counters() {
    // Needs a program with a stateless prefix: an all-state root goes
    // straight to the locked phase and the wave-prefix pass sees nothing.
    let topo = campus();
    let policy = ite(
        test(Field::SrcPort, Value::Int(53)),
        state_incr("count", vec![field(Field::InPort)]),
        id(),
    )
    .seq(modify(Field::OutPort, Value::Int(6)));
    let program = snap_xfdd::compile(&policy).unwrap();
    let owners = BTreeMap::from([(
        topo.node_by_name("C6").unwrap(),
        BTreeSet::from(["count".into()]),
    )]);
    let configs = SwitchConfig::for_topology(&topo, &program, &owners);
    let net = Network::new(topo, configs);

    let load: Vec<(PortId, Packet)> = (0..TOTAL)
        .map(|i| {
            (
                PortId(1 + i % 6),
                Packet::new()
                    .with(Field::InPort, 1)
                    .with(Field::SrcPort, if i % 4 == 0 { 53 } else { 9999 }),
            )
        })
        .collect();
    TrafficEngine::new(2).with_batch_size(16).run(&net, &load);
    let t: &PlaneTelemetry = net.telemetry().unwrap();
    let (packets, survivors) = t.wave_prefix_stats();
    let snap = net.metrics_snapshot();
    assert_eq!(snap.counters["driver.wave_prefix.packets"], packets);
    assert_eq!(snap.counters["driver.wave_prefix.survivors"], survivors);
    assert!(packets > 0);
    // Only the DNS-flavoured quarter of the workload pays for state.
    assert!(survivors < packets);
}
