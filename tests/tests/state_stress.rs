//! Multi-worker stateful stress: the configuration whose throughput used
//! to collapse on the per-switch store lock.
//!
//! Every packet in this workload writes state — a hot per-source counter
//! plus a tested (exact, key-range-sharded) flag — and four workers
//! hammer one shared network. The suite asserts the sharded state plane
//! keeps every total bit-exact under maximum write pressure, and that the
//! shard telemetry accounts for the traffic. CI runs this against the
//! release build (`--release`) so it stresses the optimized hot path.

use snap_dataplane::{Network, SwitchConfig, TrafficEngine};
use snap_lang::prelude::*;
use snap_topology::generators::campus;
use snap_topology::PortId;
use std::collections::{BTreeMap, BTreeSet};

const TOTAL: usize = 12_000;
const WORKERS: usize = 4;

/// Every packet increments a hot counter keyed by source subnet AND
/// passes through a tested first-seen flag — both state classes under
/// stress at once (replica buffers and key-range shard locks).
fn stress_policy() -> Policy {
    state_incr("hits", vec![field(Field::InPort)])
        .seq(ite(
            state_test("seen", vec![field(Field::InPort)], int(1)),
            id(),
            state_set("seen", vec![field(Field::InPort)], int(1)),
        ))
        .seq(modify(Field::OutPort, Value::Int(6)))
}

fn stress_network() -> Network {
    let topo = campus();
    let program = snap_xfdd::compile(&stress_policy()).unwrap();
    // Both variables on C6 — the single hot switch that used to serialize
    // every worker on one lock.
    let owners = BTreeMap::from([(
        topo.node_by_name("C6").unwrap(),
        BTreeSet::from(["hits".into(), "seen".into()]),
    )]);
    let configs = SwitchConfig::for_topology(&topo, &program, &owners);
    Network::new(topo, configs)
}

fn workload() -> Vec<(PortId, Packet)> {
    (0..TOTAL)
        .map(|i| {
            (
                PortId(1 + i % 6),
                Packet::new().with(Field::InPort, (1 + i % 6) as i64),
            )
        })
        .collect()
}

#[test]
fn four_workers_state_heavy_totals_stay_exact() {
    let net = stress_network();
    let report = TrafficEngine::new(WORKERS)
        .with_batch_size(64)
        .run(&net, &workload());
    assert!(report.is_clean(), "errors: {:?}", report.errors);
    assert_eq!(report.processed, TOTAL);

    let store = net.aggregate_store();
    for p in 1..=6 {
        assert_eq!(
            store.get(&"hits".into(), &[Value::Int(p)]),
            Value::Int((TOTAL / 6) as i64),
            "hot counter lost writes on inport {p}"
        );
        assert_eq!(
            store.get(&"seen".into(), &[Value::Int(p)]),
            Value::Int(1),
            "exact flag lost its set on inport {p}"
        );
    }

    // The snapshot accounts for the pressure: every packet counted, every
    // state write attributed, and the shard plane shows replica merges
    // (the hot counter) on top of exact accesses (the tested flag).
    let snap = net.metrics_snapshot();
    assert_eq!(snap.counters["driver.packets"], TOTAL as u64);
    assert_eq!(snap.counters["driver.deliveries"], TOTAL as u64);
    assert_eq!(snap.counters["driver.errors"], 0);
    let family_total = |name: &str| -> u64 { snap.families[name].iter().map(|(_, v)| v).sum() };
    // One counter increment per packet (the replica path reports its
    // buffered writes too), plus exactly one flag set per inport — the
    // flag's test and set address the same key, hence the same shard, and
    // the lease holds that shard's guard across both, so the test-then-set
    // is atomic and later packets only read.
    assert_eq!(family_total("switch.state_writes"), TOTAL as u64 + 6);
    assert!(family_total("store.shard.merge_flushes") > 0);
    let acquisitions = family_total("store.shard.acquisitions");
    assert!(
        acquisitions > 0,
        "state-heavy traffic must take shard locks"
    );
    assert!(family_total("store.shard.contended") <= acquisitions);
}
