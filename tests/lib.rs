//! Cross-crate integration tests for snap-rs live in `tests/`; this library
//! target is intentionally empty.
