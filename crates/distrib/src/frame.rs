//! The wire framing for the socket transport.
//!
//! Every message travels as one frame: a little-endian `u32` length followed
//! by that many payload bytes, capped at [`MAX_FRAME_BYTES`]. The payload is
//! a hand-rolled tag-prefixed encoding of [`ToAgent`] / [`FromAgent`] in the
//! same spirit as `snap_xfdd::wire` (the workspace's serde is an offline
//! shim, so nothing here derives its serialization): fixed-width
//! little-endian integers, length-prefixed strings and sequences, one tag
//! byte per enum variant.
//!
//! The decoder is written for hostile input: every length is checked against
//! the bytes actually remaining (so a corrupt length can never trigger a
//! huge allocation), value nesting is depth-limited, and every error path
//! returns [`FrameError`] — malformed frames *fail*, they never panic. The
//! fuzz suite in `tests/frame_fuzz.rs` pounds truncations and bit flips the
//! same way `wire_fuzz.rs` pounds the program payloads.

use crate::transport::{FromAgent, PrepareMsg, SwitchMeta, ToAgent};
use snap_lang::{Ipv4, Prefix, StateTable, StateVar, Value};
use snap_topology::{NodeId as SwitchId, PortId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io::{Read, Write};

/// Hard ceiling on one frame's payload, applied before any allocation. Full
/// resync payloads for ISP-scale programs are a few MiB; 64 MiB leaves an
/// order of magnitude of slack while keeping a corrupt length harmless.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Nesting ceiling for [`Value::Tuple`]: real indices are a handful of
/// fields deep, and the bound keeps a crafted payload from recursing the
/// decoder off the stack.
const MAX_VALUE_DEPTH: u32 = 32;

/// A malformed or oversized frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The payload ended before the structure did.
    Truncated,
    /// An unknown enum tag.
    BadTag(u8),
    /// A length field that contradicts the bytes present, or exceeds
    /// [`MAX_FRAME_BYTES`].
    BadLength,
    /// A string that is not UTF-8.
    BadUtf8,
    /// Value nesting beyond the decoder's depth ceiling.
    TooDeep,
    /// A field whose value is out of its domain (e.g. a prefix length > 32).
    BadValue,
    /// Bytes left over after the structure ended.
    TrailingBytes,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadTag(t) => write!(f, "unknown frame tag {t}"),
            FrameError::BadLength => write!(f, "frame length out of bounds"),
            FrameError::BadUtf8 => write!(f, "frame string is not utf-8"),
            FrameError::TooDeep => write!(f, "frame value nesting too deep"),
            FrameError::BadValue => write!(f, "frame field out of domain"),
            FrameError::TrailingBytes => write!(f, "frame has trailing bytes"),
        }
    }
}

impl std::error::Error for FrameError {}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.u8(0);
                self.i64(*i);
            }
            Value::Bool(b) => {
                self.u8(1);
                self.u8(u8::from(*b));
            }
            Value::Ip(ip) => {
                self.u8(2);
                self.u32(ip.0);
            }
            Value::Prefix(p) => {
                self.u8(3);
                self.u32(p.addr.0);
                self.u8(p.len);
            }
            Value::Str(s) => {
                self.u8(4);
                self.str(s);
            }
            Value::Symbol(s) => {
                self.u8(5);
                self.str(s);
            }
            Value::Tuple(vs) => {
                self.u8(6);
                self.u32(vs.len() as u32);
                for v in vs {
                    self.value(v);
                }
            }
        }
    }

    fn table(&mut self, t: &StateTable) {
        self.value(t.default_value());
        self.u32(t.len() as u32);
        for (index, value) in t.iter() {
            self.u32(index.len() as u32);
            for v in index {
                self.value(v);
            }
            self.value(value);
        }
    }

    fn meta(&mut self, m: &SwitchMeta) {
        self.u32(m.local_vars.len() as u32);
        for var in &m.local_vars {
            self.str(&var.0);
        }
        self.u32(m.ports.len() as u32);
        for port in &m.ports {
            self.u64(port.0 as u64);
        }
    }

    fn placement(&mut self, p: &BTreeMap<StateVar, SwitchId>) {
        self.u32(p.len() as u32);
        for (var, owner) in p {
            self.str(&var.0);
            self.u64(owner.0 as u64);
        }
    }
}

/// Encode a controller→agent message payload (no length prefix).
pub fn encode_to_agent(msg: &ToAgent) -> Vec<u8> {
    let mut e = Enc::new();
    match msg {
        ToAgent::Prepare(p) => {
            e.u8(0);
            e.u64(p.epoch);
            e.u8(u8::from(p.resync));
            e.bytes(&p.delta);
            match &p.meta {
                None => e.u8(0),
                Some(m) => {
                    e.u8(1);
                    e.meta(m);
                }
            }
            match &p.placement {
                None => e.u8(0),
                Some(pl) => {
                    e.u8(1);
                    e.placement(pl);
                }
            }
        }
        ToAgent::Commit { epoch } => {
            e.u8(1);
            e.u64(*epoch);
        }
        ToAgent::Abort { epoch } => {
            e.u8(2);
            e.u64(*epoch);
        }
        ToAgent::InstallTable { epoch, var, table } => {
            e.u8(3);
            e.u64(*epoch);
            e.str(&var.0);
            e.table(table);
        }
        ToAgent::Shutdown => e.u8(4),
    }
    e.buf
}

/// Encode an agent→controller message payload (no length prefix).
pub fn encode_from_agent(msg: &FromAgent) -> Vec<u8> {
    let mut e = Enc::new();
    match msg {
        FromAgent::Prepared {
            switch,
            epoch,
            new_nodes,
        } => {
            e.u8(0);
            e.u64(switch.0 as u64);
            e.u64(*epoch);
            e.u64(*new_nodes);
        }
        FromAgent::PrepareFailed {
            switch,
            epoch,
            reason,
        } => {
            e.u8(1);
            e.u64(switch.0 as u64);
            e.u64(*epoch);
            e.str(reason);
        }
        FromAgent::Committed {
            switch,
            epoch,
            yields,
        } => {
            e.u8(2);
            e.u64(switch.0 as u64);
            e.u64(*epoch);
            e.u32(yields.len() as u32);
            for (var, table) in yields {
                e.str(&var.0);
                e.table(table);
            }
        }
        FromAgent::Installed { switch, epoch, var } => {
            e.u8(3);
            e.u64(switch.0 as u64);
            e.u64(*epoch);
            e.str(&var.0);
        }
    }
    e.buf
}

/// Encode the agent's one-shot handshake: which switch this connection is.
pub fn encode_hello(switch: SwitchId) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(0xa5);
    e.u64(switch.0 as u64);
    e.buf
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> Result<i64, FrameError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// A length field for elements at least `min_elem_bytes` wide each:
    /// rejected outright when the remaining bytes cannot possibly hold that
    /// many, so lengths never drive allocation beyond the frame itself.
    fn seq_len(&mut self, min_elem_bytes: usize) -> Result<usize, FrameError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(FrameError::BadLength);
        }
        Ok(n)
    }

    fn bytes(&mut self) -> Result<&'a [u8], FrameError> {
        let n = self.seq_len(1)?;
        self.take(n)
    }

    fn str(&mut self) -> Result<String, FrameError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| FrameError::BadUtf8)
    }

    fn bool(&mut self) -> Result<bool, FrameError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(FrameError::BadValue),
        }
    }

    fn value(&mut self, depth: u32) -> Result<Value, FrameError> {
        if depth > MAX_VALUE_DEPTH {
            return Err(FrameError::TooDeep);
        }
        match self.u8()? {
            0 => Ok(Value::Int(self.i64()?)),
            1 => Ok(Value::Bool(self.bool()?)),
            2 => Ok(Value::Ip(Ipv4(self.u32()?))),
            3 => {
                let addr = Ipv4(self.u32()?);
                let len = self.u8()?;
                if len > 32 {
                    return Err(FrameError::BadValue);
                }
                Ok(Value::Prefix(Prefix::new(addr, len)))
            }
            4 => Ok(Value::Str(self.str()?)),
            5 => Ok(Value::Symbol(self.str()?)),
            6 => {
                let n = self.seq_len(1)?;
                let mut vs = Vec::with_capacity(n);
                for _ in 0..n {
                    vs.push(self.value(depth + 1)?);
                }
                Ok(Value::Tuple(vs))
            }
            t => Err(FrameError::BadTag(t)),
        }
    }

    fn table(&mut self) -> Result<StateTable, FrameError> {
        let default = self.value(0)?;
        let mut table = StateTable::with_default(default);
        let entries = self.seq_len(2)?;
        for _ in 0..entries {
            let arity = self.seq_len(1)?;
            let mut index = Vec::with_capacity(arity);
            for _ in 0..arity {
                index.push(self.value(0)?);
            }
            let value = self.value(0)?;
            table.set(index, value);
        }
        Ok(table)
    }

    fn meta(&mut self) -> Result<SwitchMeta, FrameError> {
        let vars = self.seq_len(4)?;
        let mut local_vars = BTreeSet::new();
        for _ in 0..vars {
            local_vars.insert(StateVar(self.str()?));
        }
        let ports = self.seq_len(8)?;
        let mut port_set = BTreeSet::new();
        for _ in 0..ports {
            port_set.insert(PortId(self.u64()? as usize));
        }
        Ok(SwitchMeta {
            local_vars,
            ports: port_set,
        })
    }

    fn placement(&mut self) -> Result<BTreeMap<StateVar, SwitchId>, FrameError> {
        let n = self.seq_len(12)?;
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let var = StateVar(self.str()?);
            let owner = SwitchId(self.u64()? as usize);
            map.insert(var, owner);
        }
        Ok(map)
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(FrameError::TrailingBytes)
        }
    }
}

/// Decode a controller→agent payload.
pub fn decode_to_agent(buf: &[u8]) -> Result<ToAgent, FrameError> {
    let mut d = Dec::new(buf);
    let msg = match d.u8()? {
        0 => {
            let epoch = d.u64()?;
            let resync = d.bool()?;
            let delta = d.bytes()?.to_vec();
            let meta = match d.u8()? {
                0 => None,
                1 => Some(d.meta()?),
                _ => return Err(FrameError::BadValue),
            };
            let placement = match d.u8()? {
                0 => None,
                1 => Some(d.placement()?),
                _ => return Err(FrameError::BadValue),
            };
            ToAgent::Prepare(Box::new(PrepareMsg {
                epoch,
                resync,
                delta,
                meta,
                placement,
            }))
        }
        1 => ToAgent::Commit { epoch: d.u64()? },
        2 => ToAgent::Abort { epoch: d.u64()? },
        3 => ToAgent::InstallTable {
            epoch: d.u64()?,
            var: StateVar(d.str()?),
            table: d.table()?,
        },
        4 => ToAgent::Shutdown,
        t => return Err(FrameError::BadTag(t)),
    };
    d.finish()?;
    Ok(msg)
}

/// Decode an agent→controller payload.
pub fn decode_from_agent(buf: &[u8]) -> Result<FromAgent, FrameError> {
    let mut d = Dec::new(buf);
    let msg = match d.u8()? {
        0 => FromAgent::Prepared {
            switch: SwitchId(d.u64()? as usize),
            epoch: d.u64()?,
            new_nodes: d.u64()?,
        },
        1 => FromAgent::PrepareFailed {
            switch: SwitchId(d.u64()? as usize),
            epoch: d.u64()?,
            reason: d.str()?,
        },
        2 => {
            let switch = SwitchId(d.u64()? as usize);
            let epoch = d.u64()?;
            let n = d.seq_len(2)?;
            let mut yields = Vec::with_capacity(n);
            for _ in 0..n {
                let var = StateVar(d.str()?);
                let table = d.table()?;
                yields.push((var, table));
            }
            FromAgent::Committed {
                switch,
                epoch,
                yields,
            }
        }
        3 => FromAgent::Installed {
            switch: SwitchId(d.u64()? as usize),
            epoch: d.u64()?,
            var: StateVar(d.str()?),
        },
        t => return Err(FrameError::BadTag(t)),
    };
    d.finish()?;
    Ok(msg)
}

/// Decode the agent's handshake frame.
pub fn decode_hello(buf: &[u8]) -> Result<SwitchId, FrameError> {
    let mut d = Dec::new(buf);
    if d.u8()? != 0xa5 {
        return Err(FrameError::BadValue);
    }
    let switch = SwitchId(d.u64()? as usize);
    d.finish()?;
    Ok(switch)
}

// ---------------------------------------------------------------------------
// Stream framing
// ---------------------------------------------------------------------------

/// Write one frame: little-endian `u32` length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_BYTES);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one frame's payload, enforcing [`MAX_FRAME_BYTES`] before
/// allocating. An oversized length is reported as `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame exceeds size cap",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> StateTable {
        let mut t = StateTable::with_default(Value::Int(0));
        t.set(
            vec![Value::Ip(Ipv4::new(10, 0, 0, 1)), Value::str("a.example")],
            Value::Int(7),
        );
        t.set(
            vec![Value::Tuple(vec![Value::Bool(true), Value::sym("SYN")])],
            Value::Prefix(Prefix::new(Ipv4::new(10, 0, 6, 0), 24)),
        );
        t
    }

    #[test]
    fn to_agent_round_trips() {
        let msgs = vec![
            ToAgent::Prepare(Box::new(PrepareMsg {
                epoch: 9,
                resync: true,
                delta: vec![1, 2, 3, 250],
                meta: Some(SwitchMeta {
                    local_vars: [StateVar("seen".into())].into_iter().collect(),
                    ports: [PortId(3), PortId(90)].into_iter().collect(),
                }),
                placement: Some(
                    [(StateVar("seen".into()), SwitchId(4))]
                        .into_iter()
                        .collect(),
                ),
            })),
            ToAgent::Commit { epoch: 1 },
            ToAgent::Abort { epoch: u64::MAX },
            ToAgent::InstallTable {
                epoch: 3,
                var: StateVar("orphan".into()),
                table: sample_table(),
            },
            ToAgent::Shutdown,
        ];
        for msg in msgs {
            let bytes = encode_to_agent(&msg);
            let back = decode_to_agent(&bytes).expect("round trip");
            assert_eq!(format!("{msg:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn from_agent_round_trips() {
        let msgs = vec![
            FromAgent::Prepared {
                switch: SwitchId(7),
                epoch: 2,
                new_nodes: 61,
            },
            FromAgent::PrepareFailed {
                switch: SwitchId(0),
                epoch: 3,
                reason: "diverged mirror: \"quoted\"".into(),
            },
            FromAgent::Committed {
                switch: SwitchId(12),
                epoch: 4,
                yields: vec![(StateVar("seen".into()), sample_table())],
            },
            FromAgent::Installed {
                switch: SwitchId(5),
                epoch: 4,
                var: StateVar("seen".into()),
            },
        ];
        for msg in msgs {
            let bytes = encode_from_agent(&msg);
            let back = decode_from_agent(&bytes).expect("round trip");
            assert_eq!(format!("{msg:?}"), format!("{back:?}"));
        }
    }

    #[test]
    fn hello_round_trips() {
        let bytes = encode_hello(SwitchId(901));
        assert_eq!(decode_hello(&bytes), Ok(SwitchId(901)));
        assert!(decode_hello(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn bad_lengths_are_rejected_without_allocating() {
        // A Committed frame claiming 4 billion yields must fail fast.
        let mut bytes = vec![2u8];
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_from_agent(&bytes),
            Err(FrameError::BadLength)
        ));
    }

    #[test]
    fn deep_tuples_are_rejected() {
        let mut e = Enc::new();
        e.u8(3); // InstallTable
        e.u64(1);
        e.str("v");
        for _ in 0..200 {
            e.u8(6); // Tuple
            e.u32(1);
        }
        e.u8(0);
        e.i64(0);
        assert!(matches!(
            decode_to_agent(&e.buf),
            Err(FrameError::TooDeep) | Err(FrameError::Truncated) | Err(FrameError::BadLength)
        ));
    }
}
