//! The controller↔agent message protocol and the transport seam.
//!
//! The controller talks to each switch agent over a pair of endpoint traits
//! ([`ControllerEndpoint`] on its side, [`AgentEndpoint`] on the switch
//! side). Sends are per-link, but *all* agent replies converge on one shared
//! reply channel ([`ReplyTx`]) owned by the controller: every [`FromAgent`]
//! message names its switch and epoch, so the controller consumes acks in
//! arrival order and routes them by `(switch, epoch)` instead of blocking on
//! one link at a time. The in-process backend ([`channel_link`]) forwards the
//! agent's sends straight into that shared channel; a socket backend slots in
//! by implementing the same two traits over a serialized stream (see
//! [`crate::tcp`]) — the program payloads already *are* bytes
//! (`snap_xfdd::wire` deltas), and the remaining message fields are plain
//! data.
//!
//! Message flow per update (the two-phase epoch protocol):
//!
//! ```text
//! controller                                   agent
//!     │  Prepare { epoch, delta, meta, … }  →    │  decode + re-intern + flatten
//!     │  ←  Prepared { epoch } / PrepareFailed   │  (current epoch untouched)
//!     │  Commit { epoch }                   →    │  flip current view, yield
//!     │  ←  Committed { epoch, yields }          │  released state tables
//!     │  InstallTable { var, table }        →    │  adopt a migrated table
//!     │  ←  Installed { epoch, var }             │
//! ```
//!
//! `Abort { epoch }` cancels a prepared-but-uncommitted update on every
//! agent when any prepare fails.

use snap_lang::{StateTable, StateVar};
use snap_topology::{NodeId as SwitchId, PortId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::mpsc;
use std::time::Duration;

/// The per-switch metadata shipped alongside the (shared) program: what the
/// switch owns and which external ports it hosts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwitchMeta {
    /// State variables placed on this switch.
    pub local_vars: BTreeSet<StateVar>,
    /// OBS external ports attached to this switch.
    pub ports: BTreeSet<PortId>,
}

/// Phase one of an update: everything the agent needs to *stage* the new
/// epoch without touching the running configuration.
#[derive(Clone, Debug)]
pub struct PrepareMsg {
    /// The epoch this update will commit as.
    pub epoch: u64,
    /// When set, `delta` is a full-table payload to decode into a *fresh*
    /// mirror (bootstrap, or recovery from divergence); otherwise it is a
    /// suffix delta against the agent's cached pool.
    pub resync: bool,
    /// The `snap_xfdd::wire` delta payload (node-table suffix + root).
    pub delta: Vec<u8>,
    /// This switch's metadata, or `None` when unchanged since the last
    /// update shipped to this agent.
    pub meta: Option<SwitchMeta>,
    /// The global variable→owner placement (for forwarding packets towards
    /// state), or `None` when unchanged.
    pub placement: Option<BTreeMap<StateVar, SwitchId>>,
}

/// Controller → agent messages.
#[derive(Clone, Debug)]
pub enum ToAgent {
    /// Stage an update (phase one).
    Prepare(Box<PrepareMsg>),
    /// Flip a prepared update to current (phase two).
    Commit {
        /// The epoch to commit; must match the staged update.
        epoch: u64,
    },
    /// Drop a prepared update without committing it.
    Abort {
        /// The epoch to abort.
        epoch: u64,
    },
    /// Adopt a state table migrated from the variable's previous owner.
    InstallTable {
        /// The epoch whose commit migrated the table.
        epoch: u64,
        /// The migrated variable.
        var: StateVar,
        /// Its table contents.
        table: StateTable,
    },
    /// Stop the agent's message loop.
    Shutdown,
}

/// Agent → controller messages.
#[derive(Clone, Debug)]
pub enum FromAgent {
    /// The update is staged: delta applied to the mirror, program flattened,
    /// new view materialized. The current epoch is untouched.
    Prepared {
        /// The replying switch.
        switch: SwitchId,
        /// The staged epoch.
        epoch: u64,
        /// Nodes the delta appended to the agent's mirror.
        new_nodes: u64,
    },
    /// The update could not be staged (diverged mirror, malformed payload).
    /// The agent's mirror must be resynced before the next update.
    PrepareFailed {
        /// The replying switch.
        switch: SwitchId,
        /// The epoch that failed to stage.
        epoch: u64,
        /// Human-readable failure cause.
        reason: String,
    },
    /// The staged epoch is now current; released tables ride along. The
    /// agent is authoritative about what it yields: *every* table in its
    /// store whose variable the new view does not own — the planned
    /// migrations of this update, plus anything stranded by an earlier
    /// failed one.
    Committed {
        /// The replying switch.
        switch: SwitchId,
        /// The committed epoch.
        epoch: u64,
        /// Tables of variables this switch no longer owns, for migration.
        yields: Vec<(StateVar, StateTable)>,
    },
    /// A migrated table was adopted.
    Installed {
        /// The replying switch.
        switch: SwitchId,
        /// The epoch the migration belongs to.
        epoch: u64,
        /// The adopted variable.
        var: StateVar,
    },
}

impl FromAgent {
    /// The switch that sent this reply — the mux routing key's first half.
    pub fn switch(&self) -> SwitchId {
        match self {
            FromAgent::Prepared { switch, .. }
            | FromAgent::PrepareFailed { switch, .. }
            | FromAgent::Committed { switch, .. }
            | FromAgent::Installed { switch, .. } => *switch,
        }
    }

    /// The epoch this reply concerns — the mux routing key's second half.
    pub fn epoch(&self) -> u64 {
        match self {
            FromAgent::Prepared { epoch, .. }
            | FromAgent::PrepareFailed { epoch, .. }
            | FromAgent::Committed { epoch, .. }
            | FromAgent::Installed { epoch, .. } => *epoch,
        }
    }
}

/// Transport failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The peer is gone (channel closed / connection lost).
    Disconnected,
    /// No reply within the configured timeout.
    Timeout,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "transport disconnected"),
            TransportError::Timeout => write!(f, "transport timed out"),
        }
    }
}

impl std::error::Error for TransportError {}

/// The controller's end of one agent link. Send-only: replies do not come
/// back through the link, they arrive on the controller's shared reply
/// channel ([`ReplyTx`]) keyed by the switch id every [`FromAgent`] carries.
pub trait ControllerEndpoint: Send {
    /// Send a message to the agent.
    fn send(&self, msg: ToAgent) -> Result<(), TransportError>;
}

/// The agent's end of its controller link.
pub trait AgentEndpoint: Send {
    /// Block for the controller's next message.
    fn recv(&self) -> Result<ToAgent, TransportError>;
    /// Send a message to the controller.
    fn send(&self, msg: FromAgent) -> Result<(), TransportError>;
}

/// The sending half of the controller's shared reply channel. One of these
/// is cloned into every agent link (and every socket reader thread): all
/// agents' acks funnel into the single receiver the controller drains in
/// arrival order.
#[derive(Clone)]
pub struct ReplyTx {
    tx: mpsc::Sender<FromAgent>,
}

impl ReplyTx {
    /// Wrap a raw sender. Tests interpose on the reply path by building
    /// their own channel, filtering, and forwarding into the real one.
    pub fn from_sender(tx: mpsc::Sender<FromAgent>) -> ReplyTx {
        ReplyTx { tx }
    }

    /// Deliver an agent reply to the controller.
    pub fn send(&self, msg: FromAgent) -> Result<(), TransportError> {
        self.tx.send(msg).map_err(|_| TransportError::Disconnected)
    }
}

/// The receiving half of the controller's reply channel.
pub struct ReplyRx {
    rx: mpsc::Receiver<FromAgent>,
}

impl ReplyRx {
    /// Wait up to `timeout` for the next agent reply, whoever sent it.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<FromAgent, TransportError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => TransportError::Timeout,
            mpsc::RecvTimeoutError::Disconnected => TransportError::Disconnected,
        })
    }
}

/// A fresh reply channel: the controller keeps the receiver, every link
/// gets a clone of the sender.
pub fn reply_channel() -> (ReplyTx, ReplyRx) {
    let (tx, rx) = mpsc::channel();
    (ReplyTx { tx }, ReplyRx { rx })
}

/// In-process controller endpoint: an `mpsc` sender into the agent's inbox.
pub struct ChannelControllerEndpoint {
    tx: mpsc::Sender<ToAgent>,
}

/// In-process agent endpoint: an `mpsc` inbox plus the controller's shared
/// reply sender.
pub struct ChannelAgentEndpoint {
    reply: ReplyTx,
    rx: mpsc::Receiver<ToAgent>,
}

/// An in-process link: the controller half (send-only) and the agent half,
/// whose sends go straight into the controller's shared reply channel.
pub fn channel_link(reply: ReplyTx) -> (ChannelControllerEndpoint, ChannelAgentEndpoint) {
    let (to_agent_tx, to_agent_rx) = mpsc::channel();
    (
        ChannelControllerEndpoint { tx: to_agent_tx },
        ChannelAgentEndpoint {
            reply,
            rx: to_agent_rx,
        },
    )
}

impl ControllerEndpoint for ChannelControllerEndpoint {
    fn send(&self, msg: ToAgent) -> Result<(), TransportError> {
        self.tx.send(msg).map_err(|_| TransportError::Disconnected)
    }
}

impl AgentEndpoint for ChannelAgentEndpoint {
    fn recv(&self) -> Result<ToAgent, TransportError> {
        self.rx.recv().map_err(|_| TransportError::Disconnected)
    }

    fn send(&self, msg: FromAgent) -> Result<(), TransportError> {
        self.reply.send(msg)
    }
}
