//! The length-prefixed TCP transport: controller and agents as real
//! separate processes.
//!
//! One TCP connection per agent. The agent connects, sends a hello frame
//! naming its switch, then speaks the [`crate::frame`] protocol: the
//! controller writes [`ToAgent`] frames down the socket, and a per-connection
//! reader thread on the controller side decodes [`FromAgent`] frames and
//! forwards them into the controller's shared reply channel — exactly the
//! same mux the in-process backend uses, so the controller cannot tell a
//! socket fleet from a channel fleet. `TCP_NODELAY` is set on both ends:
//! commit-phase messages are tiny and latency-bound, so Nagle coalescing
//! would serialize the fan-out.
//!
//! Nothing here is async: one blocked reader thread per agent costs a stack,
//! and a thousand of them is well within what the soak rig's host handles —
//! the scalability this PR buys is in *phase structure* (concurrent fan-out,
//! pipelined epochs), not in the socket layer's thread count.

use crate::frame::{
    decode_from_agent, decode_hello, decode_to_agent, encode_from_agent, encode_hello,
    encode_to_agent, read_frame, write_frame,
};
use crate::transport::{
    AgentEndpoint, ControllerEndpoint, FromAgent, ReplyTx, ToAgent, TransportError,
};
use parking_lot::Mutex;
use snap_topology::NodeId as SwitchId;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::thread;
use std::time::Duration;

/// The controller's side of one agent's TCP connection: a send-only framed
/// writer. The paired reader thread (spawned at accept time) owns the read
/// half and pumps decoded replies into the controller's [`ReplyTx`].
pub struct TcpControllerEndpoint {
    writer: Mutex<TcpStream>,
}

impl ControllerEndpoint for TcpControllerEndpoint {
    fn send(&self, msg: ToAgent) -> Result<(), TransportError> {
        let payload = encode_to_agent(&msg);
        let mut stream = self.writer.lock();
        write_frame(&mut *stream, &payload).map_err(|_| TransportError::Disconnected)
    }
}

/// The agent's side of its controller connection.
pub struct TcpAgentEndpoint {
    reader: Mutex<TcpStream>,
    writer: Mutex<TcpStream>,
}

impl TcpAgentEndpoint {
    /// Connect to the controller's listener and introduce ourselves as
    /// `switch`. Retries briefly so a thousand agents racing one accept
    /// loop (or a child process starting before the listener) converge.
    pub fn connect(addr: impl ToSocketAddrs + Clone, switch: SwitchId) -> io::Result<Self> {
        let mut last_err = None;
        for _ in 0..50 {
            match TcpStream::connect(addr.clone()) {
                Ok(stream) => return Self::from_stream(stream, switch),
                Err(e) => {
                    last_err = Some(e);
                    thread::sleep(Duration::from_millis(40));
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("connect failed")))
    }

    /// Wrap an already-connected stream and send the hello frame.
    pub fn from_stream(stream: TcpStream, switch: SwitchId) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        let mut writer = stream.try_clone()?;
        write_frame(&mut writer, &encode_hello(switch))?;
        Ok(TcpAgentEndpoint {
            reader: Mutex::new(stream),
            writer: Mutex::new(writer),
        })
    }
}

impl AgentEndpoint for TcpAgentEndpoint {
    fn recv(&self) -> Result<ToAgent, TransportError> {
        let mut stream = self.reader.lock();
        let payload = read_frame(&mut *stream).map_err(|_| TransportError::Disconnected)?;
        decode_to_agent(&payload).map_err(|_| TransportError::Disconnected)
    }

    fn send(&self, msg: FromAgent) -> Result<(), TransportError> {
        let payload = encode_from_agent(&msg);
        let mut stream = self.writer.lock();
        write_frame(&mut *stream, &payload).map_err(|_| TransportError::Disconnected)
    }
}

/// The controller's accept side.
pub struct TcpTransportListener {
    listener: TcpListener,
}

impl TcpTransportListener {
    /// Bind (use port 0 for an ephemeral port; see [`Self::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(TcpTransportListener {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address agents should connect to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept one agent connection: read its hello, spawn the reader thread
    /// that forwards its replies into `reply`, and return the switch id it
    /// claimed plus the send-only endpoint for it.
    ///
    /// The reader thread exits when the connection drops, the peer sends a
    /// malformed frame, or the controller (reply channel) goes away.
    pub fn accept_agent(&self, reply: ReplyTx) -> io::Result<(SwitchId, TcpControllerEndpoint)> {
        let (stream, _) = self.listener.accept()?;
        stream.set_nodelay(true)?;
        let mut read_half = stream.try_clone()?;
        let hello = read_frame(&mut read_half)?;
        let switch = decode_hello(&hello)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        thread::Builder::new()
            .name(format!("tcp-reader-{}", switch.0))
            .spawn(move || {
                while let Ok(payload) = read_frame(&mut read_half) {
                    let Ok(msg) = decode_from_agent(&payload) else {
                        break;
                    };
                    if reply.send(msg).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn tcp reader");
        Ok((
            switch,
            TcpControllerEndpoint {
                writer: Mutex::new(stream),
            },
        ))
    }
}
