//! The per-switch update agent: a genuinely separate party that caches the
//! controller's distribution pool, stages updates, and flips epochs.
//!
//! A [`SwitchAgent`] owns
//!
//! * a **mirror pool** — a node-for-node copy of the controller's
//!   append-only distribution pool, advanced by `snap_xfdd::wire` suffix
//!   deltas. Every agent's mirror holds the same node table, so the dense
//!   flat ids every agent derives from it agree — which is what lets the
//!   §4.5 packet tag minted on one switch resume on another;
//! * a small ring of **epoch views** — per-epoch immutable bundles of
//!   flattened program, owned variables, external ports and global
//!   placement. Traffic is stamped with its ingress epoch and every hop
//!   resolves the view for *that* epoch, so a packet never mixes two
//!   configurations even while the distributed commit is mid-flip;
//! * its **sharded state plane** ([`snap_dataplane::StateShards`]) and
//!   bounded per-port **egress queues** ([`snap_dataplane::EgressQueues`]).
//!
//! The two-phase protocol does all expensive work in *prepare* (delta
//! decode, re-intern, flatten — off the packet path's critical flip) and
//! makes *commit* a pointer swap plus the release of migrated tables. A
//! packet can carry an epoch the local agent has prepared but not yet
//! committed — that is exactly the commit wave passing through the network
//! — and the view lookup serves the staged view in that case: sound,
//! because the controller only starts committing after *every* agent
//! prepared, so a packet stamped with the new epoch proves global
//! readiness.

use crate::transport::{AgentEndpoint, FromAgent, PrepareMsg, SwitchMeta, ToAgent};
use parking_lot::Mutex;
use snap_dataplane::{EgressQueues, StateShards, DEFAULT_STATE_SHARDS};
use snap_lang::StateVar;
use snap_topology::{NodeId as SwitchId, PortId};
use snap_xfdd::{
    apply_delta, decode_delta_fresh, FlatProgram, NodeId as PoolNodeId, Pool, TableProgram,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How many committed epochs an agent keeps resolvable for in-flight
/// packets. Packets live for a handful of hops; anything older than this
/// many commits is a stray.
pub const EPOCH_HISTORY: usize = 8;

/// How many flattened programs an agent caches by root (see
/// [`SwitchAgent`]'s flatten cache). Rollbacks and A/B flips revisit recent
/// roots; anything deeper is a cold program that costs one flatten.
pub const FLAT_CACHE_CAP: usize = 16;

/// A FIFO-bounded cache of flatten results, keyed by the program's root in
/// the mirror pool. Sound because the mirror is append-only: under one
/// numbering, a root id names exactly one program, so a rollback or an A/B
/// flip back to a recent root can skip the whole flatten + table compile.
/// Cleared whenever the numbering changes (resync, dropped mirror).
#[derive(Default)]
struct FlatCache {
    entries: BTreeMap<PoolNodeId, (Arc<FlatProgram>, Arc<TableProgram>)>,
    order: VecDeque<PoolNodeId>,
}

impl FlatCache {
    fn get(&self, root: PoolNodeId) -> Option<(Arc<FlatProgram>, Arc<TableProgram>)> {
        self.entries.get(&root).cloned()
    }

    fn insert(&mut self, root: PoolNodeId, flat: Arc<FlatProgram>, tables: Arc<TableProgram>) {
        if self.entries.insert(root, (flat, tables)).is_none() {
            self.order.push_back(root);
            while self.order.len() > FLAT_CACHE_CAP {
                if let Some(evict) = self.order.pop_front() {
                    self.entries.remove(&evict);
                }
            }
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }
}

/// One epoch's immutable configuration, as a switch executes it.
pub struct EpochView {
    /// The configuration epoch this view belongs to.
    pub epoch: u64,
    /// The program, flattened from the agent's mirror. Identical (same
    /// dense ids) on every agent of the same epoch.
    pub flat: Arc<FlatProgram>,
    /// The table compilation of `flat`. Never shipped: each agent rebuilds
    /// it from its own flat program in prepare, and because the flat ids
    /// agree across agents, so do the tables.
    pub tables: Arc<TableProgram>,
    /// State variables this switch owns under this epoch.
    pub local_vars: BTreeSet<StateVar>,
    /// External ports attached to this switch.
    pub ports: BTreeSet<PortId>,
    /// Global variable→owner placement, for forwarding towards state.
    pub placement: Arc<BTreeMap<StateVar, SwitchId>>,
}

/// A staged (prepared, uncommitted) update.
struct Pending {
    view: Arc<EpochView>,
}

struct AgentCore {
    /// The running configuration.
    current: Option<Arc<EpochView>>,
    /// Recently committed epochs, for in-flight packets (pruned to
    /// [`EPOCH_HISTORY`]).
    views: BTreeMap<u64, Arc<EpochView>>,
    /// The staged update, if any.
    pending: Option<Pending>,
    /// Last shipped metadata/placement, carried forward when a prepare
    /// says "unchanged".
    meta: SwitchMeta,
    placement: Arc<BTreeMap<StateVar, SwitchId>>,
}

/// Monotone counters describing what an agent has done.
#[derive(Default)]
pub struct AgentStats {
    /// Updates staged successfully.
    pub prepares: AtomicU64,
    /// Updates whose staging failed (mirror divergence, bad payload).
    pub prepare_failures: AtomicU64,
    /// Updates committed.
    pub commits: AtomicU64,
    /// Updates aborted after staging.
    pub aborts: AtomicU64,
    /// Full-table resyncs applied.
    pub resyncs: AtomicU64,
    /// Total delta payload bytes applied.
    pub delta_bytes: AtomicU64,
    /// Total nodes appended to the mirror by deltas.
    pub nodes_appended: AtomicU64,
    /// Migrated tables adopted.
    pub tables_installed: AtomicU64,
    /// Prepares that reused a cached flatten (rollback / A/B flip to a
    /// recently staged root) instead of re-flattening the mirror.
    pub flat_cache_hits: AtomicU64,
}

/// A per-switch update agent (see the module docs).
pub struct SwitchAgent {
    switch: SwitchId,
    name: String,
    /// The cached distribution pool; `None` before the first resync or
    /// after a failed delta left it untrusted. Separate from `core` so the
    /// expensive prepare work (delta decode, re-intern, flatten) never
    /// blocks the packet path, which only locks `core` to resolve views.
    mirror: Mutex<Option<Pool>>,
    /// Flatten results by root, for revisited programs (locked after
    /// `mirror` when both are held).
    flat_cache: Mutex<FlatCache>,
    core: Mutex<AgentCore>,
    store: StateShards,
    egress: EgressQueues,
    stats: AgentStats,
    /// Artificial delay before each reply send — emulates the control
    /// network's RTT in benchmarks and soak runs so fan-out scaling is
    /// measured against realistic per-agent latency, not loopback time.
    ack_delay: Option<Duration>,
}

impl SwitchAgent {
    /// An agent for one switch, with egress queues over its external ports
    /// bounded at `queue_capacity`.
    pub fn new(
        switch: SwitchId,
        name: impl Into<String>,
        ports: impl IntoIterator<Item = PortId>,
        queue_capacity: usize,
    ) -> SwitchAgent {
        SwitchAgent {
            switch,
            name: name.into(),
            mirror: Mutex::new(None),
            flat_cache: Mutex::new(FlatCache::default()),
            core: Mutex::new(AgentCore {
                current: None,
                views: BTreeMap::new(),
                pending: None,
                meta: SwitchMeta {
                    local_vars: BTreeSet::new(),
                    ports: BTreeSet::new(),
                },
                placement: Arc::new(BTreeMap::new()),
            }),
            store: StateShards::new(DEFAULT_STATE_SHARDS),
            egress: EgressQueues::new(ports, queue_capacity),
            stats: AgentStats::default(),
            ack_delay: None,
        }
    }

    /// Delay every reply by `delay` — an emulated control-network RTT for
    /// benchmarks and soak runs (see the `ack_delay` field docs).
    pub fn with_ack_delay(mut self, delay: Duration) -> SwitchAgent {
        self.ack_delay = Some(delay);
        self
    }

    /// The switch this agent manages.
    pub fn switch(&self) -> SwitchId {
        self.switch
    }

    /// The switch's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The agent's sharded state plane.
    pub fn store(&self) -> &StateShards {
        &self.store
    }

    /// The agent's per-port egress queues.
    pub fn egress(&self) -> &EgressQueues {
        &self.egress
    }

    /// The agent's counters.
    pub fn stats(&self) -> &AgentStats {
        &self.stats
    }

    /// The number of nodes in the agent's mirror pool (0 before a sync).
    pub fn mirror_len(&self) -> usize {
        self.mirror.lock().as_ref().map_or(0, Pool::len)
    }

    /// The running configuration, if any epoch has committed.
    pub fn current_view(&self) -> Option<Arc<EpochView>> {
        self.core.lock().current.clone()
    }

    /// Resolve the view for a specific epoch: a committed one from the
    /// history ring, or the staged one mid-commit (a packet stamped with the
    /// new epoch proves every agent prepared it; see the module docs).
    pub fn view_for(&self, epoch: u64) -> Option<Arc<EpochView>> {
        let core = self.core.lock();
        if let Some(view) = core.views.get(&epoch) {
            return Some(Arc::clone(view));
        }
        core.pending
            .as_ref()
            .filter(|p| p.view.epoch == epoch)
            .map(|p| Arc::clone(&p.view))
    }

    /// Handle one controller message, producing any replies. Exposed so
    /// tests can drive an agent synchronously; [`SwitchAgent::run`] is the
    /// threaded loop around it.
    pub fn handle(&self, msg: ToAgent) -> Vec<FromAgent> {
        match msg {
            ToAgent::Prepare(prep) => vec![self.prepare(*prep)],
            ToAgent::Commit { epoch } => self.commit(epoch).into_iter().collect(),
            ToAgent::Abort { epoch } => {
                let mut core = self.core.lock();
                if core.pending.as_ref().is_some_and(|p| p.view.epoch == epoch) {
                    core.pending = None;
                    self.stats.aborts.fetch_add(1, Ordering::Relaxed);
                }
                Vec::new()
            }
            ToAgent::InstallTable { epoch, var, table } => {
                match self.store.remove_var(&var) {
                    None => self.store.insert_table(var.clone(), table),
                    Some(fresh) => {
                        // New-epoch packets may already have written
                        // this variable here before the migrated table
                        // arrived; those entries are newer and win,
                        // the migrated history fills in the rest.
                        // (Read-modify-write entries touched in the
                        // window still lose the migrated base — see the
                        // migration caveat in the controller docs.)
                        let mut merged = table;
                        for (index, value) in fresh.iter() {
                            merged.set(index.clone(), value.clone());
                        }
                        self.store.insert_table(var.clone(), merged);
                    }
                }
                self.stats.tables_installed.fetch_add(1, Ordering::Relaxed);
                vec![FromAgent::Installed {
                    switch: self.switch,
                    epoch,
                    var,
                }]
            }
            ToAgent::Shutdown => Vec::new(),
        }
    }

    /// The agent's message loop: receive, handle, reply, until `Shutdown`
    /// or a dead transport.
    pub fn run(self: Arc<Self>, endpoint: impl AgentEndpoint) {
        loop {
            let msg = match endpoint.recv() {
                Ok(msg) => msg,
                Err(_) => return,
            };
            let shutdown = matches!(msg, ToAgent::Shutdown);
            let replies = self.handle(msg);
            if let (Some(delay), false) = (self.ack_delay, replies.is_empty()) {
                std::thread::sleep(delay);
            }
            for reply in replies {
                if endpoint.send(reply).is_err() {
                    return;
                }
            }
            if shutdown {
                return;
            }
        }
    }

    fn prepare(&self, prep: PrepareMsg) -> FromAgent {
        let fail = |stats: &AgentStats, reason: String| {
            stats.prepare_failures.fetch_add(1, Ordering::Relaxed);
            FromAgent::PrepareFailed {
                switch: self.switch,
                epoch: prep.epoch,
                reason,
            }
        };

        // All the expensive staging work — delta decode, re-interning,
        // flattening — happens under the *mirror* lock only; the packet
        // path resolves views through `core` and is never blocked by it.
        let mut guard = self.mirror.lock();
        let before = if prep.resync {
            0
        } else {
            guard.as_ref().map_or(0, Pool::len)
        };
        let root = if prep.resync {
            match decode_delta_fresh(&prep.delta) {
                Ok((pool, root)) => {
                    *guard = Some(pool);
                    // A resync renumbers the mirror: cached flatten results
                    // keyed by old-numbering roots are meaningless now.
                    self.flat_cache.lock().clear();
                    self.stats.resyncs.fetch_add(1, Ordering::Relaxed);
                    root
                }
                Err(e) => return fail(&self.stats, format!("resync rejected: {e}")),
            }
        } else {
            let Some(mirror) = guard.as_mut() else {
                return fail(&self.stats, "no mirror: agent was never synced".into());
            };
            match apply_delta(&prep.delta, mirror) {
                Ok(root) => root,
                Err(e) => {
                    // A failed apply may have left partial suffix nodes
                    // behind; drop the mirror so the controller resyncs.
                    *guard = None;
                    self.flat_cache.lock().clear();
                    return fail(&self.stats, format!("delta rejected: {e}"));
                }
            }
        };
        let mirror = guard.as_ref().expect("mirror just (re)built");
        let new_nodes = (mirror.len() - before) as u64;

        // Flatten here, in prepare: commit must be a pointer flip. Revisited
        // roots (rollbacks, A/B flips) come out of the flatten cache — the
        // append-only mirror guarantees a root id still names the same
        // program.
        let (flat, tables) = {
            let mut cache = self.flat_cache.lock();
            match cache.get(root) {
                Some(hit) => {
                    self.stats.flat_cache_hits.fetch_add(1, Ordering::Relaxed);
                    hit
                }
                None => {
                    let flat = Arc::new(FlatProgram::from_pool(mirror, root));
                    let tables = Arc::new(TableProgram::compile(&flat));
                    cache.insert(root, Arc::clone(&flat), Arc::clone(&tables));
                    (flat, tables)
                }
            }
        };
        drop(guard);

        let mut core = self.core.lock();
        let meta = prep.meta.unwrap_or_else(|| core.meta.clone());
        let placement = match prep.placement {
            Some(p) => Arc::new(p),
            None => Arc::clone(&core.placement),
        };
        let view = Arc::new(EpochView {
            epoch: prep.epoch,
            flat,
            tables,
            local_vars: meta.local_vars.clone(),
            ports: meta.ports.clone(),
            placement,
        });
        core.pending = Some(Pending { view });
        self.stats.prepares.fetch_add(1, Ordering::Relaxed);
        self.stats
            .delta_bytes
            .fetch_add(prep.delta.len() as u64, Ordering::Relaxed);
        self.stats
            .nodes_appended
            .fetch_add(new_nodes, Ordering::Relaxed);
        FromAgent::Prepared {
            switch: self.switch,
            epoch: prep.epoch,
            new_nodes,
        }
    }

    fn commit(&self, epoch: u64) -> Option<FromAgent> {
        let mut core = self.core.lock();
        let pending = core.pending.take()?;
        if pending.view.epoch != epoch {
            // A stray commit for some other epoch: put the staged update
            // back and ignore.
            core.pending = Some(pending);
            return None;
        }
        let view = pending.view;
        core.meta = SwitchMeta {
            local_vars: view.local_vars.clone(),
            ports: view.ports.clone(),
        };
        core.placement = Arc::clone(&view.placement);
        core.views.insert(epoch, Arc::clone(&view));
        while core.views.len() > EPOCH_HISTORY {
            let oldest = *core.views.keys().next().expect("non-empty");
            core.views.remove(&oldest);
        }
        core.current = Some(Arc::clone(&view));
        drop(core);

        // Yield the tables of variables this switch no longer owns — the
        // "state moves with its owner" half of the consistent update. The
        // store, not a controller-computed release list, is authoritative:
        // this also evicts tables stranded by an earlier failed update, so
        // stale state can never silently resurface on a later re-placement.
        let mut yields = Vec::new();
        let to_yield: Vec<StateVar> = self
            .store
            .variables()
            .into_iter()
            .filter(|v| !view.local_vars.contains(v))
            .collect();
        for var in to_yield {
            if let Some(table) = self.store.remove_var(&var) {
                yields.push((var, table));
            }
        }
        self.stats.commits.fetch_add(1, Ordering::Relaxed);
        Some(FromAgent::Committed {
            switch: self.switch,
            epoch,
            yields,
        })
    }
}
