//! The distribution controller: turns each recompile into per-switch wire
//! deltas and drives the two-phase epoch commit across the agents.
//!
//! The controller owns a [`CompilerSession`] and an **append-only
//! distribution pool**. After every recompile it imports the freshly
//! compiled diagram into that pool — hash-consing makes the import dedupe
//! against everything ever shipped, so the pool grows by exactly the
//! *structurally new* nodes of the update — and ships each agent the
//! node-table suffix past what that agent already mirrors
//! ([`snap_xfdd::encode_delta`]), plus only the per-switch metadata entries
//! that changed ([`snap_session::SwitchChanges`]). A working-set edit
//! therefore costs a few nodes on the wire; a rollback costs a zero-node
//! delta carrying just the old root.
//!
//! **Commit invariant.** An update is distributed in two phases: `Prepare`
//! to every agent (stage mirror + flattened view; running config untouched),
//! then — only after *every* agent acknowledged — `Commit` to every agent
//! (pointer flip + yield of migrated state tables). Packets are stamped with
//! their ingress epoch and resolve that epoch's view at every hop, and a
//! packet can only be stamped with the new epoch after some agent committed
//! it, which the controller only orders once all agents hold the staged
//! view. Hence no packet ever mixes two epochs, even though the flip
//! reaches agents one message at a time — the same invariant
//! `Network::swap_configs` gets from its single atomic pointer swap, now
//! preserved across a distributed commit. If any prepare fails, the whole
//! epoch is aborted and no agent flips.
//!
//! State migration keeps the eager-migration caveats of `swap_configs`, in
//! both directions: tables move at commit, so (a) a packet of the *old*
//! epoch that reaches the old owner after its table was yielded writes into
//! a fresh table and is orphaned, and (b) a packet of the *new* epoch that
//! reaches the new owner before its `InstallTable` arrives starts a fresh
//! entry — the install merges around such entries (newer writes win) rather
//! than replacing them, but a read-modify-write in that window still misses
//! the migrated base value. Placement-stable updates (the session reuses
//! placement whenever mapping and dependencies are unchanged) have no such
//! window.

use crate::transport::{
    ControllerEndpoint, FromAgent, PrepareMsg, SwitchMeta, ToAgent, TransportError,
};
use snap_core::Compiled;
use snap_lang::{Policy, StateTable, StateVar};
use snap_session::{CompilerSession, SessionUpdate};
use snap_telemetry::{CommitEvent, Telemetry};
use snap_topology::{NodeId as SwitchId, TrafficMatrix};
use snap_xfdd::{encode_delta, encode_diagram, CompileError, Pool};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors surfaced by the distribution plane.
#[derive(Debug)]
pub enum DistribError {
    /// The session rejected the policy.
    Compile(CompileError),
    /// A transport operation against an agent failed.
    Transport {
        /// The agent's switch name.
        switch: String,
        /// The underlying failure.
        error: TransportError,
    },
    /// An agent refused to stage the update; the epoch was aborted
    /// everywhere and no configuration changed.
    PrepareRejected {
        /// The rejecting switch name.
        switch: String,
        /// The agent's reason.
        reason: String,
    },
    /// An agent replied out of protocol.
    Protocol {
        /// The offending switch name.
        switch: String,
        /// What was received.
        unexpected: String,
    },
}

impl fmt::Display for DistribError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistribError::Compile(e) => write!(f, "compilation failed: {e:?}"),
            DistribError::Transport { switch, error } => {
                write!(f, "transport to {switch} failed: {error}")
            }
            DistribError::PrepareRejected { switch, reason } => {
                write!(f, "{switch} rejected prepare: {reason}")
            }
            DistribError::Protocol { switch, unexpected } => {
                write!(f, "{switch} broke protocol: {unexpected}")
            }
        }
    }
}

impl std::error::Error for DistribError {}

impl From<CompileError> for DistribError {
    fn from(e: CompileError) -> Self {
        DistribError::Compile(e)
    }
}

/// Tunables of a [`Controller`].
#[derive(Clone, Debug)]
pub struct DistribOptions {
    /// Per-reply transport timeout.
    pub timeout: Duration,
    /// Auto-compaction policy for the append-only distribution pool: after
    /// a successful commit, if the pool holds more than `compact_threshold`
    /// times the live program's node count, the controller compacts the
    /// pool down to the live program ([`Controller::compact_distribution`])
    /// and schedules a full-table resync of every mirror on the next
    /// update. In-flight packets keep their tags valid throughout: agents
    /// serve their existing (old-numbering) views until the resync commits,
    /// and the resync preserves the fresh pool's exact numbering. `None`
    /// disables auto-compaction.
    pub compact_threshold: Option<usize>,
}

impl Default for DistribOptions {
    fn default() -> Self {
        DistribOptions {
            timeout: Duration::from_secs(5),
            compact_threshold: None,
        }
    }
}

/// What one distributed commit did — the numbers behind the delta-shipping
/// story.
#[derive(Clone, Debug)]
pub struct CommitReport {
    /// The committed distribution epoch.
    pub epoch: u64,
    /// The session epoch the update came from.
    pub session_epoch: u64,
    /// Structurally new nodes this update added to the distribution pool.
    pub new_nodes: usize,
    /// Bytes of the suffix delta shipped to each in-sync agent. When
    /// `resyncs > 0`, those agents received `resync_bytes` instead — this
    /// field alone understates the shipped total on resync updates.
    pub delta_bytes: usize,
    /// Bytes a full-program payload of the same compilation would cost
    /// (`encode_diagram` of the frozen program) — the delta's baseline.
    pub full_bytes: usize,
    /// Agents that needed a full-table resync instead of the suffix.
    pub resyncs: usize,
    /// Bytes of the full-table resync payload each resyncing agent
    /// received (0 when no agent resynced).
    pub resync_bytes: usize,
    /// Switches whose metadata (owned variables / ports) was re-shipped.
    pub meta_shipped: usize,
    /// State tables migrated between owners at commit.
    pub migrated_tables: usize,
    /// Nodes reclaimed by the auto-compaction that ran after this commit
    /// (0 when the pool was under threshold or auto-compaction is off).
    pub compacted_nodes: usize,
    /// Wall-clock spent in the prepare phase (all agents staged).
    pub prepare_time: Duration,
    /// Wall-clock spent in the commit phase (all agents flipped, tables
    /// migrated).
    pub commit_time: Duration,
}

impl CommitReport {
    /// Delta payload size as a fraction of the full-program payload.
    pub fn delta_ratio(&self) -> f64 {
        self.delta_bytes as f64 / self.full_bytes.max(1) as f64
    }
}

struct AgentLink {
    switch: SwitchId,
    name: String,
    endpoint: Box<dyn ControllerEndpoint>,
    /// Mirror length after the agent's last successful prepare; valid only
    /// when `needs_resync` is false.
    synced_len: usize,
    needs_resync: bool,
    /// Metadata last committed to this agent.
    meta: Option<SwitchMeta>,
}

/// The distribution controller (see the module docs).
pub struct Controller {
    session: CompilerSession,
    /// The append-only distribution pool every agent mirrors.
    dist: Pool,
    /// Length of a fresh pool under the current variable order (the resync
    /// base).
    fresh_len: usize,
    epoch: u64,
    agents: BTreeMap<SwitchId, AgentLink>,
    /// Set when a distribute failed: the session's change tracking can no
    /// longer be trusted as a baseline (it records every *taken* update,
    /// shipped or not), so the next update re-ships metadata and placement
    /// to everyone.
    dirty: bool,
    /// Cached full-program payload size of the last distributed
    /// compilation, so the baseline statistic does not re-encode the whole
    /// diagram on every working-set flip.
    full_cache: Option<(Arc<Compiled>, usize)>,
    options: DistribOptions,
    history: Vec<CommitReport>,
    /// Where commit events (prepare/commit/abort/compaction, with payload
    /// sizes and per-agent ack timings) are logged; shared with the data
    /// plane by the deployment helpers so one snapshot covers both.
    telemetry: Option<Telemetry>,
}

impl Controller {
    /// A controller around a compiler session, with no agents attached yet.
    pub fn new(session: CompilerSession) -> Controller {
        let dist = Pool::new(snap_xfdd::VarOrder::empty());
        let fresh_len = dist.len();
        Controller {
            session,
            dist,
            fresh_len,
            epoch: 0,
            agents: BTreeMap::new(),
            dirty: false,
            full_cache: None,
            options: DistribOptions::default(),
            history: Vec::new(),
            telemetry: None,
        }
    }

    /// Log commit events (and the session's compile counters) into
    /// `telemetry`. Events cost nothing per packet — they are recorded at
    /// control-plane rate, once per distribute call.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Controller {
        self.session.set_telemetry(telemetry.clone());
        self.telemetry = Some(telemetry);
        self
    }

    /// The controller's telemetry instance, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    fn record_event(&self, event: CommitEvent) {
        if let Some(t) = &self.telemetry {
            t.events().record(event);
        }
    }

    /// Publish the distribution pool's size as the `pool.distribution_nodes`
    /// gauge — called whenever the pool grows (import) or shrinks
    /// (compaction), i.e. at control-plane rate, so the name lookup is fine.
    fn update_pool_gauge(&self) {
        if let Some(t) = &self.telemetry {
            t.registry()
                .gauge("pool.distribution_nodes")
                .set(self.dist.len() as i64);
        }
    }

    /// Set the per-reply transport timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Controller {
        self.options.timeout = timeout;
        self
    }

    /// Replace the controller's tunables (timeout, auto-compaction policy).
    pub fn with_options(mut self, options: DistribOptions) -> Controller {
        self.options = options;
        self
    }

    /// The controller's tunables.
    pub fn options(&self) -> &DistribOptions {
        &self.options
    }

    /// Attach an agent for a switch. The first update it receives is a full
    /// resync.
    pub fn attach(&mut self, switch: SwitchId, endpoint: Box<dyn ControllerEndpoint>) {
        let name = self.session.topology().node_name(switch).to_string();
        self.agents.insert(
            switch,
            AgentLink {
                switch,
                name,
                endpoint,
                synced_len: 0,
                needs_resync: true,
                meta: None,
            },
        );
    }

    /// The wrapped compiler session.
    pub fn session(&self) -> &CompilerSession {
        &self.session
    }

    /// The current distribution epoch (0 = nothing committed yet).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of attached agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Nodes accumulated in the append-only distribution pool.
    pub fn dist_pool_len(&self) -> usize {
        self.dist.len()
    }

    /// Reports of every committed update, oldest first.
    pub fn history(&self) -> &[CommitReport] {
        &self.history
    }

    /// Compile a policy update and distribute it to every agent as a
    /// two-phase delta commit. Returns the commit report, or an error if
    /// compilation, staging or transport failed (on staging failure the
    /// epoch was aborted everywhere and the previous configuration keeps
    /// running).
    pub fn update_policy(&mut self, policy: &Policy) -> Result<CommitReport, DistribError> {
        self.session.update_policy(policy)?;
        let update = self
            .session
            .take_update()
            .expect("successful compile yields an update");
        self.distribute(update)
    }

    /// React to a traffic-matrix change and distribute the re-routed
    /// result. `Ok(None)` when nothing has been compiled yet.
    pub fn update_traffic(
        &mut self,
        traffic: TrafficMatrix,
    ) -> Result<Option<CommitReport>, DistribError> {
        if self.session.update_traffic(traffic).is_none() {
            return Ok(None);
        }
        let update = self
            .session
            .take_update()
            .expect("reroute yields an update");
        self.distribute(update).map(Some)
    }

    /// Tell every agent to stop its message loop.
    pub fn shutdown(&mut self) {
        for link in self.agents.values() {
            let _ = link.endpoint.send(ToAgent::Shutdown);
        }
    }

    /// Distribute one session update (see [`Self::update_policy`]).
    pub fn distribute(&mut self, update: SessionUpdate) -> Result<CommitReport, DistribError> {
        let xfdd = &update.compiled.xfdd;

        // A changed state-variable order invalidates every mirror: the
        // interned diagrams were composed under the old test order. Reset
        // the distribution pool and resync everyone.
        if xfdd.pool().order() != self.dist.order() {
            self.dist = Pool::new(xfdd.pool().order().clone());
            self.fresh_len = self.dist.len();
            for link in self.agents.values_mut() {
                link.needs_resync = true;
            }
        }

        // Import dedupes against everything ever shipped: the suffix past
        // `base` is exactly the structurally new part of this update.
        let base = self.dist.len();
        let root = self.dist.import(xfdd.pool(), xfdd.root());
        let new_nodes = self.dist.len() - base;
        self.update_pool_gauge();
        // The epoch number is burned up front, success or failure: once any
        // Prepare (let alone Commit) may have reached an agent, replies and
        // staged views for this number can exist out there, and reusing it
        // for a different configuration would let a stale reply be taken
        // for a fresh one (or, after a partial commit, break the
        // one-epoch-per-packet invariant outright). Stale replies from a
        // failed update always carry a smaller epoch than any later one and
        // are discarded by `recv_reply`.
        let epoch = self.epoch + 1;
        self.epoch = epoch;

        // One payload per distinct mirror state: in-sync agents share the
        // suffix delta, diverged/fresh agents get the full table.
        let delta = encode_delta(&self.dist, base, root);
        let mut resync_payload: Option<Vec<u8>> = None;
        // The full-payload baseline for the report, cached per compiled
        // program so a working-set flip does not pay a full encode just to
        // fill in a statistic.
        let full_bytes = match &self.full_cache {
            Some((compiled, len)) if Arc::ptr_eq(compiled, &update.compiled) => *len,
            _ => {
                let len = encode_diagram(xfdd.pool(), xfdd.root()).len();
                self.full_cache = Some((Arc::clone(&update.compiled), len));
                len
            }
        };

        // One source of truth for per-switch metadata: the map the session
        // already derived for its change tracking.
        let meta_by_switch: BTreeMap<SwitchId, SwitchMeta> = update
            .switch_meta
            .iter()
            .map(|(&node, (local_vars, ports))| {
                (
                    node,
                    SwitchMeta {
                        local_vars: local_vars.clone(),
                        ports: ports.clone(),
                    },
                )
            })
            .collect();
        let placement: BTreeMap<StateVar, SwitchId> = update.compiled.placement.placement.clone();
        // The session's per-switch change tracking decides what to re-ship
        // in steady state; after any failed distribute its baseline is off
        // by the unshipped update, so everything goes out again once.
        let ship_all = self.dirty || update.changes.first;
        let placement_changed = ship_all || update.changes.placement_changed;

        // -- Phase one: prepare everywhere. --------------------------------
        let t_prepare = Instant::now();
        let mut resyncs = 0usize;
        let mut meta_shipped = 0usize;
        let empty_meta = SwitchMeta {
            local_vars: BTreeSet::new(),
            ports: BTreeSet::new(),
        };
        let mut send_failure: Option<DistribError> = None;
        for link in self.agents.values_mut() {
            let resync = link.needs_resync || link.synced_len != base;
            let payload = if resync {
                resyncs += 1;
                resync_payload
                    .get_or_insert_with(|| encode_delta(&self.dist, self.fresh_len, root))
                    .clone()
            } else {
                delta.clone()
            };
            let new_meta = meta_by_switch.get(&link.switch).unwrap_or(&empty_meta);
            let meta = if resync
                || ship_all
                || link.meta.is_none()
                || update.changes.meta_changed.contains(&link.switch)
            {
                meta_shipped += 1;
                Some(new_meta.clone())
            } else {
                None
            };
            let msg = PrepareMsg {
                epoch,
                resync,
                delta: payload,
                meta,
                placement: (resync || placement_changed).then(|| placement.clone()),
            };
            if let Err(error) = link.endpoint.send(ToAgent::Prepare(Box::new(msg))) {
                // The agent's state is unknown (its transport just died
                // mid-protocol): mark it for resync and fail the update.
                link.needs_resync = true;
                send_failure = Some(DistribError::Transport {
                    switch: link.name.clone(),
                    error,
                });
                break;
            }
        }
        if let Some(err) = send_failure {
            // Abort the (burned) epoch everywhere and bail without
            // collecting replies — any already-queued Prepared acks carry
            // this epoch and will be discarded by the next update's recv
            // loop as stale.
            for link in self.agents.values() {
                let _ = link.endpoint.send(ToAgent::Abort { epoch });
            }
            self.dirty = true;
            self.record_event(CommitEvent::Abort {
                epoch,
                reason: err.to_string(),
            });
            return Err(err);
        }

        // Collect one Prepared/PrepareFailed per agent before touching any
        // running configuration.
        let mut failure: Option<DistribError> = None;
        let mut prepare_acks: Vec<(String, u64)> = Vec::new();
        for link in self.agents.values_mut() {
            match recv_reply(link, self.options.timeout, epoch) {
                Ok(FromAgent::Prepared { epoch: e, .. }) if e == epoch => {
                    link.synced_len = self.dist.len();
                    link.needs_resync = false;
                    prepare_acks.push((link.name.clone(), t_prepare.elapsed().as_micros() as u64));
                }
                Ok(FromAgent::PrepareFailed { reason, .. }) => {
                    link.needs_resync = true;
                    failure.get_or_insert(DistribError::PrepareRejected {
                        switch: link.name.clone(),
                        reason,
                    });
                }
                Ok(other) => {
                    link.needs_resync = true;
                    failure.get_or_insert(DistribError::Protocol {
                        switch: link.name.clone(),
                        unexpected: format!("{other:?}"),
                    });
                }
                Err(error) => {
                    link.needs_resync = true;
                    failure.get_or_insert(DistribError::Transport {
                        switch: link.name.clone(),
                        error,
                    });
                }
            }
        }
        if let Some(err) = failure {
            // Abort everywhere: nobody flips, the previous epoch keeps
            // running on every switch (the burned epoch number is simply
            // skipped), and the session's change baseline now includes an
            // update that never shipped — hence `dirty`.
            for link in self.agents.values() {
                let _ = link.endpoint.send(ToAgent::Abort { epoch });
            }
            self.dirty = true;
            self.record_event(CommitEvent::Abort {
                epoch,
                reason: err.to_string(),
            });
            return Err(err);
        }
        let prepare_time = t_prepare.elapsed();
        self.record_event(CommitEvent::Prepare {
            epoch,
            agents: self.agents.len(),
            resyncs,
            delta_bytes: delta.len(),
            resync_bytes: resync_payload.as_ref().map_or(0, Vec::len),
            micros: prepare_time.as_micros() as u64,
            per_agent: prepare_acks,
        });

        // -- Phase two: flip everywhere, then migrate yielded state. -------
        // If this phase fails partway, some agent already holds a committed
        // view for `epoch` (which is why the number was burned up front);
        // recovery is conservative: resync everyone and re-ship all
        // metadata on the next update.
        let t_commit = Instant::now();
        let (migrated_tables, commit_acks) =
            match commit_phase(&mut self.agents, epoch, self.options.timeout, &placement) {
                Ok(done) => done,
                Err(err) => {
                    self.dirty = true;
                    for link in self.agents.values_mut() {
                        link.needs_resync = true;
                        link.meta = None;
                    }
                    self.record_event(CommitEvent::Abort {
                        epoch,
                        reason: err.to_string(),
                    });
                    return Err(err);
                }
            };
        let commit_time = t_commit.elapsed();
        self.record_event(CommitEvent::Commit {
            epoch,
            migrated_tables,
            micros: commit_time.as_micros() as u64,
            per_agent: commit_acks,
        });
        if let Some(t) = &self.telemetry {
            let r = t.registry();
            r.histogram("commit.prepare_us")
                .record(prepare_time.as_micros() as u64);
            r.histogram("commit.commit_us")
                .record(commit_time.as_micros() as u64);
        }

        // Bookkeeping: the epoch is committed everywhere.
        self.dirty = false;
        for link in self.agents.values_mut() {
            let meta = meta_by_switch
                .get(&link.switch)
                .cloned()
                .unwrap_or_else(|| empty_meta.clone());
            link.meta = Some(meta);
        }
        // Auto-compaction policy: the distribution pool is append-only, so
        // a long-lived controller accumulates every superseded generation.
        // Once the pool exceeds the configured multiple of the *live*
        // program's size, compact it down to the live program now — the
        // agents keep serving their existing views (packet tags stay valid;
        // views are immutable bundles over the old numbering) and the next
        // update resyncs every mirror against the renumbered pool.
        let mut compacted_nodes = 0;
        if let Some(factor) = self.options.compact_threshold {
            let mut live = 0usize;
            self.dist.visit_reachable([root], |_, _| {
                live += 1;
                true
            });
            if self.dist.len() > factor.max(1) * live.max(1) {
                compacted_nodes = self.compact_distribution();
                self.record_event(CommitEvent::Compaction {
                    epoch,
                    reclaimed: compacted_nodes,
                });
            }
        }

        let report = CommitReport {
            epoch,
            session_epoch: update.session_epoch,
            new_nodes,
            delta_bytes: delta.len(),
            full_bytes,
            resyncs,
            resync_bytes: resync_payload.as_ref().map_or(0, Vec::len),
            meta_shipped,
            migrated_tables,
            compacted_nodes,
            prepare_time,
            commit_time,
        };
        self.history.push(report.clone());
        Ok(report)
    }

    /// Reset the distribution pool to only the currently shipped program and
    /// force a full resync of every agent on the next update — the GC valve
    /// for very long-lived controllers whose append-only pool has
    /// accumulated many superseded generations.
    pub fn compact_distribution(&mut self) -> usize {
        let Some(compiled) = self.session.current_shared() else {
            return 0;
        };
        let before = self.dist.len();
        let mut fresh = Pool::new(self.dist.order().clone());
        fresh.import(compiled.xfdd.pool(), compiled.xfdd.root());
        self.dist = fresh;
        self.fresh_len = Pool::new(self.dist.order().clone()).len();
        for link in self.agents.values_mut() {
            link.needs_resync = true;
        }
        self.update_pool_gauge();
        before.saturating_sub(self.dist.len())
    }
}

/// Receive the next reply for `epoch` on one agent link, discarding stale
/// replies left queued by an update that failed mid-flight (e.g. `Committed`
/// acknowledgements of a burned epoch that were never collected).
fn recv_reply(
    link: &mut AgentLink,
    timeout: Duration,
    epoch: u64,
) -> Result<FromAgent, TransportError> {
    let deadline = Instant::now() + timeout;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        let msg = link.endpoint.recv_timeout(remaining)?;
        let msg_epoch = match &msg {
            FromAgent::Prepared { epoch, .. }
            | FromAgent::PrepareFailed { epoch, .. }
            | FromAgent::Committed { epoch, .. }
            | FromAgent::Installed { epoch, .. } => *epoch,
        };
        if msg_epoch < epoch {
            continue;
        }
        return Ok(msg);
    }
}

/// Phase two of one update: order the flip on every agent, collect the
/// commit acknowledgements, and relay yielded state tables to their new
/// owners. Returns the number of migrated tables and per-agent
/// flip-acknowledgement timings (phase start → ack, microseconds).
///
/// Failures are collected, not short-circuited: agents that committed have
/// already *removed* their yielded tables, so every yield the controller
/// managed to receive is still delivered to its new owner before the first
/// error is reported — losing an acknowledgement must not also lose state.
/// (A table inside a reply that never arrived is unrecoverable here; the
/// agents' store-authoritative yield on the next commit re-homes anything
/// stranded on a switch, but counts carried by a lost reply are gone.)
fn commit_phase(
    agents: &mut BTreeMap<SwitchId, AgentLink>,
    epoch: u64,
    timeout: Duration,
    placement: &BTreeMap<StateVar, SwitchId>,
) -> Result<(usize, Vec<(String, u64)>), DistribError> {
    let start = Instant::now();
    let mut failure: Option<DistribError> = None;
    for link in agents.values() {
        if let Err(error) = link.endpoint.send(ToAgent::Commit { epoch }) {
            failure.get_or_insert(DistribError::Transport {
                switch: link.name.clone(),
                error,
            });
        }
    }
    let mut yields: Vec<(StateVar, StateTable)> = Vec::new();
    let mut acks: Vec<(String, u64)> = Vec::new();
    for link in agents.values_mut() {
        match recv_reply(link, timeout, epoch) {
            Ok(FromAgent::Committed {
                epoch: e,
                yields: y,
                ..
            }) if e == epoch => {
                acks.push((link.name.clone(), start.elapsed().as_micros() as u64));
                yields.extend(y);
            }
            Ok(other) => {
                failure.get_or_insert(DistribError::Protocol {
                    switch: link.name.clone(),
                    unexpected: format!("{other:?}"),
                });
            }
            Err(error) => {
                failure.get_or_insert(DistribError::Transport {
                    switch: link.name.clone(),
                    error,
                });
            }
        }
    }
    let migrated_tables = yields.len();
    for (var, table) in yields {
        // A yielded table moves to the variable's new owner; a variable
        // the new program no longer places is dropped (deterministic
        // fresh start on re-placement, matching `Network::swap_configs`).
        let Some(owner) = placement.get(&var) else {
            continue;
        };
        let Some(link) = agents.get_mut(owner) else {
            continue;
        };
        if let Err(error) = link.endpoint.send(ToAgent::InstallTable {
            epoch,
            var: var.clone(),
            table,
        }) {
            failure.get_or_insert(DistribError::Transport {
                switch: link.name.clone(),
                error,
            });
            continue;
        }
        match recv_reply(link, timeout, epoch) {
            Ok(FromAgent::Installed { .. }) => {}
            Ok(other) => {
                failure.get_or_insert(DistribError::Protocol {
                    switch: link.name.clone(),
                    unexpected: format!("{other:?}"),
                });
            }
            Err(error) => {
                failure.get_or_insert(DistribError::Transport {
                    switch: link.name.clone(),
                    error,
                });
            }
        }
    }
    match failure {
        Some(err) => Err(err),
        None => Ok((migrated_tables, acks)),
    }
}
