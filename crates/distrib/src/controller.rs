//! The distribution controller: turns each recompile into per-switch wire
//! deltas and drives the two-phase epoch commit across the agents.
//!
//! The controller owns a [`CompilerSession`] and an **append-only
//! distribution pool**. After every recompile it imports the freshly
//! compiled diagram into that pool — hash-consing makes the import dedupe
//! against everything ever shipped, so the pool grows by exactly the
//! *structurally new* nodes of the update — and ships each agent the
//! node-table suffix past what that agent already mirrors
//! ([`snap_xfdd::encode_delta`]), plus only the per-switch metadata entries
//! that changed ([`snap_session::SwitchChanges`]). A working-set edit
//! therefore costs a few nodes on the wire; a rollback costs a zero-node
//! delta carrying just the old root.
//!
//! **Commit invariant.** An update is distributed in two phases: `Prepare`
//! to every agent (stage mirror + flattened view; running config untouched),
//! then — only after *every* agent acknowledged — `Commit` to every agent
//! (pointer flip + yield of migrated state tables). Packets are stamped with
//! their ingress epoch and resolve that epoch's view at every hop, and a
//! packet can only be stamped with the new epoch after some agent committed
//! it, which the controller only orders once all agents hold the staged
//! view. Hence no packet ever mixes two epochs, even though the flip
//! reaches agents one message at a time — the same invariant
//! `Network::swap_configs` gets from its single atomic pointer swap, now
//! preserved across a distributed commit. If any prepare fails, the whole
//! epoch is aborted and no agent flips.
//!
//! State migration keeps the eager-migration caveats of `swap_configs`, in
//! both directions: tables move at commit, so (a) a packet of the *old*
//! epoch that reaches the old owner after its table was yielded writes into
//! a fresh table and is orphaned, and (b) a packet of the *new* epoch that
//! reaches the new owner before its `InstallTable` arrives starts a fresh
//! entry — the install merges around such entries (newer writes win) rather
//! than replacing them, but a read-modify-write in that window still misses
//! the migrated base value. Placement-stable updates (the session reuses
//! placement whenever mapping and dependencies are unchanged) have no such
//! window.
//!
//! **Concurrent fan-out.** Sends go out per-link, but every agent reply
//! arrives on one shared channel (the reply mux, [`ReplyTx`]) and is
//! consumed in *arrival order*, routed by `(switch, epoch)`: a straggler at
//! the front of the agent map no longer blocks reading everyone else's
//! already-queued acks, per-agent timings are stamped at reply arrival, one
//! deadline covers the whole phase instead of compounding per agent, and
//! stale or duplicate acks from burned epochs are discarded by key (counted
//! in [`MuxStats`]). `InstallTable` migrations for independent variables fan
//! out the same way.
//!
//! **Pipelined epochs.** [`Controller::distribute_async`] stages epoch N+1
//! on every agent while epoch N's commit acks are still draining, and
//! [`Controller::flush`] completes whatever is in flight. The 2PC invariant
//! is untouched because per-link FIFO order already guarantees each agent
//! sees `Commit{N}` before `Prepare{N+1}`, agents hold an `EPOCH_HISTORY`
//! ring of views, and the controller never orders `Commit{N+1}` until epoch
//! N has fully finished (commit acks *and* table installs). A prepare
//! failure for N+1 aborts only N+1; an N-commit failure cascade-aborts the
//! staged N+1 — both numbers are burned.

use crate::transport::{
    reply_channel, ControllerEndpoint, FromAgent, PrepareMsg, ReplyRx, ReplyTx, SwitchMeta,
    ToAgent, TransportError,
};
use snap_core::Compiled;
use snap_lang::{Policy, StateTable, StateVar};
use snap_session::{CompilerSession, SessionUpdate};
use snap_telemetry::{AgentTimings, CommitEvent, Telemetry};
use snap_topology::{NodeId as SwitchId, TrafficMatrix};
use snap_xfdd::{encode_delta, encode_diagram, CompileError, NodeId, Pool};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors surfaced by the distribution plane.
#[derive(Debug)]
pub enum DistribError {
    /// The session rejected the policy.
    Compile(CompileError),
    /// A transport operation against an agent failed.
    Transport {
        /// The agent's switch name.
        switch: String,
        /// The underlying failure.
        error: TransportError,
    },
    /// An agent refused to stage the update; the epoch was aborted
    /// everywhere and no configuration changed.
    PrepareRejected {
        /// The rejecting switch name.
        switch: String,
        /// The agent's reason.
        reason: String,
    },
    /// An agent replied out of protocol.
    Protocol {
        /// The offending switch name.
        switch: String,
        /// What was received.
        unexpected: String,
    },
}

impl fmt::Display for DistribError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistribError::Compile(e) => write!(f, "compilation failed: {e:?}"),
            DistribError::Transport { switch, error } => {
                write!(f, "transport to {switch} failed: {error}")
            }
            DistribError::PrepareRejected { switch, reason } => {
                write!(f, "{switch} rejected prepare: {reason}")
            }
            DistribError::Protocol { switch, unexpected } => {
                write!(f, "{switch} broke protocol: {unexpected}")
            }
        }
    }
}

impl std::error::Error for DistribError {}

impl From<CompileError> for DistribError {
    fn from(e: CompileError) -> Self {
        DistribError::Compile(e)
    }
}

/// Tunables of a [`Controller`].
#[derive(Clone, Debug)]
pub struct DistribOptions {
    /// Transport timeout covering one whole phase (all agents' prepare acks,
    /// or all commit acks, or all table installs) — it does not compound per
    /// agent, so the worst case is one timeout per phase, not N.
    pub timeout: Duration,
    /// Auto-compaction policy for the append-only distribution pool: after
    /// a successful commit, if the pool holds more than `compact_threshold`
    /// times the live program's node count, the controller compacts the
    /// pool down to the live program ([`Controller::compact_distribution`])
    /// and schedules a full-table resync of every mirror on the next
    /// update. In-flight packets keep their tags valid throughout: agents
    /// serve their existing (old-numbering) views until the resync commits,
    /// and the resync preserves the fresh pool's exact numbering. `None`
    /// disables auto-compaction.
    pub compact_threshold: Option<usize>,
}

impl Default for DistribOptions {
    fn default() -> Self {
        DistribOptions {
            timeout: Duration::from_secs(5),
            compact_threshold: None,
        }
    }
}

/// What one distributed commit did — the numbers behind the delta-shipping
/// story.
#[derive(Clone, Debug)]
pub struct CommitReport {
    /// The committed distribution epoch.
    pub epoch: u64,
    /// The session epoch the update came from.
    pub session_epoch: u64,
    /// Structurally new nodes this update added to the distribution pool.
    pub new_nodes: usize,
    /// Bytes of the suffix delta shipped to each in-sync agent. When
    /// `resyncs > 0`, those agents received `resync_bytes` instead — this
    /// field alone understates the shipped total on resync updates.
    pub delta_bytes: usize,
    /// Bytes a full-program payload of the same compilation would cost
    /// (`encode_diagram` of the frozen program) — the delta's baseline.
    pub full_bytes: usize,
    /// Agents that needed a full-table resync instead of the suffix.
    pub resyncs: usize,
    /// Bytes of the full-table resync payload each resyncing agent
    /// received (0 when no agent resynced).
    pub resync_bytes: usize,
    /// Switches whose metadata (owned variables / ports) was re-shipped.
    pub meta_shipped: usize,
    /// State tables migrated between owners at commit.
    pub migrated_tables: usize,
    /// Nodes reclaimed by the auto-compaction that ran after this commit
    /// (0 when the pool was under threshold or auto-compaction is off).
    pub compacted_nodes: usize,
    /// Wall-clock spent in the prepare phase (all agents staged).
    pub prepare_time: Duration,
    /// Wall-clock spent in the commit phase (all agents flipped, tables
    /// migrated).
    pub commit_time: Duration,
    /// How long this epoch's prepare fan-out overlapped the previous
    /// epoch's commit-ack drain — nonzero only on pipelined distributes
    /// ([`Controller::distribute_async`] back to back).
    pub pipeline_overlap: Duration,
}

impl CommitReport {
    /// Delta payload size as a fraction of the full-program payload.
    pub fn delta_ratio(&self) -> f64 {
        self.delta_bytes as f64 / self.full_bytes.max(1) as f64
    }
}

struct AgentLink {
    switch: SwitchId,
    name: String,
    endpoint: Box<dyn ControllerEndpoint>,
    /// Mirror length after the agent's last successful prepare; valid only
    /// when `needs_resync` is false.
    synced_len: usize,
    needs_resync: bool,
    /// Metadata last committed to this agent.
    meta: Option<SwitchMeta>,
}

/// Reply-mux bookkeeping: messages that arrived on the shared channel but
/// matched no outstanding expectation and were discarded by key.
#[derive(Clone, Copy, Debug, Default)]
pub struct MuxStats {
    /// Replies carrying an epoch older than every active one — acks of a
    /// burned epoch that arrived after the abort, or after their phase's
    /// deadline already passed.
    pub stale: u64,
    /// Replies from a switch whose ack for that phase was already consumed.
    pub duplicates: u64,
}

/// The prepare phase of one epoch, collected in ack-arrival order.
struct PrepCollect {
    epoch: u64,
    expect: BTreeSet<SwitchId>,
    consumed: BTreeSet<SwitchId>,
    /// (agent, micros from fan-out start to ack arrival), arrival order.
    acks: Vec<(String, u64)>,
    started: Instant,
    /// When the last prepare ack arrived (phase end, excluding any
    /// concurrent commit-ack drain time).
    finished: Instant,
    failure: Option<DistribError>,
}

/// A commit-ordered epoch whose acks may still be draining: everything
/// needed to finish it (collect `Committed`s, fan out table installs,
/// record events, finalize the report) after an arbitrary delay.
struct InFlight {
    epoch: u64,
    /// The epoch's root in the distribution pool (compaction liveness).
    root: NodeId,
    expect: BTreeSet<SwitchId>,
    consumed: BTreeSet<SwitchId>,
    /// (agent, micros from commit fan-out to ack arrival), arrival order.
    acks: Vec<(String, u64)>,
    yields: Vec<(StateVar, StateTable)>,
    placement: BTreeMap<StateVar, SwitchId>,
    meta_by_switch: BTreeMap<SwitchId, SwitchMeta>,
    started: Instant,
    /// When the most recent commit ack arrived (overlap measurement).
    last_ack: Instant,
    failure: Option<DistribError>,
    /// The report under construction; commit-phase fields are filled at
    /// completion.
    report: CommitReport,
}

/// The distribution controller (see the module docs).
pub struct Controller {
    session: CompilerSession,
    /// The append-only distribution pool every agent mirrors.
    dist: Pool,
    /// Length of a fresh pool under the current variable order (the resync
    /// base).
    fresh_len: usize,
    epoch: u64,
    agents: BTreeMap<SwitchId, AgentLink>,
    /// Set when a distribute failed: the session's change tracking can no
    /// longer be trusted as a baseline (it records every *taken* update,
    /// shipped or not), so the next update re-ships metadata and placement
    /// to everyone.
    dirty: bool,
    /// Cached full-program payload size of the last distributed
    /// compilation, so the baseline statistic does not re-encode the whole
    /// diagram on every working-set flip.
    full_cache: Option<(Arc<Compiled>, usize)>,
    options: DistribOptions,
    history: Vec<CommitReport>,
    /// Where commit events (prepare/commit/abort/compaction, with payload
    /// sizes and per-agent ack timings) are logged; shared with the data
    /// plane by the deployment helpers so one snapshot covers both.
    telemetry: Option<Telemetry>,
    /// The shared reply channel every agent link funnels into.
    reply_tx: ReplyTx,
    reply_rx: ReplyRx,
    /// The commit-ordered epoch whose acks are still draining, if any.
    in_flight: Option<InFlight>,
    mux: MuxStats,
}

impl Controller {
    /// A controller around a compiler session, with no agents attached yet.
    pub fn new(session: CompilerSession) -> Controller {
        let dist = Pool::new(snap_xfdd::VarOrder::empty());
        let fresh_len = dist.len();
        let (reply_tx, reply_rx) = reply_channel();
        Controller {
            session,
            dist,
            fresh_len,
            epoch: 0,
            agents: BTreeMap::new(),
            dirty: false,
            full_cache: None,
            options: DistribOptions::default(),
            history: Vec::new(),
            telemetry: None,
            reply_tx,
            reply_rx,
            in_flight: None,
            mux: MuxStats::default(),
        }
    }

    /// The sending half of this controller's reply mux: clone one into
    /// every agent link (`channel_link`) or socket reader so agent replies
    /// reach the controller.
    pub fn reply_sender(&self) -> ReplyTx {
        self.reply_tx.clone()
    }

    /// Reply-mux discard counters (stale / duplicate acks).
    pub fn mux_stats(&self) -> MuxStats {
        self.mux
    }

    /// The epoch whose commit acks are still draining, if a pipelined
    /// distribute is in flight.
    pub fn in_flight_epoch(&self) -> Option<u64> {
        self.in_flight.as_ref().map(|f| f.epoch)
    }

    /// Log commit events (and the session's compile counters) into
    /// `telemetry`. Events cost nothing per packet — they are recorded at
    /// control-plane rate, once per distribute call.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Controller {
        self.session.set_telemetry(telemetry.clone());
        self.telemetry = Some(telemetry);
        self
    }

    /// The controller's telemetry instance, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    fn record_event(&self, event: CommitEvent) {
        if let Some(t) = &self.telemetry {
            t.events().record(event);
        }
    }

    /// Publish the distribution pool's size as the `pool.distribution_nodes`
    /// gauge — called whenever the pool grows (import) or shrinks
    /// (compaction), i.e. at control-plane rate, so the name lookup is fine.
    fn update_pool_gauge(&self) {
        if let Some(t) = &self.telemetry {
            t.registry()
                .gauge("pool.distribution_nodes")
                .set(self.dist.len() as i64);
        }
    }

    /// Set the per-reply transport timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Controller {
        self.options.timeout = timeout;
        self
    }

    /// Replace the controller's tunables (timeout, auto-compaction policy).
    pub fn with_options(mut self, options: DistribOptions) -> Controller {
        self.options = options;
        self
    }

    /// The controller's tunables.
    pub fn options(&self) -> &DistribOptions {
        &self.options
    }

    /// Attach an agent for a switch. The first update it receives is a full
    /// resync.
    pub fn attach(&mut self, switch: SwitchId, endpoint: Box<dyn ControllerEndpoint>) {
        let name = self.session.topology().node_name(switch).to_string();
        self.agents.insert(
            switch,
            AgentLink {
                switch,
                name,
                endpoint,
                synced_len: 0,
                needs_resync: true,
                meta: None,
            },
        );
    }

    /// The wrapped compiler session.
    pub fn session(&self) -> &CompilerSession {
        &self.session
    }

    /// The current distribution epoch (0 = nothing committed yet).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of attached agents.
    pub fn agent_count(&self) -> usize {
        self.agents.len()
    }

    /// Nodes accumulated in the append-only distribution pool.
    pub fn dist_pool_len(&self) -> usize {
        self.dist.len()
    }

    /// Reports of every committed update, oldest first.
    pub fn history(&self) -> &[CommitReport] {
        &self.history
    }

    /// Compile a policy update and distribute it to every agent as a
    /// two-phase delta commit. Returns the commit report, or an error if
    /// compilation, staging or transport failed (on staging failure the
    /// epoch was aborted everywhere and the previous configuration keeps
    /// running).
    pub fn update_policy(&mut self, policy: &Policy) -> Result<CommitReport, DistribError> {
        self.session.update_policy(policy)?;
        let update = self
            .session
            .take_update()
            .expect("successful compile yields an update");
        self.distribute(update)
    }

    /// Pipelined variant of [`Self::update_policy`]: stage and
    /// commit-order this update without waiting for its commit acks (see
    /// [`Self::distribute_async`]). Returns the reports of any *previous*
    /// epochs completed during the call.
    pub fn update_policy_async(
        &mut self,
        policy: &Policy,
    ) -> Result<Vec<CommitReport>, DistribError> {
        self.session.update_policy(policy)?;
        let update = self
            .session
            .take_update()
            .expect("successful compile yields an update");
        self.distribute_async(update)
    }

    /// React to a traffic-matrix change and distribute the re-routed
    /// result. `Ok(None)` when nothing has been compiled yet.
    pub fn update_traffic(
        &mut self,
        traffic: TrafficMatrix,
    ) -> Result<Option<CommitReport>, DistribError> {
        if self.session.update_traffic(traffic).is_none() {
            return Ok(None);
        }
        let update = self
            .session
            .take_update()
            .expect("reroute yields an update");
        self.distribute(update).map(Some)
    }

    /// Tell every agent to stop its message loop (completing any in-flight
    /// pipelined commit first).
    pub fn shutdown(&mut self) {
        let _ = self.flush();
        for link in self.agents.values() {
            let _ = link.endpoint.send(ToAgent::Shutdown);
        }
    }

    /// Distribute one session update and wait for it to commit everywhere
    /// (see [`Self::update_policy`]): [`Self::distribute_async`] followed by
    /// [`Self::flush`].
    pub fn distribute(&mut self, update: SessionUpdate) -> Result<CommitReport, DistribError> {
        self.distribute_async(update)?;
        let mut reports = self.flush()?;
        Ok(reports.pop().expect("flush completes the staged epoch"))
    }

    /// Stage this update on every agent, wait for the prepare acks, and
    /// *order* the commit — without waiting for the commit acks. Back-to-back
    /// calls pipeline: while this epoch's prepare fan-out runs, the previous
    /// epoch's commit acks drain off the same reply mux, and the previous
    /// epoch is fully finished (acks, table installs, report) before this
    /// one's commit is ordered. Returns the reports of epochs *completed*
    /// during the call (at most one); [`Self::flush`] completes the epoch
    /// this call leaves in flight.
    ///
    /// Failure semantics preserve the 2PC invariant: a prepare failure for
    /// this epoch aborts only this epoch (the previous one still completes
    /// into [`Self::history`]); a commit failure of the *previous* epoch
    /// cascade-aborts this staged epoch, since its base configuration is now
    /// unknown — both numbers are burned and every mirror resyncs.
    pub fn distribute_async(
        &mut self,
        update: SessionUpdate,
    ) -> Result<Vec<CommitReport>, DistribError> {
        let xfdd = &update.compiled.xfdd;

        // A changed state-variable order invalidates every mirror: the
        // interned diagrams were composed under the old test order. Finish
        // anything in flight, then reset the distribution pool and resync
        // everyone.
        if xfdd.pool().order() != self.dist.order() {
            self.flush()?;
            self.dist = Pool::new(xfdd.pool().order().clone());
            self.fresh_len = self.dist.len();
            for link in self.agents.values_mut() {
                link.needs_resync = true;
            }
        }

        // Import dedupes against everything ever shipped: the suffix past
        // `base` is exactly the structurally new part of this update.
        let base = self.dist.len();
        let root = self.dist.import(xfdd.pool(), xfdd.root());
        let new_nodes = self.dist.len() - base;
        self.update_pool_gauge();
        // The epoch number is burned up front, success or failure: once any
        // Prepare (let alone Commit) may have reached an agent, replies and
        // staged views for this number can exist out there, and reusing it
        // for a different configuration would let a stale reply be taken
        // for a fresh one (or, after a partial commit, break the
        // one-epoch-per-packet invariant outright). Stale replies from a
        // failed update always carry a smaller epoch than any later one and
        // are discarded by `recv_reply`.
        let epoch = self.epoch + 1;
        self.epoch = epoch;

        // One payload per distinct mirror state: in-sync agents share the
        // suffix delta, diverged/fresh agents get the full table.
        let delta = encode_delta(&self.dist, base, root);
        let mut resync_payload: Option<Vec<u8>> = None;
        // The full-payload baseline for the report, cached per compiled
        // program so a working-set flip does not pay a full encode just to
        // fill in a statistic.
        let full_bytes = match &self.full_cache {
            Some((compiled, len)) if Arc::ptr_eq(compiled, &update.compiled) => *len,
            _ => {
                let len = encode_diagram(xfdd.pool(), xfdd.root()).len();
                self.full_cache = Some((Arc::clone(&update.compiled), len));
                len
            }
        };

        // One source of truth for per-switch metadata: the map the session
        // already derived for its change tracking.
        let meta_by_switch: BTreeMap<SwitchId, SwitchMeta> = update
            .switch_meta
            .iter()
            .map(|(&node, (local_vars, ports))| {
                (
                    node,
                    SwitchMeta {
                        local_vars: local_vars.clone(),
                        ports: ports.clone(),
                    },
                )
            })
            .collect();
        let placement: BTreeMap<StateVar, SwitchId> = update.compiled.placement.placement.clone();
        // The session's per-switch change tracking decides what to re-ship
        // in steady state; after any failed distribute its baseline is off
        // by the unshipped update, so everything goes out again once.
        let ship_all = self.dirty || update.changes.first;
        let placement_changed = ship_all || update.changes.placement_changed;

        // -- Phase one: prepare everywhere. --------------------------------
        let t_prepare = Instant::now();
        let mut resyncs = 0usize;
        let mut meta_shipped = 0usize;
        let empty_meta = SwitchMeta {
            local_vars: BTreeSet::new(),
            ports: BTreeSet::new(),
        };
        let mut send_failure: Option<DistribError> = None;
        for link in self.agents.values_mut() {
            let resync = link.needs_resync || link.synced_len != base;
            let payload = if resync {
                resyncs += 1;
                resync_payload
                    .get_or_insert_with(|| encode_delta(&self.dist, self.fresh_len, root))
                    .clone()
            } else {
                delta.clone()
            };
            let new_meta = meta_by_switch.get(&link.switch).unwrap_or(&empty_meta);
            let meta = if resync
                || ship_all
                || link.meta.is_none()
                || update.changes.meta_changed.contains(&link.switch)
            {
                meta_shipped += 1;
                Some(new_meta.clone())
            } else {
                None
            };
            let msg = PrepareMsg {
                epoch,
                resync,
                delta: payload,
                meta,
                placement: (resync || placement_changed).then(|| placement.clone()),
            };
            if let Err(error) = link.endpoint.send(ToAgent::Prepare(Box::new(msg))) {
                // The agent's state is unknown (its transport just died
                // mid-protocol): mark it for resync and fail the update.
                link.needs_resync = true;
                send_failure = Some(DistribError::Transport {
                    switch: link.name.clone(),
                    error,
                });
                break;
            }
        }
        if let Some(err) = send_failure {
            // Abort the (burned) epoch everywhere and bail without
            // collecting replies — any already-queued Prepared acks carry
            // this epoch and will be discarded by the reply mux as stale.
            // The previous epoch is still finished as best we can (its own
            // failure would have set `dirty` too).
            for link in self.agents.values() {
                let _ = link.endpoint.send(ToAgent::Abort { epoch });
            }
            self.dirty = true;
            self.record_event(CommitEvent::Abort {
                epoch,
                reason: err.to_string(),
            });
            let _ = self.flush();
            return Err(err);
        }

        // -- Joint drain off the reply mux: this epoch's prepare acks and
        // the previous epoch's commit acks, in arrival order. -------------
        let mut prep = PrepCollect {
            epoch,
            expect: self.agents.keys().copied().collect(),
            consumed: BTreeSet::new(),
            acks: Vec::new(),
            started: t_prepare,
            finished: t_prepare,
            failure: None,
        };
        let mut prev = self.in_flight.take();
        self.drain_replies(Some(&mut prep), prev.as_mut());

        let mut completed = Vec::new();
        if let Some(prev) = prev {
            // The overlap this pipelining bought: how long after this
            // epoch's fan-out began the previous commit was still draining.
            let overlap = prev.last_ack.saturating_duration_since(t_prepare);
            let prev_epoch = prev.epoch;
            match self.finish_commit(prev) {
                Ok(mut report) => {
                    report.pipeline_overlap = overlap;
                    if let Some(last) = self.history.last_mut() {
                        last.pipeline_overlap = overlap;
                    }
                    completed.push(report);
                }
                Err(err) => {
                    // Cascade-abort the staged epoch: its base configuration
                    // diverged, so committing on top of it is unsound. Both
                    // epoch numbers are burned; `finish_commit` already
                    // marked every mirror for resync.
                    for link in self.agents.values() {
                        let _ = link.endpoint.send(ToAgent::Abort { epoch });
                    }
                    self.record_event(CommitEvent::Abort {
                        epoch,
                        reason: format!("cascade: epoch {prev_epoch} commit failed: {err}"),
                    });
                    return Err(err);
                }
            }
        }

        // This epoch's prepare outcome.
        if prep.failure.is_none() && !prep.expect.is_empty() {
            let missing = first_missing(&self.agents, &prep.expect);
            prep.failure = Some(DistribError::Transport {
                switch: missing,
                error: TransportError::Timeout,
            });
        }
        if let Some(err) = prep.failure.take() {
            // Abort everywhere: nobody flips, the previous epoch keeps
            // running on every switch (the burned epoch number is simply
            // skipped), and the session's change baseline now includes an
            // update that never shipped — hence `dirty`.
            for link in self.agents.values() {
                let _ = link.endpoint.send(ToAgent::Abort { epoch });
            }
            self.dirty = true;
            self.record_event(CommitEvent::Abort {
                epoch,
                reason: err.to_string(),
            });
            return Err(err);
        }
        let prepare_time = prep.finished.saturating_duration_since(t_prepare);
        self.record_event(CommitEvent::Prepare {
            epoch,
            agents: self.agents.len(),
            resyncs,
            delta_bytes: delta.len(),
            resync_bytes: resync_payload.as_ref().map_or(0, Vec::len),
            micros: prepare_time.as_micros() as u64,
            per_agent: AgentTimings::from_acks(prep.acks),
        });
        if let Some(t) = &self.telemetry {
            t.registry()
                .histogram("commit.prepare_us")
                .record(prepare_time.as_micros() as u64);
        }

        // -- Phase two: order the flip everywhere; acks drain later (next
        // distribute_async call, or flush). If the commit fails partway,
        // some agent already holds a committed view for `epoch` (which is
        // why the number was burned up front); recovery is conservative:
        // resync everyone and re-ship all metadata on the next update.
        let t_commit = Instant::now();
        let mut inflight = InFlight {
            epoch,
            root,
            expect: self.agents.keys().copied().collect(),
            consumed: BTreeSet::new(),
            acks: Vec::new(),
            yields: Vec::new(),
            placement,
            meta_by_switch,
            started: t_commit,
            last_ack: t_commit,
            failure: None,
            report: CommitReport {
                epoch,
                session_epoch: update.session_epoch,
                new_nodes,
                delta_bytes: delta.len(),
                full_bytes,
                resyncs,
                resync_bytes: resync_payload.as_ref().map_or(0, Vec::len),
                meta_shipped,
                migrated_tables: 0,
                compacted_nodes: 0,
                prepare_time,
                commit_time: Duration::ZERO,
                pipeline_overlap: Duration::ZERO,
            },
        };
        for link in self.agents.values_mut() {
            if let Err(error) = link.endpoint.send(ToAgent::Commit { epoch }) {
                // This agent never got the flip order: its config is now
                // behind. It will not ack; fail the epoch at completion.
                inflight.expect.remove(&link.switch);
                link.needs_resync = true;
                inflight.failure.get_or_insert(DistribError::Transport {
                    switch: link.name.clone(),
                    error,
                });
            }
        }
        self.in_flight = Some(inflight);
        Ok(completed)
    }

    /// Complete the in-flight epoch, if any: drain its remaining commit
    /// acks, fan out the yielded-table installs, record events and return
    /// its report. `Ok(vec![])` when nothing is in flight.
    pub fn flush(&mut self) -> Result<Vec<CommitReport>, DistribError> {
        let Some(mut inflight) = self.in_flight.take() else {
            return Ok(Vec::new());
        };
        self.drain_replies(None, Some(&mut inflight));
        self.finish_commit(inflight).map(|r| vec![r])
    }

    /// Consume replies off the shared mux in arrival order, routing each to
    /// the prepare collector or the in-flight commit by `(switch, epoch)`.
    /// One deadline covers the whole drain; timeouts are attributed to the
    /// first still-missing agent of each phase. Stale and duplicate replies
    /// are discarded and counted.
    fn drain_replies(
        &mut self,
        mut prep: Option<&mut PrepCollect>,
        mut commit: Option<&mut InFlight>,
    ) {
        let deadline = Instant::now() + self.options.timeout;
        loop {
            let prep_open = prep.as_ref().is_some_and(|p| !p.expect.is_empty());
            let commit_open = commit.as_ref().is_some_and(|c| !c.expect.is_empty());
            if !prep_open && !commit_open {
                return;
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            let msg = match self.reply_rx.recv_timeout(remaining) {
                Ok(msg) => msg,
                Err(error) => {
                    // Deadline (or the reply channel itself died): mark the
                    // missing mirrors unknown and attribute the failure.
                    if let Some(p) = prep.as_deref_mut() {
                        if !p.expect.is_empty() {
                            for switch in &p.expect {
                                if let Some(link) = self.agents.get_mut(switch) {
                                    link.needs_resync = true;
                                }
                            }
                            p.failure.get_or_insert(DistribError::Transport {
                                switch: first_missing(&self.agents, &p.expect),
                                error: error.clone(),
                            });
                        }
                    }
                    if let Some(c) = commit.as_deref_mut() {
                        if !c.expect.is_empty() {
                            c.failure.get_or_insert(DistribError::Transport {
                                switch: first_missing(&self.agents, &c.expect),
                                error,
                            });
                        }
                    }
                    return;
                }
            };
            self.route_reply(msg, prep.as_deref_mut(), commit.as_deref_mut());
        }
    }

    /// Route one mux message. Consumes it into the matching collector, or
    /// discards it as stale/duplicate, or records a protocol failure.
    fn route_reply(
        &mut self,
        msg: FromAgent,
        prep: Option<&mut PrepCollect>,
        commit: Option<&mut InFlight>,
    ) {
        let switch = msg.switch();
        let msg_epoch = msg.epoch();
        if let Some(p) = prep {
            if msg_epoch == p.epoch {
                match msg {
                    FromAgent::Prepared { .. } if p.expect.remove(&switch) => {
                        p.consumed.insert(switch);
                        p.finished = Instant::now();
                        let us = p.started.elapsed().as_micros() as u64;
                        if let Some(link) = self.agents.get_mut(&switch) {
                            link.synced_len = self.dist.len();
                            link.needs_resync = false;
                            p.acks.push((link.name.clone(), us));
                        }
                        if let Some(t) = &self.telemetry {
                            t.registry().histogram("commit.prepare_ack_us").record(us);
                        }
                    }
                    FromAgent::PrepareFailed { reason, .. } if p.expect.remove(&switch) => {
                        p.consumed.insert(switch);
                        p.finished = Instant::now();
                        if let Some(link) = self.agents.get_mut(&switch) {
                            link.needs_resync = true;
                        }
                        p.failure.get_or_insert(DistribError::PrepareRejected {
                            switch: self.agent_name(switch),
                            reason,
                        });
                    }
                    _ if p.consumed.contains(&switch) => self.mux.duplicates += 1,
                    other => {
                        if let Some(link) = self.agents.get_mut(&switch) {
                            link.needs_resync = true;
                        }
                        p.failure.get_or_insert(DistribError::Protocol {
                            switch: self.agent_name(switch),
                            unexpected: format!("{other:?}"),
                        });
                    }
                }
                return;
            }
        }
        if let Some(c) = commit {
            if msg_epoch == c.epoch {
                match msg {
                    FromAgent::Committed { yields, .. } if c.expect.remove(&switch) => {
                        c.consumed.insert(switch);
                        c.last_ack = Instant::now();
                        let us = c.started.elapsed().as_micros() as u64;
                        c.acks.push((self.agent_name(switch), us));
                        c.yields.extend(yields);
                        if let Some(t) = &self.telemetry {
                            t.registry().histogram("commit.commit_ack_us").record(us);
                        }
                    }
                    FromAgent::Committed { .. } if !c.consumed.contains(&switch) => {
                        // A Committed from a switch this commit never
                        // expected an ack from (e.g. its Commit send
                        // failed): genuinely out of protocol.
                        c.failure.get_or_insert(DistribError::Protocol {
                            switch: self.agent_name(switch),
                            unexpected: "Committed from unexpected switch".to_string(),
                        });
                    }
                    // Anything else carrying this epoch is a straggler from
                    // an already-closed phase (a duplicate Committed, or a
                    // late prepare-phase reply): discard by key.
                    _ => self.mux.duplicates += 1,
                }
                return;
            }
        }
        if msg_epoch < self.epoch {
            // An ack of a burned or already-completed epoch: harmless.
            self.mux.stale += 1;
        } else {
            // A reply for the current-or-future epoch that matches no
            // outstanding expectation — count it rather than failing a
            // phase it does not belong to.
            self.mux.duplicates += 1;
        }
    }

    /// Finish a commit-ordered epoch whose acks have been drained: fan out
    /// the yielded-table installs, record events and bookkeeping, run the
    /// auto-compaction check, and finalize the report.
    fn finish_commit(&mut self, mut inflight: InFlight) -> Result<CommitReport, DistribError> {
        let epoch = inflight.epoch;
        if inflight.failure.is_none() && !inflight.expect.is_empty() {
            inflight.failure = Some(DistribError::Transport {
                switch: first_missing(&self.agents, &inflight.expect),
                error: TransportError::Timeout,
            });
        }
        if inflight.failure.is_none() {
            // Relay yielded tables to their new owners, fanned out like any
            // other phase: all sends first, then the acks in arrival order.
            // A variable the new program no longer places is dropped
            // (deterministic fresh start on re-placement, matching
            // `Network::swap_configs`).
            let yields = std::mem::take(&mut inflight.yields);
            inflight.report.migrated_tables = yields.len();
            let mut expect: BTreeSet<(SwitchId, StateVar)> = BTreeSet::new();
            for (var, table) in yields {
                let Some(&owner) = inflight.placement.get(&var) else {
                    continue;
                };
                let Some(link) = self.agents.get(&owner) else {
                    continue;
                };
                if let Err(error) = link.endpoint.send(ToAgent::InstallTable {
                    epoch,
                    var: var.clone(),
                    table,
                }) {
                    inflight.failure.get_or_insert(DistribError::Transport {
                        switch: link.name.clone(),
                        error,
                    });
                } else {
                    expect.insert((owner, var));
                }
            }
            if !expect.is_empty() {
                if let Some(err) = self.collect_installs(epoch, expect) {
                    inflight.failure.get_or_insert(err);
                }
            }
        }
        if let Some(err) = inflight.failure {
            // Some agents may have flipped, others not — the running fleet
            // is only trusted again after a full resync. Yields inside a
            // reply that never arrived are unrecoverable here; the agents'
            // store-authoritative yield on the next commit re-homes anything
            // stranded on a switch.
            self.dirty = true;
            for link in self.agents.values_mut() {
                link.needs_resync = true;
                link.meta = None;
            }
            self.record_event(CommitEvent::Abort {
                epoch,
                reason: err.to_string(),
            });
            return Err(err);
        }

        let commit_time = inflight.started.elapsed();
        inflight.report.commit_time = commit_time;
        self.record_event(CommitEvent::Commit {
            epoch,
            migrated_tables: inflight.report.migrated_tables,
            micros: commit_time.as_micros() as u64,
            per_agent: AgentTimings::from_acks(inflight.acks),
        });
        if let Some(t) = &self.telemetry {
            t.registry()
                .histogram("commit.commit_us")
                .record(commit_time.as_micros() as u64);
        }

        // Bookkeeping: the epoch is committed everywhere.
        self.dirty = false;
        let empty_meta = SwitchMeta {
            local_vars: BTreeSet::new(),
            ports: BTreeSet::new(),
        };
        for link in self.agents.values_mut() {
            let meta = inflight
                .meta_by_switch
                .get(&link.switch)
                .cloned()
                .unwrap_or_else(|| empty_meta.clone());
            link.meta = Some(meta);
        }
        // Auto-compaction policy: the distribution pool is append-only, so
        // a long-lived controller accumulates every superseded generation.
        // Once the pool exceeds the configured multiple of the *live*
        // program's size, compact it down to the live program now — the
        // agents keep serving their existing views (packet tags stay valid;
        // views are immutable bundles over the old numbering) and the next
        // update resyncs every mirror against the renumbered pool. (With a
        // successor epoch already staged, "live" is measured from this
        // epoch's root; the compacted pool holds the session's latest
        // program either way, and the forced resync squares everyone up.)
        if let Some(factor) = self.options.compact_threshold {
            let mut live = 0usize;
            self.dist.visit_reachable([inflight.root], |_, _| {
                live += 1;
                true
            });
            if self.dist.len() > factor.max(1) * live.max(1) {
                let compacted = self.compact_distribution();
                inflight.report.compacted_nodes = compacted;
                self.record_event(CommitEvent::Compaction {
                    epoch,
                    reclaimed: compacted,
                });
            }
        }

        self.history.push(inflight.report.clone());
        Ok(inflight.report)
    }

    /// Collect `Installed` acks for a fanned-out set of table installs.
    /// Returns the first failure, after draining as much as possible —
    /// losing one ack must not also lose the other installs.
    fn collect_installs(
        &mut self,
        epoch: u64,
        mut expect: BTreeSet<(SwitchId, StateVar)>,
    ) -> Option<DistribError> {
        let deadline = Instant::now() + self.options.timeout;
        let mut consumed: BTreeSet<(SwitchId, StateVar)> = BTreeSet::new();
        let mut failure: Option<DistribError> = None;
        while !expect.is_empty() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let msg = match self.reply_rx.recv_timeout(remaining) {
                Ok(msg) => msg,
                Err(error) => {
                    let (switch, _) = expect.first().expect("non-empty");
                    failure.get_or_insert(DistribError::Transport {
                        switch: self.agent_name(*switch),
                        error,
                    });
                    break;
                }
            };
            match msg {
                FromAgent::Installed {
                    switch,
                    epoch: e,
                    ref var,
                } if e == epoch && expect.remove(&(switch, var.clone())) => {
                    consumed.insert((switch, var.clone()));
                }
                other => {
                    if other.epoch() < self.epoch {
                        self.mux.stale += 1;
                    } else if matches!(&other, FromAgent::Installed { switch, epoch: e, var }
                        if *e == epoch && consumed.contains(&(*switch, var.clone())))
                    {
                        self.mux.duplicates += 1;
                    } else {
                        failure.get_or_insert(DistribError::Protocol {
                            switch: self.agent_name(other.switch()),
                            unexpected: format!("{other:?}"),
                        });
                    }
                }
            }
        }
        failure
    }

    fn agent_name(&self, switch: SwitchId) -> String {
        self.agents
            .get(&switch)
            .map(|l| l.name.clone())
            .unwrap_or_else(|| format!("switch-{}", switch.0))
    }

    /// Reset the distribution pool to only the currently shipped program and
    /// force a full resync of every agent on the next update — the GC valve
    /// for very long-lived controllers whose append-only pool has
    /// accumulated many superseded generations.
    pub fn compact_distribution(&mut self) -> usize {
        let Some(compiled) = self.session.current_shared() else {
            return 0;
        };
        let before = self.dist.len();
        let mut fresh = Pool::new(self.dist.order().clone());
        fresh.import(compiled.xfdd.pool(), compiled.xfdd.root());
        self.dist = fresh;
        self.fresh_len = Pool::new(self.dist.order().clone()).len();
        for link in self.agents.values_mut() {
            link.needs_resync = true;
        }
        self.update_pool_gauge();
        before.saturating_sub(self.dist.len())
    }
}

/// The display name of the first switch still missing from `expect` —
/// timeout attribution for a phase that did not fully drain.
fn first_missing(agents: &BTreeMap<SwitchId, AgentLink>, expect: &BTreeSet<SwitchId>) -> String {
    expect
        .first()
        .map(|switch| {
            agents
                .get(switch)
                .map(|l| l.name.clone())
                .unwrap_or_else(|| format!("switch-{}", switch.0))
        })
        .unwrap_or_else(|| "<none>".to_string())
}
