//! The distributed data plane: traffic over a set of [`SwitchAgent`]s.
//!
//! Unlike [`snap_dataplane::Network`] — one process-wide snapshot swapped
//! atomically — a [`DistNetwork`] has no global configuration at all: each
//! agent holds its own epoch views, updated by the controller's two-phase
//! commit. Consistency comes from epoch stamping: a packet is stamped with
//! its ingress agent's current epoch and every subsequent hop resolves the
//! view for *that* epoch, so the packet executes exactly one configuration
//! end to end no matter how the commit wave interleaves with its flight.
//!
//! Execution goes through the *same* generic driver as the in-process
//! plane ([`snap_dataplane::driver`]): this module only provides the
//! [`ViewResolver`] (per-agent epoch-history lookup) and the
//! [`EgressSink`] (per-agent bounded per-port FIFO queues,
//! [`snap_dataplane::EgressQueues`]) — the dispatch loop, the hop budget
//! and the batched per-switch store-lock amortization are shared. The
//! distributed plane also implements [`snap_dataplane::TrafficTarget`], so
//! the multi-worker [`snap_dataplane::TrafficEngine`] drives it exactly
//! like it drives a `Network`.

use crate::agent::{EpochView, SwitchAgent};
use snap_dataplane::driver::{Driver, EgressSink, HopView, ViewResolver};
use snap_dataplane::egress::EgressEvent;
use snap_dataplane::exec::{NextHops, SimError};
use snap_dataplane::metrics::{export_egress, export_shards, PlaneTelemetry};
use snap_dataplane::{StateShards, TargetBatch, TrafficTarget};
use snap_lang::{Packet, StateVar, Store};
use snap_telemetry::{MetricsSnapshot, Telemetry};
use snap_topology::{NodeId as SwitchId, PortId, Topology};
use snap_xfdd::{FlatId, FlatProgram, TableProgram};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Errors surfaced by distributed injection.
#[derive(Clone, Debug, PartialEq)]
pub enum InjectError {
    /// Packet execution failed.
    Sim(SimError),
    /// A switch on the packet's path has no agent.
    NoAgent(SwitchId),
    /// The ingress agent has no committed configuration yet.
    NotConfigured(SwitchId),
    /// An agent could no longer resolve the packet's stamped epoch (it was
    /// pruned from the history ring — the packet outlived
    /// [`crate::agent::EPOCH_HISTORY`] commits).
    EpochUnavailable {
        /// The switch that could not resolve the epoch.
        switch: SwitchId,
        /// The stamped epoch.
        epoch: u64,
    },
}

impl From<SimError> for InjectError {
    fn from(e: SimError) -> Self {
        InjectError::Sim(e)
    }
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::Sim(e) => write!(f, "simulation error: {e:?}"),
            InjectError::NoAgent(s) => write!(f, "switch {s:?} has no agent"),
            InjectError::NotConfigured(s) => write!(f, "agent {s:?} has no configuration"),
            InjectError::EpochUnavailable { switch, epoch } => {
                write!(f, "agent {switch:?} cannot resolve epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for InjectError {}

/// What one injection did.
#[derive(Clone, Debug)]
pub struct InjectOutcome {
    /// The epoch the packet was stamped with at ingress (and executed under
    /// at every hop).
    pub epoch: u64,
    /// Deliveries, in emission order. Each was also enqueued on its port's
    /// egress queue unless that queue was full.
    pub delivered: Vec<(PortId, Packet)>,
    /// Deliveries tail-dropped by a full egress queue (still listed in
    /// `delivered`; the loss is an egress-queue property, not a processing
    /// one).
    pub backpressure_drops: usize,
}

/// A distributed network: topology, next-hop table, one agent per switch.
pub struct DistNetwork {
    topology: Topology,
    next_hops: NextHops,
    agents: BTreeMap<SwitchId, Arc<SwitchAgent>>,
    hop_budget: usize,
    /// This plane's telemetry handles; shared with the controller by
    /// [`crate::deploy_in_process`] so one snapshot covers packet counters
    /// *and* commit events. `None` disables recording.
    telemetry: Option<Arc<PlaneTelemetry>>,
}

/// [`ViewResolver`] over the per-switch agents: ingress stamps the current
/// epoch of the ingress agent, and every hop resolves its agent's view for
/// the *stamped* epoch — a committed one from the history ring, or the
/// staged one mid-commit (sound because the controller only orders commits
/// after every agent prepared; see the `agent` module docs).
struct AgentResolver<'a> {
    agents: &'a BTreeMap<SwitchId, Arc<SwitchAgent>>,
}

/// One agent's epoch view, as the shared driver consumes it.
struct AgentView {
    view: Arc<EpochView>,
}

impl HopView for AgentView {
    fn flat(&self) -> &FlatProgram {
        &self.view.flat
    }

    fn tables(&self) -> &TableProgram {
        &self.view.tables
    }

    fn local_vars(&self) -> &BTreeSet<StateVar> {
        &self.view.local_vars
    }

    fn serves_port(&self, port: PortId) -> bool {
        self.view.ports.contains(&port)
    }

    fn owner(&self, var: &StateVar) -> Option<SwitchId> {
        self.view.placement.get(var).copied()
    }
}

impl ViewResolver for AgentResolver<'_> {
    type View<'v>
        = AgentView
    where
        Self: 'v;
    type Error = InjectError;

    fn ingress(&self, switch: SwitchId) -> Result<Option<(u64, FlatId)>, InjectError> {
        let agent = self
            .agents
            .get(&switch)
            .ok_or(InjectError::NoAgent(switch))?;
        let view = agent
            .current_view()
            .ok_or(InjectError::NotConfigured(switch))?;
        Ok(Some((view.epoch, view.flat.root())))
    }

    fn resolve(&self, switch: SwitchId, epoch: u64) -> Result<Option<AgentView>, InjectError> {
        let agent = self
            .agents
            .get(&switch)
            .ok_or(InjectError::NoAgent(switch))?;
        let view = agent
            .view_for(epoch)
            .ok_or(InjectError::EpochUnavailable { switch, epoch })?;
        Ok(Some(AgentView { view }))
    }

    fn store(&self, switch: SwitchId) -> Option<&StateShards> {
        self.agents.get(&switch).map(|a| a.store())
    }
}

/// [`EgressSink`] that delivers into the owning agent's bounded per-port
/// FIFO queues, counting backpressure tail-drops per packet.
struct AgentQueueSink<'a> {
    agents: &'a BTreeMap<SwitchId, Arc<SwitchAgent>>,
    outcomes: Vec<InjectOutcome>,
}

impl EgressSink for AgentQueueSink<'_> {
    fn deliver(&mut self, origin: usize, at: SwitchId, port: PortId, pkt: Packet, epoch: u64) {
        if let Some(agent) = self.agents.get(&at) {
            if !agent.egress().push(port, pkt.clone(), epoch) {
                self.outcomes[origin].backpressure_drops += 1;
            }
        }
        self.outcomes[origin].delivered.push((port, pkt));
    }
}

impl DistNetwork {
    /// A network over a set of agents.
    pub fn new(topology: Topology, agents: BTreeMap<SwitchId, Arc<SwitchAgent>>) -> DistNetwork {
        let next_hops = NextHops::compute(&topology);
        let telemetry = Some(PlaneTelemetry::new(Telemetry::new(), &topology));
        DistNetwork {
            topology,
            next_hops,
            agents,
            hop_budget: snap_dataplane::network::DEFAULT_HOP_BUDGET,
            telemetry,
        }
    }

    /// Record this plane's metrics into `telemetry` instead of the private
    /// instance created by [`DistNetwork::new`] — how the deployment
    /// helpers share one registry between controller and data plane.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> DistNetwork {
        self.telemetry = Some(PlaneTelemetry::new(telemetry, &self.topology));
        self
    }

    /// Disable telemetry entirely (baseline leg of the overhead guard).
    pub fn without_telemetry(mut self) -> DistNetwork {
        self.telemetry = None;
        self
    }

    /// This plane's telemetry handles, if enabled.
    pub fn telemetry(&self) -> Option<&Arc<PlaneTelemetry>> {
        self.telemetry.as_ref()
    }

    /// Snapshot this instance's metrics, traces and commit events,
    /// enriched at read time with per-agent data the hot path never
    /// touches: each agent's egress queue stats (`egress.<switch>.*`),
    /// its per-shard store contention stats (`store.shard.*`, rows
    /// labeled `<switch>/s<i>`), its protocol counters (`agent.*`
    /// families labeled by switch name) and the committed-epoch gauge
    /// `network.epoch` (the max across agents; `network.epoch_skew` is
    /// nonzero only mid-commit). Returns an empty snapshot when
    /// telemetry is disabled.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let Some(t) = &self.telemetry else {
            return MetricsSnapshot::default();
        };
        let epochs = self.current_epochs();
        let registry = t.telemetry().registry();
        let max = epochs.iter().next_back().copied().unwrap_or(0);
        let min = epochs.iter().next().copied().unwrap_or(0);
        registry.gauge("network.epoch").set(max as i64);
        registry.gauge("network.epoch_skew").set((max - min) as i64);
        let mut snap = t.telemetry().snapshot();
        let mut stat_families: BTreeMap<&str, Vec<(String, u64)>> = BTreeMap::new();
        for agent in self.agents.values() {
            export_egress(
                &mut snap,
                &format!("egress.{}", agent.name()),
                agent.egress(),
            );
            export_shards(&mut snap, agent.name(), agent.store());
            let stats = agent.stats();
            let relaxed = std::sync::atomic::Ordering::Relaxed;
            for (stat, value) in [
                ("agent.prepares", stats.prepares.load(relaxed)),
                (
                    "agent.prepare_failures",
                    stats.prepare_failures.load(relaxed),
                ),
                ("agent.commits", stats.commits.load(relaxed)),
                ("agent.aborts", stats.aborts.load(relaxed)),
                ("agent.resyncs", stats.resyncs.load(relaxed)),
                ("agent.delta_bytes", stats.delta_bytes.load(relaxed)),
                ("agent.nodes_appended", stats.nodes_appended.load(relaxed)),
                (
                    "agent.tables_installed",
                    stats.tables_installed.load(relaxed),
                ),
                ("agent.mirror_nodes", agent.mirror_len() as u64),
            ] {
                stat_families
                    .entry(stat)
                    .or_default()
                    .push((agent.name().to_string(), value));
            }
        }
        for (name, rows) in stat_families {
            snap.families.insert(name.to_string(), rows);
        }
        snap
    }

    /// Set the hop budget at construction time — the same budget, enforced
    /// by the same shared driver, as [`snap_dataplane::Network`]'s.
    pub fn with_hop_budget(mut self, budget: usize) -> DistNetwork {
        self.hop_budget = budget;
        self
    }

    /// Change the hop budget of a network that is not yet shared.
    pub fn set_hop_budget(&mut self, budget: usize) {
        self.hop_budget = budget;
    }

    /// The current hop budget.
    pub fn hop_budget(&self) -> usize {
        self.hop_budget
    }

    /// The network's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The agent for a switch.
    pub fn agent(&self, switch: SwitchId) -> Option<&Arc<SwitchAgent>> {
        self.agents.get(&switch)
    }

    /// All agents, in switch order.
    pub fn agents(&self) -> impl Iterator<Item = &Arc<SwitchAgent>> {
        self.agents.values()
    }

    /// Inject a packet at an OBS external port: stamp it with the ingress
    /// agent's current epoch, run it hop by hop against that epoch's views,
    /// and deliver egress into the owning agents' port queues.
    pub fn inject(&self, port: PortId, packet: &Packet) -> Result<InjectOutcome, InjectError> {
        let batch = [(port, packet)];
        self.inject_batch(&batch)
            .pop()
            .expect("one outcome per injected packet")
    }

    /// Inject a batch of packets through the shared batched driver: each
    /// packet is stamped at its own ingress agent (epochs may differ within
    /// a batch while a commit wave passes), in-flight packets are grouped
    /// per switch and drained under one store-lock acquisition per group,
    /// and results come back in batch order.
    ///
    /// Batching widens the window between a packet's epoch stamp and its
    /// last hop's view lookup: a packet whose batch drains across more than
    /// [`crate::agent::EPOCH_HISTORY`] commits can find its epoch pruned
    /// from the ring and fail with [`InjectError::EpochUnavailable`], where
    /// a solo injection (stamp-to-resolve window of one flight) would have
    /// completed. Batch size therefore trades throughput against
    /// commit-rate tolerance; callers racing a fast controller should use
    /// smaller batches or retry pruned packets (re-injection re-stamps
    /// against the fresh epoch).
    pub fn inject_batch<P: std::borrow::Borrow<Packet>>(
        &self,
        batch: &[(PortId, P)],
    ) -> Vec<Result<InjectOutcome, InjectError>> {
        let resolver = AgentResolver {
            agents: &self.agents,
        };
        let mut sink = AgentQueueSink {
            agents: &self.agents,
            outcomes: batch
                .iter()
                .map(|_| InjectOutcome {
                    epoch: 0,
                    delivered: Vec::new(),
                    backpressure_drops: 0,
                })
                .collect(),
        };
        let driver = Driver::new(&self.topology, &self.next_hops, self.hop_budget)
            .with_metrics(self.telemetry.as_deref());
        let results = driver.run_batch(&resolver, &mut sink, batch);
        results
            .into_iter()
            .zip(sink.outcomes)
            .map(|(result, mut outcome)| match result {
                Ok(Some(epoch)) => {
                    outcome.epoch = epoch;
                    Ok(outcome)
                }
                Ok(None) => unreachable!("distributed ingress always stamps an epoch or errors"),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// Drain the egress queue of a port (wherever its agent is), in FIFO
    /// order.
    pub fn drain_port(&self, port: PortId) -> Vec<EgressEvent> {
        match self.topology.port_switch(port) {
            Some(switch) => self
                .agents
                .get(&switch)
                .map(|a| a.egress().drain(port))
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// Total backpressure drops across every agent's queues.
    pub fn total_backpressure(&self) -> u64 {
        self.agents
            .values()
            .map(|a| a.egress().total_dropped())
            .sum()
    }

    /// Merge every agent's state tables into one OBS-level store, filtered
    /// to the variables each agent currently owns (each variable lives on
    /// exactly one switch, so this is a disjoint union).
    pub fn aggregate_store(&self) -> Store {
        let mut out = Store::new();
        for agent in self.agents.values() {
            let Some(view) = agent.current_view() else {
                continue;
            };
            for var in &view.local_vars {
                if let Some(table) = agent.store().collect_table(var) {
                    out.insert_table(var.clone(), table);
                }
            }
        }
        out
    }

    /// The set of current epochs across agents (a singleton whenever no
    /// commit is mid-flight).
    pub fn current_epochs(&self) -> std::collections::BTreeSet<u64> {
        self.agents
            .values()
            .filter_map(|a| a.current_view().map(|v| v.epoch))
            .collect()
    }
}

impl TrafficTarget for DistNetwork {
    type Error = InjectError;

    fn drive_batch(&self, batch: &[(PortId, Packet)]) -> TargetBatch<InjectError> {
        self.inject_batch(batch)
            .into_iter()
            .map(|result| result.map(|outcome| (outcome.epoch, outcome.delivered)))
            .collect()
    }
}
