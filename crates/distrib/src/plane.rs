//! The distributed data plane: traffic over a set of [`SwitchAgent`]s.
//!
//! Unlike [`snap_dataplane::Network`] — one process-wide snapshot swapped
//! atomically — a [`DistNetwork`] has no global configuration at all: each
//! agent holds its own epoch views, updated by the controller's two-phase
//! commit. Consistency comes from epoch stamping: a packet is stamped with
//! its ingress agent's current epoch and every subsequent hop resolves the
//! view for *that* epoch, so the packet executes exactly one configuration
//! end to end no matter how the commit wave interleaves with its flight.
//!
//! Egress is delivered through each agent's bounded per-port FIFO queues
//! ([`snap_dataplane::EgressQueues`]) instead of a flat result `Vec`:
//! deliveries carry the epoch and a per-port sequence number, full queues
//! tail-drop and count backpressure, and consumers drain ports explicitly.

use crate::agent::SwitchAgent;
use snap_dataplane::egress::EgressEvent;
use snap_dataplane::exec::{
    misplaced_state_error, missing_placement_error, process_at_switch, strip_snap_header, InFlight,
    NextHops, Progress, SimError, StepOutcome,
};
use snap_lang::{Packet, Store, Value};
use snap_topology::{NodeId as SwitchId, PortId, Topology};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors surfaced by distributed injection.
#[derive(Clone, Debug, PartialEq)]
pub enum InjectError {
    /// Packet execution failed.
    Sim(SimError),
    /// A switch on the packet's path has no agent.
    NoAgent(SwitchId),
    /// The ingress agent has no committed configuration yet.
    NotConfigured(SwitchId),
    /// An agent could no longer resolve the packet's stamped epoch (it was
    /// pruned from the history ring — the packet outlived
    /// [`crate::agent::EPOCH_HISTORY`] commits).
    EpochUnavailable {
        /// The switch that could not resolve the epoch.
        switch: SwitchId,
        /// The stamped epoch.
        epoch: u64,
    },
}

impl From<SimError> for InjectError {
    fn from(e: SimError) -> Self {
        InjectError::Sim(e)
    }
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::Sim(e) => write!(f, "simulation error: {e:?}"),
            InjectError::NoAgent(s) => write!(f, "switch {s:?} has no agent"),
            InjectError::NotConfigured(s) => write!(f, "agent {s:?} has no configuration"),
            InjectError::EpochUnavailable { switch, epoch } => {
                write!(f, "agent {switch:?} cannot resolve epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for InjectError {}

/// What one injection did.
#[derive(Clone, Debug)]
pub struct InjectOutcome {
    /// The epoch the packet was stamped with at ingress (and executed under
    /// at every hop).
    pub epoch: u64,
    /// Deliveries, in emission order. Each was also enqueued on its port's
    /// egress queue unless that queue was full.
    pub delivered: Vec<(PortId, Packet)>,
    /// Deliveries tail-dropped by a full egress queue (still listed in
    /// `delivered`; the loss is an egress-queue property, not a processing
    /// one).
    pub backpressure_drops: usize,
}

/// A distributed network: topology, next-hop table, one agent per switch.
pub struct DistNetwork {
    topology: Topology,
    next_hops: NextHops,
    agents: BTreeMap<SwitchId, Arc<SwitchAgent>>,
    hop_budget: usize,
}

impl DistNetwork {
    /// A network over a set of agents.
    pub fn new(topology: Topology, agents: BTreeMap<SwitchId, Arc<SwitchAgent>>) -> DistNetwork {
        let next_hops = NextHops::compute(&topology);
        DistNetwork {
            topology,
            next_hops,
            agents,
            hop_budget: snap_dataplane::network::DEFAULT_HOP_BUDGET,
        }
    }

    /// Set the hop budget.
    pub fn with_hop_budget(mut self, budget: usize) -> DistNetwork {
        self.hop_budget = budget;
        self
    }

    /// The network's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The agent for a switch.
    pub fn agent(&self, switch: SwitchId) -> Option<&Arc<SwitchAgent>> {
        self.agents.get(&switch)
    }

    /// All agents, in switch order.
    pub fn agents(&self) -> impl Iterator<Item = &Arc<SwitchAgent>> {
        self.agents.values()
    }

    /// Inject a packet at an OBS external port: stamp it with the ingress
    /// agent's current epoch, run it hop by hop against that epoch's views,
    /// and deliver egress into the owning agents' port queues.
    pub fn inject(&self, port: PortId, packet: &Packet) -> Result<InjectOutcome, InjectError> {
        let ingress = self
            .topology
            .port_switch(port)
            .ok_or(InjectError::Sim(SimError::UnknownPort(port)))?;
        let ingress_agent = self
            .agents
            .get(&ingress)
            .ok_or(InjectError::NoAgent(ingress))?;
        let view0 = ingress_agent
            .current_view()
            .ok_or(InjectError::NotConfigured(ingress))?;
        let epoch = view0.epoch;

        let mut outcome = InjectOutcome {
            epoch,
            delivered: Vec::new(),
            backpressure_drops: 0,
        };
        let mut work = vec![InFlight::ingress(
            packet.clone(),
            port,
            ingress,
            view0.flat.root(),
        )];

        while let Some(mut flight) = work.pop() {
            if flight.hops > self.hop_budget {
                return Err(InjectError::Sim(SimError::HopBudgetExceeded));
            }
            let agent = self
                .agents
                .get(&flight.at)
                .ok_or(InjectError::NoAgent(flight.at))?;
            let view = agent.view_for(epoch).ok_or(InjectError::EpochUnavailable {
                switch: flight.at,
                epoch,
            })?;
            let step = process_at_switch(
                &view.local_vars,
                &view.flat,
                Some(agent.store()),
                &mut flight,
            )?;
            match step {
                StepOutcome::Emit(pkt, outport) => {
                    if view.ports.contains(&outport) {
                        let mut clean = pkt;
                        strip_snap_header(&mut clean);
                        if !agent.egress().push(outport, clean.clone(), epoch) {
                            outcome.backpressure_drops += 1;
                        }
                        outcome.delivered.push((outport, clean));
                    } else {
                        let target = self.topology.port_switch(outport).ok_or(InjectError::Sim(
                            SimError::BadOutPort(Value::Int(outport.0 as i64)),
                        ))?;
                        if target == flight.at {
                            // The port is attached here, yet this epoch's
                            // view does not serve it — a misconfigured
                            // agent. Forwarding "towards" it would spin in
                            // place forever, so fail the packet instead.
                            return Err(InjectError::Sim(SimError::BadOutPort(Value::Int(
                                outport.0 as i64,
                            ))));
                        }
                        flight.pkt = pkt;
                        flight.progress = Progress::Done;
                        self.next_hops.forward_towards(&mut flight, target)?;
                        work.push(flight);
                    }
                }
                StepOutcome::Dropped => {}
                StepOutcome::NeedState(var) => {
                    let owner = view
                        .placement
                        .get(&var)
                        .copied()
                        .ok_or_else(|| InjectError::Sim(missing_placement_error(&var)))?;
                    if owner == flight.at {
                        // The view's placement and local_vars disagree;
                        // forwarding "towards" the owner would spin in
                        // place.
                        return Err(InjectError::Sim(misplaced_state_error(&var)));
                    }
                    self.next_hops.forward_towards(&mut flight, owner)?;
                    work.push(flight);
                }
                StepOutcome::Fork(children) => work.extend(children),
            }
        }
        Ok(outcome)
    }

    /// Drain the egress queue of a port (wherever its agent is), in FIFO
    /// order.
    pub fn drain_port(&self, port: PortId) -> Vec<EgressEvent> {
        match self.topology.port_switch(port) {
            Some(switch) => self
                .agents
                .get(&switch)
                .map(|a| a.egress().drain(port))
                .unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// Total backpressure drops across every agent's queues.
    pub fn total_backpressure(&self) -> u64 {
        self.agents
            .values()
            .map(|a| a.egress().total_dropped())
            .sum()
    }

    /// Merge every agent's state tables into one OBS-level store, filtered
    /// to the variables each agent currently owns (each variable lives on
    /// exactly one switch, so this is a disjoint union).
    pub fn aggregate_store(&self) -> Store {
        let mut out = Store::new();
        for agent in self.agents.values() {
            let Some(view) = agent.current_view() else {
                continue;
            };
            for var in &view.local_vars {
                let table = agent.store().lock().table(var).cloned();
                if let Some(table) = table {
                    out.insert_table(var.clone(), table);
                }
            }
        }
        out
    }

    /// The set of current epochs across agents (a singleton whenever no
    /// commit is mid-flight).
    pub fn current_epochs(&self) -> std::collections::BTreeSet<u64> {
        self.agents
            .values()
            .filter_map(|a| a.current_view().map(|v| v.epoch))
            .collect()
    }
}
