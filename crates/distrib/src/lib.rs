//! # snap-distrib
//!
//! The controller→switch **distribution plane**: what turns the in-process
//! "publish a config by swapping a pointer" story into an actual protocol
//! between a controller and per-switch agents, with the paper's consistency
//! guarantees preserved across the wire.
//!
//! * [`Controller`] wraps a [`snap_session::CompilerSession`] and an
//!   append-only distribution pool. Every recompile is imported into that
//!   pool (hash-consing dedupes against everything ever shipped) and
//!   distributed as a **wire-format delta**: the node-table suffix the
//!   agents don't have yet, plus the new root and only the per-switch
//!   metadata entries that changed. Working-set edits ship a few nodes;
//!   rollbacks ship zero.
//! * [`SwitchAgent`] is the switch side: it mirrors the distribution pool
//!   node-for-node (so dense flat ids — the §4.5 packet tags — agree across
//!   all switches), stages updates on *prepare* and flips on *commit*,
//!   keeping a short ring of epoch views for in-flight packets. State
//!   tables move with their owner through yield/install messages.
//! * The **two-phase epoch protocol** preserves the invariant that no
//!   packet mixes two configurations: commit is only ordered after every
//!   agent staged the epoch, and packets resolve their ingress-stamped
//!   epoch at every hop (see `controller` module docs for the argument).
//! * [`DistNetwork`] drives traffic through the agents via the *same*
//!   generic batched packet driver as the in-process plane
//!   ([`snap_dataplane::driver`]): this crate only supplies the view
//!   resolver (per-agent epoch-history lookup) and the egress sink
//!   (per-port bounded FIFO queues with backpressure counters,
//!   [`snap_dataplane::EgressQueues`]). It also implements
//!   [`snap_dataplane::TrafficTarget`], so the multi-worker
//!   `TrafficEngine` drives distributed traffic too.
//! * The transport is a trait seam ([`transport::ControllerEndpoint`] /
//!   [`transport::AgentEndpoint`]) with every agent reply converging on the
//!   controller's shared **reply mux**. Two backends ship: in-process mpsc
//!   channels ([`deploy_in_process`]) and length-prefixed TCP frames
//!   ([`deploy_tcp`], [`tcp`]) for controller and agents as genuinely
//!   separate processes.
//!
//! ## Quick start
//!
//! ```
//! use snap_core::SolverChoice;
//! use snap_distrib::deploy_in_process;
//! use snap_lang::prelude::*;
//! use snap_session::CompilerSession;
//! use snap_topology::{generators, PortId, TrafficMatrix};
//!
//! let topo = generators::campus();
//! let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
//! let session = CompilerSession::new(topo, tm).with_solver(SolverChoice::Heuristic);
//! let mut deployment = deploy_in_process(session, 1024);
//!
//! // Compile + two-phase delta commit to every agent.
//! let policy = state_incr("count", vec![field(Field::InPort)])
//!     .seq(modify(Field::OutPort, Value::Int(6)));
//! let report = deployment.controller.update_policy(&policy).unwrap();
//! assert_eq!(report.epoch, 1);
//!
//! // Traffic flows through the agents; egress lands in per-port queues.
//! let pkt = Packet::new().with(Field::InPort, 1);
//! let out = deployment.network.inject(PortId(1), &pkt).unwrap();
//! assert_eq!(out.epoch, 1);
//! assert_eq!(deployment.network.drain_port(PortId(6)).len(), 1);
//! deployment.shutdown();
//! ```

#![warn(missing_docs)]

pub mod agent;
pub mod controller;
pub mod frame;
pub mod plane;
pub mod tcp;
pub mod transport;

pub use agent::{AgentStats, EpochView, SwitchAgent, EPOCH_HISTORY, FLAT_CACHE_CAP};
pub use controller::{CommitReport, Controller, DistribError, DistribOptions, MuxStats};
pub use plane::{DistNetwork, InjectError, InjectOutcome};
pub use tcp::{TcpAgentEndpoint, TcpControllerEndpoint, TcpTransportListener};
pub use transport::{
    channel_link, reply_channel, AgentEndpoint, ControllerEndpoint, FromAgent, PrepareMsg, ReplyRx,
    ReplyTx, SwitchMeta, ToAgent, TransportError,
};

use snap_session::CompilerSession;
use snap_topology::{NodeId as SwitchId, PortId};
use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A fully wired in-process deployment: one agent thread per switch,
/// channel transports, a traffic-facing [`DistNetwork`] over the same
/// agents, and the [`Controller`] driving them.
pub struct InProcessDeployment {
    /// The controller (owns the compiler session and all agent links).
    pub controller: Controller,
    /// The traffic plane over the deployed agents.
    pub network: Arc<DistNetwork>,
    handles: Vec<JoinHandle<()>>,
}

impl InProcessDeployment {
    /// Stop every agent thread and join them.
    pub fn shutdown(mut self) {
        self.controller.shutdown();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Knobs of the deployment helpers beyond the controller's own
/// [`DistribOptions`].
#[derive(Clone, Debug, Default)]
pub struct DeployOptions {
    /// Controller tunables (transport timeout, auto-compaction threshold).
    pub distrib: DistribOptions,
    /// Emulated control-network RTT: every agent sleeps this long before
    /// each reply (see [`SwitchAgent::with_ack_delay`]). `None` replies at
    /// loopback speed.
    pub ack_delay: Option<Duration>,
}

/// Deploy one [`SwitchAgent`] per switch of the session's topology on its
/// own thread, linked to a [`Controller`] over in-process channels.
/// `queue_capacity` bounds each agent's per-port egress queues.
pub fn deploy_in_process(session: CompilerSession, queue_capacity: usize) -> InProcessDeployment {
    deploy_in_process_with(session, queue_capacity, DistribOptions::default())
}

/// [`deploy_in_process`] with explicit controller tunables (transport
/// timeout, auto-compaction threshold).
pub fn deploy_in_process_with(
    session: CompilerSession,
    queue_capacity: usize,
    options: DistribOptions,
) -> InProcessDeployment {
    deploy_in_process_custom(
        session,
        queue_capacity,
        DeployOptions {
            distrib: options,
            ack_delay: None,
        },
    )
}

/// [`deploy_in_process`] with full [`DeployOptions`].
pub fn deploy_in_process_custom(
    session: CompilerSession,
    queue_capacity: usize,
    deploy: DeployOptions,
) -> InProcessDeployment {
    let topology = session.topology().clone();
    let mut ports_per_switch: BTreeMap<SwitchId, Vec<PortId>> = BTreeMap::new();
    for (port, node) in topology.external_ports() {
        ports_per_switch.entry(node).or_default().push(port);
    }
    // One telemetry instance for the whole deployment: the controller's
    // commit events, the session's compile counters and the data plane's
    // packet counters all land in the same registry, so a single snapshot
    // tells the whole story.
    let telemetry = snap_telemetry::Telemetry::new();
    let mut controller = Controller::new(session)
        .with_options(deploy.distrib)
        .with_telemetry(telemetry.clone());
    let mut agents: BTreeMap<SwitchId, Arc<SwitchAgent>> = BTreeMap::new();
    let mut handles = Vec::new();
    for switch in topology.nodes() {
        let mut agent = SwitchAgent::new(
            switch,
            topology.node_name(switch),
            ports_per_switch.remove(&switch).unwrap_or_default(),
            queue_capacity,
        );
        if let Some(delay) = deploy.ack_delay {
            agent = agent.with_ack_delay(delay);
        }
        let agent = Arc::new(agent);
        let (controller_end, agent_end) = channel_link(controller.reply_sender());
        let runner = Arc::clone(&agent);
        handles.push(std::thread::spawn(move || runner.run(agent_end)));
        controller.attach(switch, Box::new(controller_end));
        agents.insert(switch, agent);
    }
    let network = Arc::new(DistNetwork::new(topology, agents).with_telemetry(telemetry));
    InProcessDeployment {
        controller,
        network,
        handles,
    }
}

/// Deploy like [`deploy_in_process_custom`], but carry every
/// controller↔agent link over a framed TCP connection on loopback: the
/// controller binds one listener, each agent thread connects and
/// introduces itself, and a per-connection reader thread feeds the
/// controller's reply mux. Same processes, real sockets — the protocol
/// exercised end to end is exactly what two separate processes speak (see
/// `examples/distrib_campus.rs --transport tcp-proc` for the
/// multi-process form).
pub fn deploy_tcp(
    session: CompilerSession,
    queue_capacity: usize,
    deploy: DeployOptions,
) -> io::Result<InProcessDeployment> {
    let topology = session.topology().clone();
    let mut ports_per_switch: BTreeMap<SwitchId, Vec<PortId>> = BTreeMap::new();
    for (port, node) in topology.external_ports() {
        ports_per_switch.entry(node).or_default().push(port);
    }
    let telemetry = snap_telemetry::Telemetry::new();
    let mut controller = Controller::new(session)
        .with_options(deploy.distrib)
        .with_telemetry(telemetry.clone());
    let listener = TcpTransportListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let mut agents: BTreeMap<SwitchId, Arc<SwitchAgent>> = BTreeMap::new();
    let mut handles = Vec::new();
    for switch in topology.nodes() {
        let mut agent = SwitchAgent::new(
            switch,
            topology.node_name(switch),
            ports_per_switch.remove(&switch).unwrap_or_default(),
            queue_capacity,
        );
        if let Some(delay) = deploy.ack_delay {
            agent = agent.with_ack_delay(delay);
        }
        let agent = Arc::new(agent);
        // Connect-then-accept per agent keeps the accept association
        // deterministic and never outruns the listener backlog, even at a
        // thousand agents.
        let runner = Arc::clone(&agent);
        handles.push(std::thread::spawn(move || {
            let Ok(endpoint) = TcpAgentEndpoint::connect(addr, switch) else {
                return;
            };
            runner.run(endpoint);
        }));
        let (claimed, endpoint) = listener.accept_agent(controller.reply_sender())?;
        debug_assert_eq!(claimed, switch, "hello names the connecting switch");
        controller.attach(claimed, Box::new(endpoint));
        agents.insert(switch, agent);
    }
    let network = Arc::new(DistNetwork::new(topology, agents).with_telemetry(telemetry));
    Ok(InProcessDeployment {
        controller,
        network,
        handles,
    })
}
