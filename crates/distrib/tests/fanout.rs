//! Reply-mux and pipelining tests: stale acks from burned epochs, duplicate
//! acks, prepare failures racing other agents' acks, commit-failure cascade
//! aborts, measured pipeline overlap, the agent-side flatten cache, and the
//! TCP transport end to end.

use snap_core::SolverChoice;
use snap_distrib::{
    channel_link, deploy_in_process, deploy_in_process_custom, deploy_tcp, Controller,
    DeployOptions, DistribError, FromAgent, ReplyTx, SwitchAgent,
};
use snap_lang::prelude::*;
use snap_session::CompilerSession;
use snap_topology::{generators::campus, PortId, TrafficMatrix};
use std::sync::Arc;
use std::time::Duration;

fn campus_session() -> CompilerSession {
    let topo = campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
    CompilerSession::new(topo, tm).with_solver(SolverChoice::Heuristic)
}

fn counting_policy(egress: i64) -> Policy {
    state_incr("count", vec![field(Field::InPort)]).seq(modify(Field::OutPort, Value::Int(egress)))
}

/// Interpose on the controller's reply path (see `protocol.rs`): replies
/// sent through the returned [`ReplyTx`] pass through `rewrite` — which may
/// emit zero or more messages — before reaching the real mux.
fn interpose(
    controller: &Controller,
    mut rewrite: impl FnMut(FromAgent) -> Vec<FromAgent> + Send + 'static,
) -> (ReplyTx, std::thread::JoinHandle<()>) {
    let real = controller.reply_sender();
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        while let Ok(msg) = rx.recv() {
            for out in rewrite(msg) {
                if real.send(out).is_err() {
                    return;
                }
            }
        }
    });
    (ReplyTx::from_sender(tx), handle)
}

/// Everything [`build_with_interposer`] wires up: the controller, the
/// agents, their run-loop threads, and the interposer's forwarder thread.
type InterposedRig = (
    Controller,
    Vec<Arc<SwitchAgent>>,
    Vec<std::thread::JoinHandle<()>>,
    std::thread::JoinHandle<()>,
);

/// Build a controller plus threaded agents where agent 0's replies pass
/// through `rewrite` and everyone else's go straight to the mux.
fn build_with_interposer(
    timeout: Duration,
    rewrite: impl FnMut(FromAgent) -> Vec<FromAgent> + Send + 'static,
) -> InterposedRig {
    let session = campus_session();
    let topo = session.topology().clone();
    let mut controller = Controller::new(session).with_timeout(timeout);
    let (wrapped_tx, forwarder) = interpose(&controller, rewrite);
    let mut wrapped_tx = Some(wrapped_tx);
    let mut agents = Vec::new();
    let mut handles = Vec::new();
    for (i, switch) in topo.nodes().enumerate() {
        let agent = Arc::new(SwitchAgent::new(switch, topo.node_name(switch), [], 64));
        let reply = if i == 0 {
            wrapped_tx.take().expect("one interposed link")
        } else {
            controller.reply_sender()
        };
        let (ctrl_end, agent_end) = channel_link(reply);
        let runner = Arc::clone(&agent);
        handles.push(std::thread::spawn(move || runner.run(agent_end)));
        controller.attach(switch, Box::new(ctrl_end));
        agents.push(agent);
    }
    (controller, agents, handles, forwarder)
}

/// A `Prepared` ack of a burned (aborted) epoch that surfaces in the middle
/// of the *next* epoch's commit drain is discarded as stale by its epoch
/// key — it neither fails the commit nor is mistaken for a fresh ack.
#[test]
fn late_prepared_from_aborted_epoch_is_discarded_as_stale() {
    // Agent 0's first Prepared is replaced by PrepareFailed (burning the
    // epoch) and *stashed*; the stashed stale ack is replayed just before
    // the agent's next Committed, i.e. mid-commit-drain of the next epoch.
    let mut stash: Option<FromAgent> = None;
    let mut sabotaged = false;
    let (mut controller, agents, handles, forwarder) =
        build_with_interposer(Duration::from_secs(5), move |msg| match msg {
            FromAgent::Prepared { switch, epoch, .. } if !sabotaged => {
                sabotaged = true;
                stash = Some(msg);
                vec![FromAgent::PrepareFailed {
                    switch,
                    epoch,
                    reason: "sabotaged by test".into(),
                }]
            }
            FromAgent::Committed { .. } => match stash.take() {
                Some(stale) => vec![stale, msg],
                None => vec![msg],
            },
            other => vec![other],
        });

    let err = controller.update_policy(&counting_policy(6)).unwrap_err();
    assert!(matches!(err, DistribError::PrepareRejected { .. }));
    assert_eq!(controller.epoch(), 1, "the failed epoch number is burned");

    // The next update succeeds even though a stale epoch-1 Prepared lands
    // in the middle of epoch 2's commit-ack drain.
    let report = controller.update_policy(&counting_policy(1)).unwrap();
    assert_eq!(report.epoch, 2);
    assert_eq!(report.resyncs, 1, "exactly the sabotaged agent resyncs");
    for agent in &agents {
        assert_eq!(agent.current_view().unwrap().epoch, 2);
    }
    assert!(
        controller.mux_stats().stale >= 1,
        "the replayed burned-epoch ack must be counted as stale, got {:?}",
        controller.mux_stats()
    );

    controller.shutdown();
    for h in handles {
        h.join().unwrap();
    }
    forwarder.join().unwrap();
}

/// Duplicate acks (a retransmitting transport) are consumed once and
/// discarded thereafter — updates keep succeeding and the discards are
/// visible in the mux counters.
#[test]
fn duplicate_acks_are_discarded_and_counted() {
    let (mut controller, agents, handles, forwarder) =
        build_with_interposer(Duration::from_secs(5), |msg| vec![msg.clone(), msg]);

    let first = controller.update_policy(&counting_policy(6)).unwrap();
    assert_eq!(first.epoch, 1);
    let second = controller.update_policy(&counting_policy(1)).unwrap();
    assert_eq!(second.epoch, 2);
    assert_eq!(second.resyncs, 0, "duplicates must not force resyncs");
    for agent in &agents {
        assert_eq!(agent.current_view().unwrap().epoch, 2);
    }
    // Each duplicated ack is discarded as either a duplicate (same drain)
    // or stale (a later drain); by the second commit at least the first
    // update's duplicated Prepared has been consumed twice.
    let mux = controller.mux_stats();
    assert!(
        mux.stale + mux.duplicates >= 1,
        "no duplicate was counted: {mux:?}"
    );

    controller.shutdown();
    for h in handles {
        h.join().unwrap();
    }
    forwarder.join().unwrap();
}

/// A `PrepareFailed` racing the other agents' `Prepared` acks on the shared
/// mux fails the epoch exactly once, and the already-arrived acks of the
/// doomed epoch are fully drained — nothing leaks into the next update.
#[test]
fn prepare_failure_races_other_acks_without_leaking_strays() {
    let mut remaining = 1u32;
    let (mut controller, agents, handles, forwarder) =
        build_with_interposer(Duration::from_secs(5), move |msg| match msg {
            FromAgent::Prepared { switch, epoch, .. } if remaining > 0 => {
                remaining -= 1;
                vec![FromAgent::PrepareFailed {
                    switch,
                    epoch,
                    reason: "sabotaged by test".into(),
                }]
            }
            other => vec![other],
        });

    let err = controller.update_policy(&counting_policy(6)).unwrap_err();
    assert!(matches!(err, DistribError::PrepareRejected { .. }));

    let report = controller.update_policy(&counting_policy(1)).unwrap();
    assert_eq!(report.epoch, 2);
    assert_eq!(report.resyncs, 1);
    for agent in &agents {
        assert_eq!(agent.current_view().unwrap().epoch, 2);
    }
    // The doomed epoch's sibling acks were consumed *during* its own drain
    // (arrival order), not left queued to pollute epoch 2 as stale traffic.
    assert_eq!(
        controller.mux_stats().stale,
        0,
        "epoch-1 acks leaked into epoch 2's drain: {:?}",
        controller.mux_stats()
    );

    controller.shutdown();
    for h in handles {
        h.join().unwrap();
    }
    forwarder.join().unwrap();
}

/// Back-to-back `update_policy_async` calls overlap epoch N+1's prepare
/// fan-out with epoch N's commit-ack drain, and the overlap is measured.
#[test]
fn pipelined_epochs_overlap_and_commit_in_order() {
    let mut deployment = deploy_in_process_custom(
        campus_session(),
        64,
        DeployOptions {
            ack_delay: Some(Duration::from_millis(15)),
            ..DeployOptions::default()
        },
    );

    let first = deployment
        .controller
        .update_policy_async(&counting_policy(6))
        .unwrap();
    assert!(first.is_empty(), "nothing was in flight before epoch 1");
    assert_eq!(deployment.controller.in_flight_epoch(), Some(1));

    let second = deployment
        .controller
        .update_policy_async(&counting_policy(1))
        .unwrap();
    assert_eq!(second.len(), 1, "epoch 1 completes during epoch 2's call");
    assert_eq!(second[0].epoch, 1);
    assert!(
        second[0].pipeline_overlap > Duration::ZERO,
        "epoch 1's commit drain must overlap epoch 2's prepare fan-out"
    );
    assert_eq!(deployment.controller.in_flight_epoch(), Some(2));

    let rest = deployment.controller.flush().unwrap();
    assert_eq!(rest.len(), 1);
    assert_eq!(rest[0].epoch, 2);
    assert_eq!(deployment.controller.in_flight_epoch(), None);

    // Both epochs landed, in order, and every agent runs the newest one.
    let epochs: Vec<u64> = deployment
        .controller
        .history()
        .iter()
        .map(|r| r.epoch)
        .collect();
    assert_eq!(epochs, vec![1, 2]);
    assert!(deployment.controller.history()[0].pipeline_overlap > Duration::ZERO);
    for agent in deployment.network.agents() {
        assert_eq!(agent.current_view().unwrap().epoch, 2);
    }
    deployment.shutdown();
}

/// When epoch N's commit fails while epoch N+1 is already staged, the
/// staged epoch is cascade-aborted: both numbers burn, every mirror
/// resyncs, and the fleet recovers on the next update.
#[test]
fn pipelined_epoch_cascade_aborts_when_previous_commit_fails() {
    let mut remaining = 1u32;
    let (mut controller, agents, handles, forwarder) =
        build_with_interposer(Duration::from_millis(400), move |msg| match msg {
            FromAgent::Committed { .. } if remaining > 0 => {
                remaining -= 1;
                Vec::new() // eat it: the agent flipped, the ack is lost
            }
            other => vec![other],
        });

    let staged = controller.update_policy_async(&counting_policy(6)).unwrap();
    assert!(staged.is_empty());
    assert_eq!(controller.in_flight_epoch(), Some(1));

    // Epoch 2 stages fine, but completing epoch 1 times out on the eaten
    // ack — the staged epoch is aborted as a cascade.
    let err = controller
        .update_policy_async(&counting_policy(1))
        .unwrap_err();
    assert!(matches!(err, DistribError::Transport { .. }));
    assert_eq!(controller.epoch(), 2, "both epoch numbers are burned");
    assert_eq!(controller.in_flight_epoch(), None);
    assert!(controller.history().is_empty(), "nothing completed");
    // Every agent flipped to epoch 1 (only the ack was lost) and none
    // committed the cascade-aborted epoch 2.
    std::thread::sleep(Duration::from_millis(50));
    for agent in &agents {
        assert_eq!(agent.current_view().unwrap().epoch, 1);
    }

    // Recovery: a fresh epoch resyncs everyone.
    let report = controller.update_policy(&counting_policy(6)).unwrap();
    assert_eq!(report.epoch, 3);
    assert_eq!(report.resyncs, agents.len());
    for agent in &agents {
        assert_eq!(agent.current_view().unwrap().epoch, 3);
    }

    controller.shutdown();
    for h in handles {
        h.join().unwrap();
    }
    forwarder.join().unwrap();
}

/// Flipping back to a recently staged program skips the flatten: the
/// agent's root-keyed cache serves it.
#[test]
fn rollback_prepare_hits_the_flatten_cache() {
    let mut deployment = deploy_in_process(campus_session(), 64);
    deployment
        .controller
        .update_policy(&counting_policy(6))
        .unwrap();
    deployment
        .controller
        .update_policy(&counting_policy(1))
        .unwrap();
    // Rollback: same program as epoch 1, hence the same root in the
    // append-only mirror — every agent must hit its flatten cache.
    deployment
        .controller
        .update_policy(&counting_policy(6))
        .unwrap();
    for agent in deployment.network.agents() {
        assert!(
            agent
                .stats()
                .flat_cache_hits
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1,
            "agent {} re-flattened a cached root",
            agent.name()
        );
    }
    deployment.shutdown();
}

/// The framed TCP transport carries the full protocol end to end: commits,
/// deltas, resyncs and data-plane traffic behave exactly like the
/// in-process backend.
#[test]
fn tcp_transport_runs_the_full_protocol() {
    let mut deployment =
        deploy_tcp(campus_session(), 1024, DeployOptions::default()).expect("tcp deploy");

    let first = deployment
        .controller
        .update_policy(&counting_policy(6))
        .unwrap();
    assert_eq!(first.epoch, 1);
    assert_eq!(first.resyncs, deployment.controller.agent_count());

    // Traffic flows through the socket-fed agents.
    let pkt = Packet::new().with(Field::InPort, 1);
    let out = deployment.network.inject(PortId(1), &pkt).unwrap();
    assert_eq!(out.epoch, 1);
    assert_eq!(out.delivered.len(), 1);
    assert_eq!(out.delivered[0].0, PortId(6));

    // A second update ships a suffix delta over the sockets.
    let second = deployment
        .controller
        .update_policy(&counting_policy(1))
        .unwrap();
    assert_eq!(second.epoch, 2);
    assert_eq!(second.resyncs, 0);
    for agent in deployment.network.agents() {
        assert_eq!(agent.current_view().unwrap().epoch, 2);
    }
    assert_eq!(deployment.controller.mux_stats().stale, 0);
    deployment.shutdown();
}
