//! Robustness of the transport frame codec against malformed input,
//! mirroring `snap-xfdd`'s `wire_fuzz.rs`: for valid encodings of
//! representative controller↔agent messages, every truncation must decode
//! to an error (never a panic), and arbitrary corruption must either error
//! or decode to a message the types themselves accept — the decoder is fed
//! network bytes and must never take the controller or a switch down.

use proptest::prelude::*;
use snap_distrib::frame::{decode_from_agent, decode_to_agent, encode_from_agent, encode_to_agent};
use snap_distrib::{FromAgent, PrepareMsg, SwitchMeta, ToAgent};
use snap_lang::{Ipv4, Prefix, StateTable, StateVar, Value};
use snap_topology::{NodeId as SwitchId, PortId};

/// A state table exercising every value shape the codec handles.
fn rich_table() -> StateTable {
    let mut t = StateTable::with_default(Value::Bool(false));
    t.set(
        vec![Value::Ip(Ipv4::new(10, 0, 0, 1)), Value::str("a.example")],
        Value::Prefix(Prefix::new(Ipv4::new(10, 0, 6, 0), 24)),
    );
    t.set(
        vec![Value::Tuple(vec![Value::Int(-3), Value::sym("SYN")])],
        Value::Int(i64::MIN),
    );
    t
}

/// Representative frames covering every `ToAgent` variant.
fn to_agent_encodings() -> Vec<Vec<u8>> {
    let meta = SwitchMeta {
        local_vars: [StateVar("susp".into()), StateVar("seen".into())]
            .into_iter()
            .collect(),
        ports: [PortId(1), PortId(600)].into_iter().collect(),
    };
    let msgs = [
        ToAgent::Prepare(Box::new(PrepareMsg {
            epoch: 41,
            resync: true,
            delta: (0u16..300).map(|b| (b % 251) as u8).collect(),
            meta: Some(meta),
            placement: Some(
                [(StateVar("susp".into()), SwitchId(9))]
                    .into_iter()
                    .collect(),
            ),
        })),
        ToAgent::Prepare(Box::new(PrepareMsg {
            epoch: 42,
            resync: false,
            delta: vec![7; 16],
            meta: None,
            placement: None,
        })),
        ToAgent::Commit { epoch: 42 },
        ToAgent::Abort { epoch: 42 },
        ToAgent::InstallTable {
            epoch: 42,
            var: StateVar("susp".into()),
            table: rich_table(),
        },
        ToAgent::Shutdown,
    ];
    msgs.iter().map(encode_to_agent).collect()
}

/// Representative frames covering every `FromAgent` variant.
fn from_agent_encodings() -> Vec<Vec<u8>> {
    let msgs = [
        FromAgent::Prepared {
            switch: SwitchId(3),
            epoch: 41,
            new_nodes: 977,
        },
        FromAgent::PrepareFailed {
            switch: SwitchId(0),
            epoch: 41,
            reason: "delta rejected: \"bad suffix\"".into(),
        },
        FromAgent::Committed {
            switch: SwitchId(3),
            epoch: 41,
            yields: vec![
                (StateVar("susp".into()), rich_table()),
                (
                    StateVar("seen".into()),
                    StateTable::with_default(Value::Int(0)),
                ),
            ],
        },
        FromAgent::Installed {
            switch: SwitchId(9),
            epoch: 41,
            var: StateVar("susp".into()),
        },
    ];
    msgs.iter().map(encode_from_agent).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // Any strict prefix is a decode error: no variant's encoding is a
    // prefix of itself plus garbage, and the mandatory trailing check
    // rejects frames that end early.
    #[test]
    fn truncated_to_agent_frames_error_and_never_panic(
        which in 0usize..6,
        cut in 0usize..100_000,
    ) {
        let bytes = &to_agent_encodings()[which];
        let cut = cut % bytes.len();
        prop_assert!(decode_to_agent(&bytes[..cut]).is_err());
    }

    #[test]
    fn truncated_from_agent_frames_error_and_never_panic(
        which in 0usize..4,
        cut in 0usize..100_000,
    ) {
        let bytes = &from_agent_encodings()[which];
        let cut = cut % bytes.len();
        prop_assert!(decode_from_agent(&bytes[..cut]).is_err());
    }

    // Arbitrary single-bit corruption must never panic (and in particular
    // must never drive an allocation off a corrupt length field): it either
    // errors or yields a structurally valid message.
    #[test]
    fn bit_flipped_to_agent_frames_never_panic(
        which in 0usize..6,
        pos in 0usize..100_000,
        bit in 0u32..8,
    ) {
        let mut bytes = to_agent_encodings()[which].clone();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        let _ = decode_to_agent(&bytes);
    }

    #[test]
    fn bit_flipped_from_agent_frames_never_panic(
        which in 0usize..4,
        pos in 0usize..100_000,
        bit in 0u32..8,
    ) {
        let mut bytes = from_agent_encodings()[which].clone();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        if let Ok(msg) = decode_from_agent(&bytes) {
            // Whatever decoded is a well-formed message the mux can route.
            let _ = (msg.switch(), msg.epoch());
        }
    }

    #[test]
    fn multi_byte_corruption_never_panics(
        which in 0usize..6,
        a in 0usize..100_000,
        b in 0usize..100_000,
        byte in 0u8..=255,
    ) {
        let mut bytes = to_agent_encodings()[which].clone();
        let len = bytes.len();
        bytes[a % len] = byte;
        bytes[b % len] = byte.wrapping_mul(31).wrapping_add(7);
        let _ = decode_to_agent(&bytes);
    }
}
