//! Protocol-level tests of the distribution plane: two-phase commit
//! atomicity, abort-and-resync recovery, late-joining agents, order resets
//! and state-table migration between agents.

use snap_core::SolverChoice;
use snap_distrib::{
    channel_link, deploy_in_process, Controller, DistribError, FromAgent, PrepareMsg, ReplyTx,
    SwitchAgent, SwitchMeta, ToAgent,
};
use snap_lang::prelude::*;
use snap_session::CompilerSession;
use snap_topology::{generators::campus, PortId, TrafficMatrix};
use snap_xfdd::{encode_delta, Pool, VarOrder};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn campus_session() -> CompilerSession {
    let topo = campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
    CompilerSession::new(topo, tm).with_solver(SolverChoice::Heuristic)
}

fn counting_policy(egress: i64) -> Policy {
    state_incr("count", vec![field(Field::InPort)]).seq(modify(Field::OutPort, Value::Int(egress)))
}

/// Interpose on the controller's reply path: replies routed through the
/// returned [`ReplyTx`] pass through `rewrite` (drop with `None`) before
/// reaching the controller's real mux. The forwarder thread exits when
/// every clone of the returned sender is gone.
fn interpose(
    controller: &Controller,
    mut rewrite: impl FnMut(FromAgent) -> Option<FromAgent> + Send + 'static,
) -> (ReplyTx, std::thread::JoinHandle<()>) {
    let real = controller.reply_sender();
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        while let Ok(msg) = rx.recv() {
            if let Some(msg) = rewrite(msg) {
                if real.send(msg).is_err() {
                    return;
                }
            }
        }
    });
    (ReplyTx::from_sender(tx), handle)
}

#[test]
fn failed_prepare_aborts_everywhere_and_recovers_by_resync() {
    let session = campus_session();
    let topo = session.topology().clone();
    let mut controller = Controller::new(session);
    // The first agent's replies pass through a saboteur that rewrites its
    // first `Prepared` into `PrepareFailed` — a switch whose staging
    // "fails" while the real agent actually advanced its mirror, i.e. the
    // worst divergence case.
    let mut remaining = 1u32;
    let (sabotage_tx, forwarder) = interpose(&controller, move |msg| match msg {
        FromAgent::Prepared { switch, epoch, .. } if remaining > 0 => {
            remaining -= 1;
            Some(FromAgent::PrepareFailed {
                switch,
                epoch,
                reason: "sabotaged by test".into(),
            })
        }
        other => Some(other),
    });
    let mut sabotage_tx = Some(sabotage_tx);
    let mut agents = Vec::new();
    let mut handles = Vec::new();
    for (i, switch) in topo.nodes().enumerate() {
        let agent = Arc::new(SwitchAgent::new(switch, topo.node_name(switch), [], 64));
        let reply = if i == 0 {
            sabotage_tx.take().expect("one sabotaged link")
        } else {
            controller.reply_sender()
        };
        let (ctrl_end, agent_end) = channel_link(reply);
        let runner = Arc::clone(&agent);
        handles.push(std::thread::spawn(move || runner.run(agent_end)));
        controller.attach(switch, Box::new(ctrl_end));
        agents.push(agent);
    }

    // The sabotaged prepare fails the whole epoch: nobody commits. The
    // epoch number is burned anyway (stale replies for it may be queued),
    // so it is skipped rather than reused.
    let err = controller.update_policy(&counting_policy(6)).unwrap_err();
    assert!(matches!(err, DistribError::PrepareRejected { .. }));
    assert_eq!(controller.epoch(), 1);
    // Give the aborts a moment to drain, then check no agent flipped.
    std::thread::sleep(Duration::from_millis(50));
    for agent in &agents {
        assert!(
            agent.current_view().is_none(),
            "an agent committed an aborted epoch"
        );
    }

    // The next update succeeds: the failed agent is resynced, everyone
    // commits the same epoch, and every mirror matches the controller's
    // distribution pool node-for-node (by length here; the wire layer
    // verifies contents).
    let report = controller.update_policy(&counting_policy(1)).unwrap();
    assert_eq!(report.epoch, 2);
    assert_eq!(report.resyncs, 1, "exactly the sabotaged agent resyncs");
    for agent in &agents {
        assert_eq!(agent.current_view().unwrap().epoch, 2);
        assert_eq!(agent.mirror_len(), controller.dist_pool_len());
    }

    controller.shutdown();
    for h in handles {
        h.join().unwrap();
    }
    forwarder.join().unwrap();
}

#[test]
fn commit_phase_failure_burns_the_epoch_and_resyncs() {
    let session = campus_session();
    let topo = session.topology().clone();
    let mut controller = Controller::new(session).with_timeout(Duration::from_millis(500));
    // The first agent's reply path eats its first `Committed` (turning it
    // into a timeout): the agent really flipped, the controller never heard.
    let mut remaining = 1u32;
    let (eat_tx, forwarder) = interpose(&controller, move |msg| match msg {
        FromAgent::Committed { .. } if remaining > 0 => {
            remaining -= 1;
            None
        }
        other => Some(other),
    });
    let mut eat_tx = Some(eat_tx);
    let mut agents = Vec::new();
    let mut handles = Vec::new();
    for (i, switch) in topo.nodes().enumerate() {
        let agent = Arc::new(SwitchAgent::new(switch, topo.node_name(switch), [], 64));
        let reply = if i == 0 {
            eat_tx.take().expect("one interposed link")
        } else {
            controller.reply_sender()
        };
        let (ctrl_end, agent_end) = channel_link(reply);
        let runner = Arc::clone(&agent);
        handles.push(std::thread::spawn(move || runner.run(agent_end)));
        controller.attach(switch, Box::new(ctrl_end));
        agents.push(agent);
    }

    // Every agent flips to epoch 1, but one acknowledgement is lost: the
    // update errors, and — crucially — epoch 1 is burned, because some
    // switch is already running it.
    let err = controller.update_policy(&counting_policy(6)).unwrap_err();
    assert!(matches!(err, DistribError::Transport { .. }));
    assert_eq!(
        controller.epoch(),
        1,
        "a partially committed epoch is consumed"
    );

    // Recovery: the next update uses a fresh epoch and conservatively
    // resyncs every agent; afterwards the whole plane is consistent again.
    let report = controller.update_policy(&counting_policy(1)).unwrap();
    assert_eq!(report.epoch, 2);
    assert_eq!(report.resyncs, agents.len());
    for agent in &agents {
        assert_eq!(agent.current_view().unwrap().epoch, 2);
        assert_eq!(agent.mirror_len(), controller.dist_pool_len());
    }

    controller.shutdown();
    for h in handles {
        h.join().unwrap();
    }
    forwarder.join().unwrap();
}

#[test]
fn unservable_egress_port_errors_instead_of_spinning() {
    use snap_distrib::{DistNetwork, InjectError};
    use snap_xfdd::{Action, Leaf};

    // One switch hosting external port 1 per the topology, but the agent's
    // committed view serves *no* ports — a misconfiguration that must fail
    // the packet, not hang the injector.
    let mut topo = snap_topology::Topology::new("tiny");
    let s0 = topo.add_node("S0");
    topo.add_external_port(PortId(1), s0);

    let order = VarOrder::empty();
    let mut pool = Pool::new(order.clone());
    let root = pool.leaf(Leaf::single(Action::Modify(Field::OutPort, Value::Int(1))));
    let fresh = Pool::new(order).len();
    let boot = encode_delta(&pool, fresh, root);

    let agent = Arc::new(SwitchAgent::new(s0, "S0", [PortId(1)], 16));
    agent.handle(ToAgent::Prepare(Box::new(PrepareMsg {
        epoch: 1,
        resync: true,
        delta: boot,
        meta: Some(SwitchMeta {
            local_vars: BTreeSet::new(),
            ports: BTreeSet::new(), // does not serve port 1
        }),
        placement: Some(BTreeMap::new()),
    })));
    agent.handle(ToAgent::Commit { epoch: 1 });

    let network = DistNetwork::new(topo, BTreeMap::from([(s0, agent)]));
    let err = network.inject(PortId(1), &Packet::new()).unwrap_err();
    assert!(
        matches!(
            err,
            InjectError::Sim(snap_dataplane::SimError::BadOutPort(_))
        ),
        "expected a BadOutPort error, got {err:?}"
    );
}

#[test]
fn late_joining_agent_is_bootstrapped_by_full_resync() {
    let session = campus_session();
    let topo = session.topology().clone();
    let mut deployment = deploy_in_process(session, 64);
    deployment
        .controller
        .update_policy(&counting_policy(6))
        .unwrap();
    deployment
        .controller
        .update_policy(&counting_policy(1))
        .unwrap();

    // A fresh agent joins after two generations were distributed.
    let switch = topo.node_by_name("C1").unwrap();
    let late = Arc::new(SwitchAgent::new(switch, "late-C1", [], 64));
    let (ctrl_end, agent_end) = channel_link(deployment.controller.reply_sender());
    let runner = Arc::clone(&late);
    let handle = std::thread::spawn(move || runner.run(agent_end));
    deployment.controller.attach(switch, Box::new(ctrl_end));

    let report = deployment
        .controller
        .update_policy(&counting_policy(6))
        .unwrap();
    assert_eq!(report.resyncs, 1);
    assert_eq!(report.epoch, 3);
    // The late mirror holds the *entire* distribution pool (all shipped
    // generations), which is what keeps its flat ids aligned with agents
    // that followed every delta.
    assert_eq!(late.mirror_len(), deployment.controller.dist_pool_len());
    assert_eq!(late.current_view().unwrap().epoch, 3);
    assert_eq!(late.stats().resyncs.load(Ordering::Relaxed), 1);

    deployment.shutdown();
    handle.join().unwrap();
}

#[test]
fn changed_variable_order_resets_the_distribution_pool() {
    let session = campus_session();
    let mut deployment = deploy_in_process(session, 64);
    let n = deployment.controller.agent_count();
    let first = deployment
        .controller
        .update_policy(&counting_policy(6))
        .unwrap();
    assert_eq!(first.resyncs, n, "first update bootstraps everyone");

    // Same variable set: suffix deltas.
    let second = deployment
        .controller
        .update_policy(&counting_policy(1))
        .unwrap();
    assert_eq!(second.resyncs, 0);

    // A different state variable changes the order: everyone resyncs
    // against a reset pool.
    let other =
        state_incr("other", vec![field(Field::InPort)]).seq(modify(Field::OutPort, Value::Int(6)));
    let reset = deployment.controller.update_policy(&other).unwrap();
    assert_eq!(reset.resyncs, n);
    deployment.shutdown();
}

#[test]
fn rollback_ships_a_zero_node_delta() {
    let session = campus_session();
    let mut deployment = deploy_in_process(session, 64);
    // A substantial program, so the constant payload header is noise.
    let v6 = snap_apps::dns_tunnel_detect(3).seq(snap_apps::assign_egress(6));
    let v1 = snap_apps::dns_tunnel_detect(5).seq(snap_apps::assign_egress(6));
    deployment.controller.update_policy(&v6).unwrap();
    let grow = deployment.controller.update_policy(&v1).unwrap();
    assert!(grow.new_nodes > 0);
    // Flipping back: every node is already mirrored everywhere.
    let rollback = deployment.controller.update_policy(&v6).unwrap();
    assert_eq!(rollback.new_nodes, 0);
    assert!(rollback.delta_bytes < grow.delta_bytes);
    assert!(
        rollback.delta_bytes < rollback.full_bytes / 4,
        "zero-node delta ({} B) not under 25% of full payload ({} B)",
        rollback.delta_bytes,
        rollback.full_bytes
    );
    deployment.shutdown();
}

#[test]
fn tables_migrate_between_agents_through_yield_and_install() {
    // Drive two agents synchronously through the message handlers: A owns
    // `x` at epoch 1, loses it to B at epoch 2; the table must move intact.
    let a = SwitchAgent::new(snap_topology::NodeId(0), "A", [PortId(1)], 16);
    let b = SwitchAgent::new(snap_topology::NodeId(1), "B", [PortId(2)], 16);

    let order = VarOrder::new(vec!["x".into()]);
    let dist = Pool::new(order);
    let fresh = dist.len();
    let root = dist.id();
    let boot = encode_delta(&dist, fresh, root);

    let x: snap_lang::StateVar = "x".into();
    let meta = |vars: BTreeSet<snap_lang::StateVar>, ports: BTreeSet<PortId>| SwitchMeta {
        local_vars: vars,
        ports,
    };
    let prepare = |epoch, m: SwitchMeta, placement| {
        ToAgent::Prepare(Box::new(PrepareMsg {
            epoch,
            resync: true,
            delta: boot.clone(),
            meta: Some(m),
            placement: Some(placement),
        }))
    };

    // Epoch 1: A owns x.
    let placement1: BTreeMap<_, _> = [(x.clone(), snap_topology::NodeId(0))].into();
    let r = a.handle(prepare(
        1,
        meta(BTreeSet::from([x.clone()]), BTreeSet::from([PortId(1)])),
        placement1.clone(),
    ));
    assert!(matches!(r[0], FromAgent::Prepared { .. }));
    a.handle(ToAgent::Commit { epoch: 1 });
    b.handle(prepare(
        1,
        meta(BTreeSet::new(), BTreeSet::from([PortId(2)])),
        placement1,
    ));
    b.handle(ToAgent::Commit { epoch: 1 });

    // Some state accrues on A — plus a stray table A was never assigned
    // (as a failed earlier migration would leave behind).
    let stray: snap_lang::StateVar = "stray".into();
    a.store().set(&x, vec![Value::Int(7)], Value::Int(42));
    a.store().set(&stray, vec![Value::Int(0)], Value::Int(9));

    // Epoch 2: x moves to B. The agent's store is authoritative: at commit
    // it yields every table its new view no longer owns.
    let placement2: BTreeMap<_, _> = [(x.clone(), snap_topology::NodeId(1))].into();
    a.handle({
        let mut p = match prepare(
            2,
            meta(BTreeSet::new(), BTreeSet::from([PortId(1)])),
            placement2.clone(),
        ) {
            ToAgent::Prepare(p) => p,
            _ => unreachable!(),
        };
        p.resync = false;
        // The mirror is already at the full table; a zero-node delta
        // re-ships the root.
        p.delta = encode_delta(&dist, dist.len(), root);
        ToAgent::Prepare(p)
    });
    let replies = a.handle(ToAgent::Commit { epoch: 2 });
    let yields = match &replies[0] {
        FromAgent::Committed { yields, .. } => yields.clone(),
        other => panic!("unexpected reply {other:?}"),
    };
    // Both x (the planned migration) and the stray table are yielded: the
    // store, not a controller-provided list, decides what leaves.
    assert_eq!(yields.len(), 2);
    assert_eq!(a.store().collect_table(&x), None, "A kept a yielded table");
    assert_eq!(
        a.store().collect_table(&stray),
        None,
        "stray table stranded"
    );

    // Meanwhile a new-epoch packet already wrote x on B before the
    // migrated table arrives (the eager-migration window).
    b.store().set(&x, vec![Value::Int(99)], Value::Int(7));

    // The controller relays x's table to B (the stray one has no owner in
    // the placement and would be dropped). The install merges: migrated
    // history fills in, entries written in the window survive.
    let (var, table) = yields.into_iter().find(|(v, _)| *v == x).unwrap();
    let installed = b.handle(ToAgent::InstallTable {
        epoch: 2,
        var,
        table,
    });
    assert!(matches!(installed[0], FromAgent::Installed { .. }));
    assert_eq!(
        b.store().get(&x, &[Value::Int(7)]),
        Value::Int(42),
        "the migrated table lost its contents"
    );
    assert_eq!(
        b.store().get(&x, &[Value::Int(99)]),
        Value::Int(7),
        "a write racing the install was discarded"
    );
}

#[test]
fn auto_compaction_reclaims_the_pool_and_keeps_packet_tags_valid() {
    use snap_distrib::{deploy_in_process_with, DistribOptions};

    // Auto-compact once the append-only pool exceeds 2x the live program.
    let options = DistribOptions {
        compact_threshold: Some(2),
        ..DistribOptions::default()
    };
    let mut deployment = deploy_in_process_with(campus_session(), 256, options);
    let network = Arc::clone(&deployment.network);

    // A family of structurally distinct programs with an identical
    // packet-state mapping: each novel threshold appends nodes to the
    // distribution pool while the live size stays roughly constant, so the
    // pool must eventually cross the threshold.
    let versioned = |threshold: i64| {
        ite(
            state_test("count", vec![field(Field::InPort)], int(threshold)),
            drop(),
            state_incr("count", vec![field(Field::InPort)]),
        )
        .seq(modify(Field::OutPort, Value::Int(6)))
    };
    let pkt = Packet::new().with(Field::InPort, 1);

    let mut compacted_at = None;
    let mut peak_pool = 0;
    let mut injected = 0i64;
    for v in 0..24i64 {
        peak_pool = peak_pool.max(deployment.controller.dist_pool_len());
        let report = deployment
            .controller
            .update_policy(&versioned(1_000_000 + v))
            .unwrap();
        // Traffic keeps flowing between commits: the packet's multi-hop
        // itinerary (state switch, then the egress switch) resolves tags
        // against whatever views the agents currently serve — including
        // right after a compaction renumbered the controller's pool.
        let out = network.inject(PortId(1), &pkt).unwrap();
        injected += 1;
        assert_eq!(out.delivered.len(), 1, "version {v} lost its packet");
        assert_eq!(out.delivered[0].0, PortId(6));
        if report.compacted_nodes > 0 {
            compacted_at = Some((v, report.compacted_nodes));
            // The compacted pool holds only the live program (plus the
            // fresh-pool base), strictly under the pre-compaction peak.
            assert!(deployment.controller.dist_pool_len() < peak_pool);
            break;
        }
    }
    let (compact_version, reclaimed) =
        compacted_at.expect("24 novel versions never crossed a 2x threshold");
    assert!(reclaimed > 0);

    // The first update after a compaction re-bootstraps every mirror with a
    // full-table resync that preserves the fresh pool's exact numbering.
    let report = deployment
        .controller
        .update_policy(&versioned(2_000_000))
        .unwrap();
    assert!(
        report.resyncs > 0,
        "post-compaction update must resync diverged mirrors"
    );
    let out = network.inject(PortId(1), &pkt).unwrap();
    injected += 1;
    assert_eq!(out.delivered.len(), 1);

    // Every injected packet incremented exactly once across all the
    // commits, the compaction and the resync: state is never touched by
    // pool maintenance.
    assert_eq!(
        network
            .aggregate_store()
            .get(&"count".into(), &[Value::Int(1)]),
        Value::Int(injected),
        "a state write was lost around the compaction at version {compact_version}"
    );
    deployment.shutdown();
}

#[test]
fn distributed_hop_budget_is_configurable_and_enforced() {
    let mut deployment = deploy_in_process(campus_session(), 64);
    deployment
        .controller
        .update_policy(&counting_policy(6))
        .unwrap();
    let pkt = Packet::new().with(Field::InPort, 1);

    // The deployed plane uses the same default budget as the in-process
    // `Network`, and the multi-hop itinerary fits in it.
    assert_eq!(
        deployment.network.hop_budget(),
        snap_dataplane::network::DEFAULT_HOP_BUDGET
    );
    let out = deployment.network.inject(PortId(1), &pkt).unwrap();
    assert_eq!(out.delivered.len(), 1);

    // A plane over the *same agents* with a zero-hop budget: the shared
    // driver cuts the packet off with the budget error instead of spinning
    // through the loopy forwarding itinerary.
    let agents: BTreeMap<_, _> = deployment
        .network
        .agents()
        .map(|a| (a.switch(), Arc::clone(a)))
        .collect();
    let tiny = snap_distrib::DistNetwork::new(deployment.network.topology().clone(), agents)
        .with_hop_budget(0);
    assert_eq!(tiny.hop_budget(), 0);
    let err = tiny.inject(PortId(1), &pkt).unwrap_err();
    assert_eq!(
        err,
        snap_distrib::InjectError::Sim(snap_dataplane::SimError::HopBudgetExceeded)
    );
    deployment.shutdown();
}
