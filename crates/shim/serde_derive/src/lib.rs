//! No-op stand-ins for serde's `Serialize`/`Deserialize` derive macros.
//!
//! The build environment has no registry access, so this proc-macro crate
//! accepts the derive attributes and emits nothing. The matching trait
//! definitions live in the sibling `serde` shim crate; replacing both shims
//! with the real crates.io packages requires no source changes elsewhere.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and any `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and any `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
