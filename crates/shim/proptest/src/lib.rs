//! In-tree stand-in for the parts of `proptest` the workspace uses.
//!
//! Provides random-input property testing with the same source-level API:
//! [`Strategy`] with `prop_map`/`prop_recursive`, [`Just`], `any::<T>()`,
//! ranges as strategies, tuple strategies, [`collection::vec`], the
//! [`prop_oneof!`], [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`]
//! macros and [`ProptestConfig`]. Failing cases are reported with their case
//! number and seed; shrinking is not implemented (the real proptest can be
//! swapped in via the workspace manifest when registry access is available).

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator driving the strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from an arbitrary string (e.g. the test name), so
    /// every property test gets a distinct but reproducible stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Core strategy trait and combinators
// ---------------------------------------------------------------------------

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Box (and reference-count) the strategy so it can be cloned and stored.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Build recursive values: `f` receives the strategy for the previous
    /// recursion level and returns the strategy for one more level. `depth`
    /// levels are stacked on top of `self` (the leaf strategy); the remaining
    /// parameters exist for signature compatibility with proptest.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            // At each level, fall back to the leaf strategy half the time so
            // generated values have varied depth.
            level = Union {
                arms: vec![base.clone(), f(level).boxed()],
            }
            .boxed();
        }
        level
    }
}

/// A clonable, type-erased strategy (proptest's `BoxedStrategy`).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the already-boxed arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

// Ranges as strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

// Tuple strategies (up to 4 components, which is all the workspace needs).
macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategy for "any value of this type" (backs `any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    fn arbitrary() -> BoxedStrategy<Self>;
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        AnyBits(|bits| bits & 1 == 1).boxed()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                AnyBits(|bits| bits as $t).boxed()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

struct AnyBits<T>(fn(u64) -> T);

impl<T> Strategy for AnyBits<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng.next_u64())
    }
}

/// The canonical strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + (rng.next_u64() as usize % span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Test runner plumbing
// ---------------------------------------------------------------------------

/// Per-test configuration (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Everything property tests usually import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform choice among several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fail the property with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fail the property unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Fail the property unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Define property tests: each `#[test] fn name(x in strategy, ...) { body }`
/// becomes a normal unit test that runs the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("property `{}` failed at case {}/{}: {}",
                               stringify!($name), case + 1, cfg.cases, e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::TestRng::from_name("unit");
        let s = (0i64..5).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (0..10).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::TestRng::from_name("arms");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::TestRng::from_name("tree");
        let mut max = 0;
        for _ in 0..200 {
            let t = s.generate(&mut rng);
            let d = depth(&t);
            assert!(d <= 5);
            max = max.max(d);
        }
        assert!(max >= 3, "recursion never fired (max depth {max})");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_itself_works(x in 0u32..100, y in 0u32..100) {
            prop_assert!(x < 100, "x out of range: {x}");
            prop_assert_eq!(x + y, y + x);
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = crate::TestRng::from_name("vec");
        let s = crate::collection::vec(0u8..5, 1..=3);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
        }
    }
}
