//! In-tree stand-in for the `serde` facade.
//!
//! Provides the `Serialize`/`Deserialize` trait names plus the no-op derive
//! macros from the sibling `serde_derive` shim, so that
//! `use serde::{Deserialize, Serialize};` and
//! `#[derive(Serialize, Deserialize)]` compile without registry access.
//! Actual (de)serialization is not implemented; swap this shim for the real
//! crates.io `serde` (a one-line change in the workspace manifest) to get it.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de> {}
