//! In-tree stand-in for the parts of `rand` 0.8 the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` over integer
//! and float ranges. The generator is splitmix64 — deterministic per seed,
//! which is all the topology generators and tests rely on.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (mirrors `rand::SeedableRng` for the used surface).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling trait (mirrors `rand::Rng` for the used surface).
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` (uniform over the type's range; floats are
    /// uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Sample uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut || self.next_u64())
    }

    /// A biased coin flip: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self.next_u64()) < p
    }
}

/// Types that `gen::<T>()` can produce.
pub trait Standard {
    /// Map 64 random bits onto the type.
    fn sample(bits: u64) -> Self;
}

impl Standard for f64 {
    fn sample(bits: u64) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for u64 {
    fn sample(bits: u64) -> u64 {
        bits
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(bits: u64) -> $t {
                bits as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, usize, i8, i16, i32, i64);

/// Ranges that `gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draw one sample using the provided 64-bit source.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (next() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (next() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(next()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        lo + f64::sample(next()) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&y));
            let f = rng.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&f));
            let g: f64 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_is_biased() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
