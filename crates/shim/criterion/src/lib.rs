//! In-tree stand-in for the parts of `criterion` the workspace uses.
//!
//! Implements a small but real measuring harness: each `bench_function` is
//! warmed up, then timed over `sample_size` samples, and the median / min /
//! max per-iteration times are printed. Statistical analysis, HTML reports
//! and comparison against saved baselines are left to the real criterion,
//! which can be swapped in via the workspace manifest when registry access is
//! available.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 100,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, 100, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark one function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, f);
        self
    }

    /// Finish the group (printing is already done incrementally).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code to time.
pub struct Bencher {
    /// Iterations to run per sample (set by the harness).
    iters: u64,
    /// Measured time for the sample.
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it the number of iterations the harness requested.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    // Warm-up & calibration: find an iteration count that takes ≥ ~2 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "  {id}: median {} (min {}, max {}, {samples} samples x {iters} iters)",
        fmt_time(median),
        fmt_time(min),
        fmt_time(max)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collect benchmark functions into a runnable group (mirrors criterion).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point for a bench target built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards bencher-style flags; accept and ignore.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(5);
        let mut hits = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                hits += 1;
                hits
            })
        });
        group.finish();
        assert!(hits > 0);
    }
}
