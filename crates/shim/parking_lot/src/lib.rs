//! In-tree stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the API surface the workspace uses is provided: a [`Mutex`] whose
//! `lock` does not return a poison `Result`. Poisoned std locks are recovered
//! transparently, matching parking_lot's no-poisoning behaviour.

use std::sync::TryLockError;

/// A mutex with parking_lot's panic-safe, non-poisoning `lock` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
