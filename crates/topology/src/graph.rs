//! The physical network topology: switches, directed capacitated links and
//! the external (OBS) ports where traffic enters and leaves the network.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A physical switch in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// An external port of the one-big-switch (where hosts / neighbor networks
/// attach). The paper numbers these 1..6 in the running example.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PortId(pub usize);

/// A directed link between two switches.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Source switch.
    pub from: NodeId,
    /// Destination switch.
    pub to: NodeId,
    /// Capacity (in arbitrary bandwidth units, consistent with demands).
    pub capacity: f64,
}

/// A physical topology.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Topology {
    /// Human-readable name (e.g. "stanford-like").
    pub name: String,
    names: Vec<String>,
    links: Vec<Link>,
    adj: Vec<Vec<(NodeId, usize)>>,
    external_ports: BTreeMap<PortId, NodeId>,
    /// Dense mirror of `external_ports` for small port numbers: the data
    /// plane resolves a port's switch once or twice per packet, so that
    /// lookup should be an array load, not a tree walk. Ports at or above
    /// [`DENSE_PORT_LIMIT`] simply fall back to the map.
    port_cache: Vec<Option<NodeId>>,
}

/// Port numbers below this get a slot in the dense port-to-switch cache.
const DENSE_PORT_LIMIT: usize = 1 << 16;

impl Topology {
    /// An empty topology with a name.
    pub fn new(name: impl Into<String>) -> Self {
        Topology {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add a switch, returning its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.names.len());
        self.names.push(name.into());
        self.adj.push(Vec::new());
        id
    }

    /// Add a directed link.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, capacity: f64) {
        let idx = self.links.len();
        self.links.push(Link { from, to, capacity });
        self.adj[from.0].push((to, idx));
    }

    /// Add links in both directions with the same capacity.
    pub fn add_bidi_link(&mut self, a: NodeId, b: NodeId, capacity: f64) {
        self.add_link(a, b, capacity);
        self.add_link(b, a, capacity);
    }

    /// Attach an external (OBS) port to a switch.
    pub fn add_external_port(&mut self, port: PortId, node: NodeId) {
        self.external_ports.insert(port, node);
        if port.0 < DENSE_PORT_LIMIT {
            if self.port_cache.len() <= port.0 {
                self.port_cache.resize(port.0 + 1, None);
            }
            self.port_cache[port.0] = Some(node);
        }
    }

    /// Number of switches.
    pub fn num_nodes(&self) -> usize {
        self.names.len()
    }

    /// Number of directed links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len()).map(NodeId)
    }

    /// All directed links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The switch a given external port attaches to.
    #[inline]
    pub fn port_switch(&self, port: PortId) -> Option<NodeId> {
        if port.0 < DENSE_PORT_LIMIT {
            return self.port_cache.get(port.0).copied().flatten();
        }
        self.external_ports.get(&port).copied()
    }

    /// All external ports with their switches.
    pub fn external_ports(&self) -> impl Iterator<Item = (PortId, NodeId)> + '_ {
        self.external_ports.iter().map(|(p, n)| (*p, *n))
    }

    /// Number of external ports.
    pub fn num_external_ports(&self) -> usize {
        self.external_ports.len()
    }

    /// The name of a switch.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.names[node.0]
    }

    /// Look a switch up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.iter().position(|n| n == name).map(NodeId)
    }

    /// Out-neighbors of a switch (with the index of the connecting link).
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, usize)] {
        &self.adj[node.0]
    }

    /// Total degree (in + out) of a switch.
    pub fn degree(&self, node: NodeId) -> usize {
        let out = self.adj[node.0].len();
        let inc = self.links.iter().filter(|l| l.to == node).count();
        out + inc
    }

    /// Capacity of the directed link between two switches, if one exists.
    pub fn link_capacity(&self, from: NodeId, to: NodeId) -> Option<f64> {
        self.adj[from.0]
            .iter()
            .find(|(n, _)| *n == to)
            .map(|(_, idx)| self.links[*idx].capacity)
    }

    /// Is the topology (weakly) connected?
    pub fn is_connected(&self) -> bool {
        if self.num_nodes() == 0 {
            return true;
        }
        // Treat links as undirected for connectivity.
        let mut undirected: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); self.num_nodes()];
        for l in &self.links {
            undirected[l.from.0].insert(l.to.0);
            undirected[l.to.0].insert(l.from.0);
        }
        let mut seen = vec![false; self.num_nodes()];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = queue.pop_front() {
            for &m in &undirected[n] {
                if !seen[m] {
                    seen[m] = true;
                    count += 1;
                    queue.push_back(m);
                }
            }
        }
        count == self.num_nodes()
    }

    /// Shortest path (minimum hop count) between two switches, including both
    /// endpoints. Returns `None` when unreachable.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: Vec<Option<NodeId>> = vec![None; self.num_nodes()];
        let mut seen = vec![false; self.num_nodes()];
        let mut queue = VecDeque::from([from]);
        seen[from.0] = true;
        while let Some(n) = queue.pop_front() {
            for &(m, _) in &self.adj[n.0] {
                if !seen[m.0] {
                    seen[m.0] = true;
                    prev[m.0] = Some(n);
                    if m == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while let Some(p) = prev[cur.0] {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(m);
                }
            }
        }
        None
    }

    /// Shortest path that visits `waypoints` in order, starting at `from` and
    /// ending at `to`. Built by concatenating per-leg shortest paths.
    pub fn path_through(
        &self,
        from: NodeId,
        waypoints: &[NodeId],
        to: NodeId,
    ) -> Option<Vec<NodeId>> {
        let mut stops = Vec::with_capacity(waypoints.len() + 2);
        stops.push(from);
        stops.extend_from_slice(waypoints);
        stops.push(to);
        let mut path: Vec<NodeId> = vec![from];
        for pair in stops.windows(2) {
            let leg = self.shortest_path(pair[0], pair[1])?;
            path.extend_from_slice(&leg[1..]);
        }
        Some(path)
    }

    /// Hop distance between two switches (`None` when unreachable).
    pub fn distance(&self, from: NodeId, to: NodeId) -> Option<usize> {
        self.shortest_path(from, to).map(|p| p.len() - 1)
    }

    /// All-pairs hop distances from one source (BFS).
    pub fn distances_from(&self, from: NodeId) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.num_nodes()];
        dist[from.0] = Some(0);
        let mut queue = VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            let d = dist[n.0].unwrap();
            for &(m, _) in &self.adj[n.0] {
                if dist[m.0].is_none() {
                    dist[m.0] = Some(d + 1);
                    queue.push_back(m);
                }
            }
        }
        dist
    }

    /// The switches holding external ports (the "edge" switches).
    pub fn edge_switches(&self) -> BTreeSet<NodeId> {
        self.external_ports.values().copied().collect()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} switches, {} directed links, {} external ports",
            self.name,
            self.num_nodes(),
            self.num_links(),
            self.num_external_ports()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new("line");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_bidi_link(a, b, 10.0);
        t.add_bidi_link(b, c, 10.0);
        (t, a, b, c)
    }

    #[test]
    fn build_and_query() {
        let (t, a, b, c) = line3();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_links(), 4);
        assert_eq!(t.link_capacity(a, b), Some(10.0));
        assert_eq!(t.link_capacity(a, c), None);
        assert_eq!(t.node_by_name("b"), Some(b));
        assert_eq!(t.node_name(c), "c");
        assert_eq!(t.degree(b), 4);
        assert!(t.is_connected());
    }

    #[test]
    fn shortest_paths() {
        let (t, a, b, c) = line3();
        assert_eq!(t.shortest_path(a, c), Some(vec![a, b, c]));
        assert_eq!(t.distance(a, c), Some(2));
        assert_eq!(t.shortest_path(a, a), Some(vec![a]));
        assert_eq!(t.distance(a, a), Some(0));
        let d = t.distances_from(a);
        assert_eq!(d, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn unreachable_nodes() {
        let mut t = Topology::new("disconnected");
        let a = t.add_node("a");
        let b = t.add_node("b");
        assert!(!t.is_connected());
        assert_eq!(t.shortest_path(a, b), None);
        assert_eq!(t.distance(a, b), None);
    }

    #[test]
    fn path_through_waypoints() {
        let (t, a, b, c) = line3();
        let p = t.path_through(a, &[b], c).unwrap();
        assert_eq!(p, vec![a, b, c]);
        let p = t.path_through(a, &[c], a).unwrap();
        assert_eq!(p, vec![a, b, c, b, a]);
        // A waypoint equal to the source works.
        let p = t.path_through(a, &[a], c).unwrap();
        assert_eq!(p, vec![a, b, c]);
    }

    #[test]
    fn external_ports_and_edges() {
        let (mut t, a, _, c) = line3();
        t.add_external_port(PortId(1), a);
        t.add_external_port(PortId(2), c);
        assert_eq!(t.num_external_ports(), 2);
        assert_eq!(t.port_switch(PortId(1)), Some(a));
        assert_eq!(t.port_switch(PortId(7)), None);
        assert_eq!(t.edge_switches().len(), 2);
    }
}
