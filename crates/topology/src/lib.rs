//! # snap-topology
//!
//! Physical topologies, topology generators and traffic matrices for the
//! SNAP compiler evaluation.
//!
//! * [`Topology`] — switches, directed capacitated links, OBS external ports,
//!   shortest-path queries.
//! * [`generators`] — the Figure 2 campus topology, random enterprise/ISP-like
//!   topologies with the switch/edge counts of Table 5, and IGen-like
//!   topologies for the scaling experiment of Figure 10.
//! * [`TrafficMatrix`] — gravity-model traffic matrices (Roughan's model, as
//!   used in §6.2), uniform matrices and demand aggregation.
//!
//! ```
//! use snap_topology::{generators, TrafficMatrix};
//!
//! let topo = generators::campus();
//! let tm = TrafficMatrix::gravity(&topo, 1_000.0, 7);
//! assert_eq!(topo.num_external_ports(), 6);
//! assert_eq!(tm.num_demands(), 30);
//! ```

#![warn(missing_docs)]

pub mod generators;
pub mod graph;
pub mod traffic;

pub use generators::{campus, igen_topology, random_topology, RandomTopologySpec};
pub use graph::{Link, NodeId, PortId, Topology};
pub use traffic::TrafficMatrix;
