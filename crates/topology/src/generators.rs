//! Topology generators.
//!
//! The paper evaluates on three campus networks, four RocketFuel-inferred ISP
//! topologies (Table 5) and IGen-synthesized topologies of 10–180 switches
//! (Figure 10). Those datasets are not redistributable, so this module
//! generates *synthetic equivalents*: random connected graphs with the same
//! switch/edge counts, the same rule for choosing edge switches (the 70% of
//! switches with the lowest degree) and one external port per edge switch
//! (optionally more, to match the demand counts of Table 5).

use crate::graph::{NodeId, PortId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default capacity assigned to generated links.
pub const DEFAULT_CAPACITY: f64 = 1_000.0;

/// The fraction of switches (lowest degree first) designated as edge
/// switches, as in §6.2 of the paper.
pub const EDGE_SWITCH_FRACTION: f64 = 0.7;

/// The campus topology of Figure 2: two Internet gateways (I1, I2), four
/// department edge switches (D1–D4, with D4 the CS department) and six core
/// routers (C1–C6). External ports 1–6 attach to I1, I2, D1, D2, D3, D4 and
/// IP subnet `10.0.i.0/24` sits behind port `i`.
pub fn campus() -> Topology {
    let mut t = Topology::new("campus-fig2");
    let i1 = t.add_node("I1");
    let i2 = t.add_node("I2");
    let d1 = t.add_node("D1");
    let d2 = t.add_node("D2");
    let d3 = t.add_node("D3");
    let d4 = t.add_node("D4");
    let c1 = t.add_node("C1");
    let c2 = t.add_node("C2");
    let c3 = t.add_node("C3");
    let c4 = t.add_node("C4");
    let c5 = t.add_node("C5");
    let c6 = t.add_node("C6");

    // Edge switches attach to two core routers each; the core is a ring with
    // cross links, loosely following Figure 2.
    let cap = DEFAULT_CAPACITY;
    t.add_bidi_link(i1, c1, cap);
    t.add_bidi_link(i1, c3, cap);
    t.add_bidi_link(i2, c2, cap);
    t.add_bidi_link(i2, c4, cap);
    t.add_bidi_link(d1, c1, cap);
    t.add_bidi_link(d1, c3, cap);
    t.add_bidi_link(d2, c2, cap);
    t.add_bidi_link(d2, c4, cap);
    t.add_bidi_link(d3, c3, cap);
    t.add_bidi_link(d3, c5, cap);
    t.add_bidi_link(d4, c5, cap);
    t.add_bidi_link(d4, c6, cap);
    t.add_bidi_link(c1, c2, cap);
    t.add_bidi_link(c1, c5, cap);
    t.add_bidi_link(c2, c6, cap);
    t.add_bidi_link(c3, c4, cap);
    t.add_bidi_link(c3, c5, cap);
    t.add_bidi_link(c4, c6, cap);
    t.add_bidi_link(c5, c6, cap);

    for (i, node) in [i1, i2, d1, d2, d3, d4].into_iter().enumerate() {
        t.add_external_port(PortId(i + 1), node);
    }
    t
}

/// Parameters for the random (enterprise / ISP-like) generator.
#[derive(Clone, Debug)]
pub struct RandomTopologySpec {
    /// Topology name.
    pub name: String,
    /// Number of switches.
    pub switches: usize,
    /// Target number of *directed* links (the generator adds bidirectional
    /// links until this count is reached or the graph is complete).
    pub directed_links: usize,
    /// Number of external ports to spread across the edge switches; `None`
    /// means one port per edge switch.
    pub external_ports: Option<usize>,
    /// RNG seed (generation is deterministic given the spec).
    pub seed: u64,
}

/// Generate a random connected topology: a random spanning tree for
/// connectivity plus random extra links (preferring distinct pairs), then the
/// `EDGE_SWITCH_FRACTION` of switches with the lowest degree become edge
/// switches carrying the external ports.
pub fn random_topology(spec: &RandomTopologySpec) -> Topology {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut t = Topology::new(spec.name.clone());
    let n = spec.switches.max(2);
    for i in 0..n {
        t.add_node(format!("s{i}"));
    }
    let nodes: Vec<NodeId> = t.nodes().collect();

    // Random spanning tree: connect each node to a random earlier node.
    let mut have_link = std::collections::BTreeSet::new();
    for i in 1..n {
        let j = rng.gen_range(0..i);
        t.add_bidi_link(nodes[i], nodes[j], DEFAULT_CAPACITY);
        have_link.insert((i.min(j), i.max(j)));
    }

    // Extra links until the requested directed-link count is reached.
    let max_undirected = n * (n - 1) / 2;
    let target_undirected = (spec.directed_links / 2).clamp(n - 1, max_undirected);
    let mut guard = 0;
    while have_link.len() < target_undirected && guard < 100 * target_undirected {
        guard += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if have_link.insert(key) {
            t.add_bidi_link(nodes[a], nodes[b], DEFAULT_CAPACITY);
        }
    }

    attach_external_ports(&mut t, spec.external_ports, &mut rng);
    t
}

/// An IGen-like generator (used for the Figure 10 scaling experiment):
/// switches are placed uniformly at random in the unit square and connected
/// to their `k` nearest neighbors (plus a spanning tree for connectivity),
/// which yields the locality-driven meshes IGen produces with its network
/// design heuristics.
pub fn igen_topology(switches: usize, seed: u64) -> Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = switches.max(2);
    let mut t = Topology::new(format!("igen-{n}"));
    let mut coords = Vec::with_capacity(n);
    for i in 0..n {
        t.add_node(format!("s{i}"));
        coords.push((rng.gen::<f64>(), rng.gen::<f64>()));
    }
    let nodes: Vec<NodeId> = t.nodes().collect();
    let dist = |a: usize, b: usize| -> f64 {
        let dx = coords[a].0 - coords[b].0;
        let dy = coords[a].1 - coords[b].1;
        (dx * dx + dy * dy).sqrt()
    };

    let mut have_link = std::collections::BTreeSet::new();
    // k-nearest-neighbor links (k = 3, as a small-degree design heuristic).
    let k = 3.min(n - 1);
    for a in 0..n {
        let mut others: Vec<usize> = (0..n).filter(|&b| b != a).collect();
        others.sort_by(|&x, &y| dist(a, x).partial_cmp(&dist(a, y)).unwrap());
        for &b in others.iter().take(k) {
            let key = (a.min(b), a.max(b));
            if have_link.insert(key) {
                t.add_bidi_link(nodes[a], nodes[b], DEFAULT_CAPACITY);
            }
        }
    }
    // Spanning-tree pass to guarantee connectivity (connect each node to the
    // nearest node with a lower index).
    for a in 1..n {
        let b = (0..a)
            .min_by(|&x, &y| dist(a, x).partial_cmp(&dist(a, y)).unwrap())
            .unwrap();
        let key = (a.min(b), a.max(b));
        if have_link.insert(key) {
            t.add_bidi_link(nodes[a], nodes[b], DEFAULT_CAPACITY);
        }
    }

    attach_external_ports(&mut t, None, &mut rng);
    t
}

/// Choose the lowest-degree 70% of switches as edge switches and spread the
/// requested number of external ports over them round-robin.
fn attach_external_ports(t: &mut Topology, ports: Option<usize>, _rng: &mut StdRng) {
    let mut by_degree: Vec<NodeId> = t.nodes().collect();
    by_degree.sort_by_key(|&n| (t.degree(n), n.0));
    let edge_count = ((t.num_nodes() as f64) * EDGE_SWITCH_FRACTION).round() as usize;
    let edge_count = edge_count.clamp(1, t.num_nodes());
    let edges: Vec<NodeId> = by_degree.into_iter().take(edge_count).collect();
    let total_ports = ports.unwrap_or(edges.len());
    for p in 0..total_ports {
        t.add_external_port(PortId(p + 1), edges[p % edges.len()]);
    }
}

/// Named presets mirroring Table 5 of the paper (switch and edge counts; the
/// demand counts of the table correspond to `external_ports²`).
pub mod presets {
    use super::*;

    fn preset(
        name: &str,
        switches: usize,
        directed_links: usize,
        demands: usize,
        seed: u64,
    ) -> RandomTopologySpec {
        let ports = (demands as f64).sqrt().round() as usize;
        RandomTopologySpec {
            name: name.to_string(),
            switches,
            directed_links,
            external_ports: Some(ports),
            seed,
        }
    }

    /// Stanford-like campus backbone (26 switches, 92 edges, 20736 demands).
    pub fn stanford() -> RandomTopologySpec {
        preset("stanford-like", 26, 92, 20_736, 11)
    }
    /// Berkeley-like campus (25 switches, 96 edges, 34225 demands).
    pub fn berkeley() -> RandomTopologySpec {
        preset("berkeley-like", 25, 96, 34_225, 12)
    }
    /// Purdue-like campus (98 switches, 232 edges, 24336 demands).
    pub fn purdue() -> RandomTopologySpec {
        preset("purdue-like", 98, 232, 24_336, 13)
    }
    /// RocketFuel AS 1755-like ISP (87 switches, 322 edges, 3600 demands).
    pub fn as1755() -> RandomTopologySpec {
        preset("AS1755-like", 87, 322, 3_600, 14)
    }
    /// RocketFuel AS 1221-like ISP (104 switches, 302 edges, 5184 demands).
    pub fn as1221() -> RandomTopologySpec {
        preset("AS1221-like", 104, 302, 5_184, 15)
    }
    /// RocketFuel AS 6461-like ISP (138 switches, 744 edges, 9216 demands).
    pub fn as6461() -> RandomTopologySpec {
        preset("AS6461-like", 138, 744, 9_216, 16)
    }
    /// RocketFuel AS 3257-like ISP (161 switches, 656 edges, 12544 demands).
    pub fn as3257() -> RandomTopologySpec {
        preset("AS3257-like", 161, 656, 12_544, 17)
    }

    /// All Table 5 presets in the order of the table.
    pub fn table5() -> Vec<RandomTopologySpec> {
        vec![
            stanford(),
            berkeley(),
            purdue(),
            as1755(),
            as1221(),
            as6461(),
            as3257(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campus_matches_figure_2() {
        let t = campus();
        assert_eq!(t.num_nodes(), 12);
        assert_eq!(t.num_external_ports(), 6);
        assert!(t.is_connected());
        // Port 6 is the CS department behind D4.
        let d4 = t.node_by_name("D4").unwrap();
        assert_eq!(t.port_switch(PortId(6)), Some(d4));
        // All traffic from port 1 to port 6 can be routed.
        let i1 = t.node_by_name("I1").unwrap();
        assert!(t.shortest_path(i1, d4).is_some());
    }

    #[test]
    fn random_topology_respects_spec() {
        let spec = RandomTopologySpec {
            name: "test".into(),
            switches: 30,
            directed_links: 120,
            external_ports: None,
            seed: 42,
        };
        let t = random_topology(&spec);
        assert_eq!(t.num_nodes(), 30);
        assert!(t.is_connected());
        // Directed link count is close to the target (exactly, unless clamped).
        assert_eq!(t.num_links(), 120);
        // 70% of switches are edge switches, one port each.
        assert_eq!(t.num_external_ports(), 21);
    }

    #[test]
    fn random_topology_is_deterministic() {
        let spec = RandomTopologySpec {
            name: "det".into(),
            switches: 20,
            directed_links: 80,
            external_ports: Some(5),
            seed: 7,
        };
        let a = random_topology(&spec);
        let b = random_topology(&spec);
        assert_eq!(a.num_links(), b.num_links());
        let la: Vec<_> = a.links().iter().map(|l| (l.from, l.to)).collect();
        let lb: Vec<_> = b.links().iter().map(|l| (l.from, l.to)).collect();
        assert_eq!(la, lb);
        assert_eq!(a.num_external_ports(), 5);
    }

    #[test]
    fn igen_topologies_scale_and_stay_connected() {
        for n in [10, 50, 120] {
            let t = igen_topology(n, 3);
            assert_eq!(t.num_nodes(), n);
            assert!(t.is_connected(), "igen-{n} must be connected");
            assert!(t.num_external_ports() >= 1);
            // Edge switches are 70% of nodes.
            assert_eq!(t.num_external_ports(), ((n as f64) * 0.7).round() as usize);
        }
    }

    #[test]
    fn presets_match_table_5_counts() {
        let specs = presets::table5();
        assert_eq!(specs.len(), 7);
        let stanford = random_topology(&specs[0]);
        assert_eq!(stanford.num_nodes(), 26);
        assert_eq!(stanford.num_links(), 92);
        assert_eq!(stanford.num_external_ports(), 144); // 144² = 20736 demands
        let as3257 = random_topology(&specs[6]);
        assert_eq!(as3257.num_nodes(), 161);
        assert_eq!(as3257.num_links(), 656);
        assert!(as3257.is_connected());
    }

    #[test]
    fn tiny_topologies_do_not_panic() {
        let spec = RandomTopologySpec {
            name: "tiny".into(),
            switches: 2,
            directed_links: 2,
            external_ports: None,
            seed: 1,
        };
        let t = random_topology(&spec);
        assert!(t.is_connected());
        let t = igen_topology(2, 1);
        assert!(t.is_connected());
    }
}
