//! Traffic matrices.
//!
//! The paper synthesizes traffic matrices with a gravity model [Roughan,
//! CCR'05]: every external port gets an activity weight and the demand
//! between ports `u` and `v` is proportional to `w_u * w_v`. This module
//! implements that model plus a uniform matrix for tests.

use crate::graph::{PortId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A traffic matrix: expected demand between every ordered pair of distinct
/// external ports.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    demands: BTreeMap<(PortId, PortId), f64>,
}

impl TrafficMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        TrafficMatrix::default()
    }

    /// Set the demand from `u` to `v`.
    pub fn set(&mut self, u: PortId, v: PortId, demand: f64) {
        self.demands.insert((u, v), demand);
    }

    /// The demand from `u` to `v` (0 when unset).
    pub fn get(&self, u: PortId, v: PortId) -> f64 {
        self.demands.get(&(u, v)).copied().unwrap_or(0.0)
    }

    /// Iterate over `(u, v, demand)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (PortId, PortId, f64)> + '_ {
        self.demands.iter().map(|(&(u, v), &d)| (u, v, d))
    }

    /// Number of entries (distinct ordered port pairs).
    pub fn num_demands(&self) -> usize {
        self.demands.len()
    }

    /// Sum of all demands.
    pub fn total(&self) -> f64 {
        self.demands.values().sum()
    }

    /// A gravity-model matrix over the external ports of a topology.
    ///
    /// Port weights are drawn uniformly from `(0.5, 1.5)` so that ports differ
    /// but none dominates; the matrix is scaled so that the total demand is
    /// `total_volume`.
    pub fn gravity(topology: &Topology, total_volume: f64, seed: u64) -> TrafficMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let ports: Vec<PortId> = topology.external_ports().map(|(p, _)| p).collect();
        let weights: Vec<f64> = ports.iter().map(|_| rng.gen_range(0.5..1.5)).collect();
        let mut tm = TrafficMatrix::new();
        if ports.len() < 2 {
            return tm;
        }
        let mut raw_total = 0.0;
        for i in 0..ports.len() {
            for j in 0..ports.len() {
                if i == j {
                    continue;
                }
                raw_total += weights[i] * weights[j];
            }
        }
        for (i, &u) in ports.iter().enumerate() {
            for (j, &v) in ports.iter().enumerate() {
                if i == j {
                    continue;
                }
                let d = total_volume * weights[i] * weights[j] / raw_total;
                tm.set(u, v, d);
            }
        }
        tm
    }

    /// A uniform matrix: the same demand between every ordered pair of ports.
    pub fn uniform(topology: &Topology, per_pair: f64) -> TrafficMatrix {
        let ports: Vec<PortId> = topology.external_ports().map(|(p, _)| p).collect();
        let mut tm = TrafficMatrix::new();
        for &u in &ports {
            for &v in &ports {
                if u != v {
                    tm.set(u, v, per_pair);
                }
            }
        }
        tm
    }

    /// Aggregate a matrix onto a smaller set of ports by summing demands whose
    /// endpoints map to the same representative (used to keep the exact MILP
    /// tractable on large topologies: one representative port per edge switch).
    pub fn aggregate(&self, map: &BTreeMap<PortId, PortId>) -> TrafficMatrix {
        let mut tm = TrafficMatrix::new();
        for (&(u, v), &d) in &self.demands {
            let nu = map.get(&u).copied().unwrap_or(u);
            let nv = map.get(&v).copied().unwrap_or(v);
            if nu != nv {
                let entry = tm.demands.entry((nu, nv)).or_insert(0.0);
                *entry += d;
            }
        }
        tm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::campus;

    #[test]
    fn gravity_matrix_covers_all_pairs_and_scales() {
        let t = campus();
        let tm = TrafficMatrix::gravity(&t, 600.0, 1);
        assert_eq!(tm.num_demands(), 6 * 5);
        assert!((tm.total() - 600.0).abs() < 1e-6);
        for (_, _, d) in tm.iter() {
            assert!(d > 0.0);
        }
    }

    #[test]
    fn gravity_is_deterministic_per_seed() {
        let t = campus();
        let a = TrafficMatrix::gravity(&t, 100.0, 5);
        let b = TrafficMatrix::gravity(&t, 100.0, 5);
        assert_eq!(a, b);
        let c = TrafficMatrix::gravity(&t, 100.0, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_matrix() {
        let t = campus();
        let tm = TrafficMatrix::uniform(&t, 2.0);
        assert_eq!(tm.num_demands(), 30);
        assert_eq!(tm.get(PortId(1), PortId(6)), 2.0);
        assert_eq!(tm.get(PortId(1), PortId(1)), 0.0);
        assert!((tm.total() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn aggregation_sums_demands() {
        let mut tm = TrafficMatrix::new();
        tm.set(PortId(1), PortId(3), 1.0);
        tm.set(PortId(2), PortId(3), 2.0);
        tm.set(PortId(3), PortId(1), 4.0);
        // Map port 2 onto port 1.
        let map: BTreeMap<PortId, PortId> = [(PortId(2), PortId(1))].into_iter().collect();
        let agg = tm.aggregate(&map);
        assert_eq!(agg.get(PortId(1), PortId(3)), 3.0);
        assert_eq!(agg.get(PortId(3), PortId(1)), 4.0);
        assert_eq!(agg.num_demands(), 2);
    }

    #[test]
    fn gravity_with_too_few_ports_is_empty() {
        let mut t = Topology::new("one-port");
        let a = t.add_node("a");
        t.add_external_port(PortId(1), a);
        let tm = TrafficMatrix::gravity(&t, 10.0, 1);
        assert_eq!(tm.num_demands(), 0);
    }

    use crate::graph::Topology;
}
