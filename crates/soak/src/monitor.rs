//! Interval statistics and the continuous invariant monitors.
//!
//! Every sampling interval the monitor thread turns one
//! [`SnapshotDelta`] into an [`IntervalStats`] record (the rate
//! time-series of `BENCH_soak.json`) and evaluates the live-telemetry
//! invariants against the interval's snapshot:
//!
//! * **epoch purity** — no sampled packet trace mixes two epochs: every
//!   hop of a trace executed under the trace's ingress epoch;
//! * **per-port FIFO** — the monitor is the sole drainer of the egress
//!   queues, and each port's drained sequence numbers must continue
//!   exactly where the previous drain stopped (seqs are assigned under
//!   the queue lock only on successful enqueue, so gaps or reordering
//!   mean the queue broke);
//! * **bounded memory** — the trace ring and the event log never exceed
//!   their capacity, no egress queue reports a depth past its bound, no
//!   commit event retains more than
//!   [`AgentTimings::SUMMARY_THRESHOLD`] per-agent timing entries (the
//!   O(1)-per-event guarantee that keeps the log flat at a thousand
//!   agents), and the `pool.live_nodes` / `pool.distribution_nodes`
//!   gauges stay under the configured ceilings;
//! * **exact state** (quiesce points only — see the crate docs for the
//!   exactness caveat) — the aggregated `count[inport]` totals equal the
//!   independently folded per-port injection ledger.
//!
//! A violation is recorded as a structured [`Violation`] with the
//! interval's full snapshot attached (JSON), bounded to the first
//! [`MAX_RETAINED_VIOLATIONS`] so a pathological run cannot OOM the
//! monitor itself.

use snap_distrib::DistNetwork;
use snap_lang::Value;
use snap_telemetry::{AgentTimings, CommitEvent, MetricsSnapshot, SnapshotDelta};
use snap_topology::PortId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One interval of the soak's rate time-series, derived from a
/// [`SnapshotDelta`].
#[derive(Clone, Debug)]
pub struct IntervalStats {
    /// Zero-based interval index.
    pub index: usize,
    /// Seconds since the soak's traffic started, at the interval's end.
    pub at_secs: f64,
    /// The interval's measured length in seconds.
    pub elapsed_secs: f64,
    /// Packets admitted at ingress per second.
    pub pkts_per_s: f64,
    /// Egress deliveries per second.
    pub deliveries_per_s: f64,
    /// State actions applied per second (summed over switches).
    pub state_writes_per_s: f64,
    /// Two-phase commits that landed during the interval.
    pub commits: u64,
    /// Commits aborted during the interval.
    pub aborts: u64,
    /// Slowest prepare phase that landed during the interval (µs, 0 when
    /// no prepare finished).
    pub prepare_us_max: u64,
    /// Slowest commit phase that landed during the interval (µs).
    pub commit_us_max: u64,
    /// Slowest single agent ack across the interval's commit events (µs)
    /// — the straggler the fan-out waited on.
    pub slowest_ack_us: u64,
    /// Shard contention ratio: contended / total shard-lock acquisitions
    /// over the interval (0 when no locks were taken).
    pub contention: f64,
    /// High-water egress queue depth across all ports, as exported at
    /// snapshot time.
    pub queue_depth_max: u64,
    /// Egress backpressure tail-drops during the interval.
    pub tail_drops: u64,
    /// Driver errors during the interval (must stay 0 in a clean soak).
    pub errors: u64,
    /// `pool.live_nodes` at the interval's end.
    pub pool_live_nodes: i64,
    /// `pool.distribution_nodes` at the interval's end.
    pub pool_distribution_nodes: i64,
    /// Max committed epoch across agents at the interval's end.
    pub epoch: i64,
    /// Epoch spread across agents (nonzero only mid-commit).
    pub epoch_skew: i64,
}

impl IntervalStats {
    /// Derive one interval record from a snapshot delta plus the newer
    /// snapshot it was computed from (`snap` supplies the point-in-time
    /// readings — queue depths — that a counter-style diff would hide).
    pub fn from_delta(
        index: usize,
        at_secs: f64,
        d: &SnapshotDelta,
        snap: &MetricsSnapshot,
    ) -> IntervalStats {
        let mut queue_depth_max = 0u64;
        for (name, rows) in &snap.families {
            if name.starts_with("egress.") && name.ends_with(".depth") {
                queue_depth_max =
                    queue_depth_max.max(rows.iter().map(|(_, v)| *v).max().unwrap_or(0));
            }
        }
        let mut tail_drops = 0u64;
        for (name, rows) in &d.families {
            if name.starts_with("egress.") && name.ends_with(".dropped") {
                tail_drops += rows.iter().map(|(_, v)| v).sum::<u64>();
            }
        }
        let mut prepare_us_max = 0u64;
        let mut commit_us_max = 0u64;
        let mut slowest_ack_us = 0u64;
        for rec in &d.events {
            match &rec.event {
                CommitEvent::Prepare {
                    micros, per_agent, ..
                } => {
                    prepare_us_max = prepare_us_max.max(*micros);
                    slowest_ack_us = slowest_ack_us.max(per_agent.max_us());
                }
                CommitEvent::Commit {
                    micros, per_agent, ..
                } => {
                    commit_us_max = commit_us_max.max(*micros);
                    slowest_ack_us = slowest_ack_us.max(per_agent.max_us());
                }
                _ => {}
            }
        }
        IntervalStats {
            index,
            at_secs,
            elapsed_secs: d.secs(),
            pkts_per_s: d.rate("driver.packets"),
            deliveries_per_s: d.rate("driver.deliveries"),
            state_writes_per_s: d.family_rate("switch.state_writes"),
            commits: d
                .events
                .iter()
                .filter(|e| matches!(e.event, CommitEvent::Commit { .. }))
                .count() as u64,
            aborts: d
                .events
                .iter()
                .filter(|e| matches!(e.event, CommitEvent::Abort { .. }))
                .count() as u64,
            prepare_us_max,
            commit_us_max,
            slowest_ack_us,
            contention: d.family_ratio("store.shard.contended", "store.shard.acquisitions"),
            queue_depth_max,
            tail_drops,
            errors: d.counter("driver.errors"),
            pool_live_nodes: d.gauge("pool.live_nodes"),
            pool_distribution_nodes: d.gauge("pool.distribution_nodes"),
            epoch: d.gauge("network.epoch"),
            epoch_skew: d.gauge("network.epoch_skew"),
        }
    }

    /// One human-readable line per interval — rates, contention, depth —
    /// shared by `examples/telemetry_tour.rs` and the soak's progress
    /// output.
    pub fn render_line(&self) -> String {
        format!(
            "[{:>3}] t={:>6.1}s {:>9.0} pkt/s {:>9.0} deliv/s {:>9.0} writes/s  commits={:<2} contention={:.3} depth_max={:<5} drops={:<4} epoch={}",
            self.index,
            self.at_secs,
            self.pkts_per_s,
            self.deliveries_per_s,
            self.state_writes_per_s,
            self.commits,
            self.contention,
            self.queue_depth_max,
            self.tail_drops,
            self.epoch,
        )
    }
}

/// One invariant violation, with the interval's snapshot attached.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The interval the violation was observed in (`usize::MAX` for the
    /// final post-quiesce check).
    pub interval: usize,
    /// Which monitor fired: `epoch-purity`, `fifo`, `bounded-memory`,
    /// `exact-state` or `worker-errors`.
    pub monitor: &'static str,
    /// What exactly was violated.
    pub detail: String,
    /// The interval's full metrics snapshot, rendered as JSON at the
    /// moment the violation was recorded.
    pub snapshot_json: String,
}

/// Violations retained with full detail; further ones only count.
pub const MAX_RETAINED_VIOLATIONS: usize = 16;

/// The per-port injection ledger the exact-state monitor folds against:
/// one atomic cell per external port, incremented by traffic workers for
/// every packet that completed processing.
pub struct Ledger {
    counts: Vec<AtomicU64>,
}

impl Ledger {
    /// A ledger for ports `1..=max_port`.
    pub fn new(max_port: usize) -> Ledger {
        Ledger {
            counts: (0..=max_port).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Count one processed packet that entered at `port`.
    pub fn bump(&self, port: PortId) {
        if let Some(cell) = self.counts.get(port.0) {
            cell.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The ledger's reading for a port.
    pub fn get(&self, port: PortId) -> u64 {
        self.counts
            .get(port.0)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Total packets across all ports.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Ports with a nonzero count.
    pub fn active_ports(&self) -> Vec<PortId> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.load(Ordering::Relaxed) > 0)
            .map(|(i, _)| PortId(i))
            .collect()
    }
}

/// Ceilings for the bounded-memory monitor.
#[derive(Clone, Copy, Debug)]
pub struct MemoryBounds {
    /// Trace-ring capacity (traces in a snapshot must not exceed it).
    pub trace_capacity: usize,
    /// Event-log capacity.
    pub event_capacity: usize,
    /// Per-port egress queue capacity.
    pub queue_capacity: usize,
    /// Ceiling for the `pool.live_nodes` gauge.
    pub max_session_pool_nodes: i64,
    /// Ceiling for the `pool.distribution_nodes` gauge.
    pub max_distribution_nodes: i64,
}

/// The stateful monitor set: FIFO cursors per port, violation retention.
pub struct Monitors {
    bounds: MemoryBounds,
    fifo_next: BTreeMap<PortId, u64>,
    /// Retained violations (first [`MAX_RETAINED_VIOLATIONS`]).
    pub violations: Vec<Violation>,
    /// Total violations observed, including unretained ones.
    pub total: u64,
}

impl Monitors {
    /// A fresh monitor set with the given memory ceilings.
    pub fn new(bounds: MemoryBounds) -> Monitors {
        Monitors {
            bounds,
            fifo_next: BTreeMap::new(),
            violations: Vec::new(),
            total: 0,
        }
    }

    /// Record one violation (bounded retention).
    pub fn record(
        &mut self,
        interval: usize,
        monitor: &'static str,
        detail: String,
        snap: &MetricsSnapshot,
    ) {
        self.total += 1;
        if self.violations.len() < MAX_RETAINED_VIOLATIONS {
            self.violations.push(Violation {
                interval,
                monitor,
                detail,
                snapshot_json: snap.to_json(),
            });
        }
    }

    /// Epoch purity: every hop of every sampled trace in the snapshot
    /// executed under the trace's ingress epoch.
    pub fn check_epoch_purity(&mut self, interval: usize, snap: &MetricsSnapshot) {
        let mut impure = Vec::new();
        for trace in &snap.traces {
            if let Some(hop) = trace.hops.iter().find(|h| h.epoch != trace.ingress_epoch) {
                impure.push(format!(
                    "trace in@port{} stamped epoch {} but hop at {} ran epoch {}",
                    trace.inport, trace.ingress_epoch, hop.switch_name, hop.epoch
                ));
            }
        }
        if !impure.is_empty() {
            self.record(interval, "epoch-purity", impure.join("; "), snap);
        }
    }

    /// Per-port FIFO: drain every external port and verify the sequence
    /// numbers continue consecutively from the previous drain. The
    /// monitor must be the only drainer for this to be sound.
    pub fn check_fifo(&mut self, interval: usize, network: &DistNetwork, snap: &MetricsSnapshot) {
        let ports: Vec<PortId> = network
            .topology()
            .external_ports()
            .map(|(p, _)| p)
            .collect();
        for port in ports {
            for event in network.drain_port(port) {
                let expected = *self.fifo_next.entry(port).or_insert(event.seq);
                if event.seq != expected {
                    self.record(
                        interval,
                        "fifo",
                        format!(
                            "port{} expected seq {} but drained {} (gap or reorder)",
                            port.0, expected, event.seq
                        ),
                        snap,
                    );
                }
                // Advance (and resynchronize after a gap) so one gap is
                // one violation, not one per subsequent event.
                self.fifo_next.insert(port, event.seq + 1);
            }
        }
    }

    /// Bounded memory: trace ring, event log, egress depths and the two
    /// pool gauges all under their ceilings.
    pub fn check_bounded_memory(&mut self, interval: usize, snap: &MetricsSnapshot) {
        let b = self.bounds;
        if snap.traces.len() > b.trace_capacity {
            self.record(
                interval,
                "bounded-memory",
                format!(
                    "trace ring holds {} traces, capacity {}",
                    snap.traces.len(),
                    b.trace_capacity
                ),
                snap,
            );
        }
        if snap.events.len() > b.event_capacity {
            self.record(
                interval,
                "bounded-memory",
                format!(
                    "event log holds {} records, capacity {}",
                    snap.events.len(),
                    b.event_capacity
                ),
                snap,
            );
        }
        let mut depth_excess = Vec::new();
        for (name, rows) in &snap.families {
            if name.starts_with("egress.") && name.ends_with(".depth") {
                for (label, depth) in rows {
                    if *depth > b.queue_capacity as u64 {
                        depth_excess.push(format!("{name}[{label}] = {depth}"));
                    }
                }
            }
        }
        if !depth_excess.is_empty() {
            self.record(
                interval,
                "bounded-memory",
                format!(
                    "egress depth past capacity {}: {}",
                    b.queue_capacity,
                    depth_excess.join(", ")
                ),
                snap,
            );
        }
        // Commit events must stay O(1) regardless of fleet size: above
        // `AgentTimings::SUMMARY_THRESHOLD` agents the controller is
        // required to summarize per-agent timings, so no retained event
        // may store more per-agent entries than the threshold.
        let mut oversized = Vec::new();
        for rec in &snap.events {
            let per_agent = match &rec.event {
                CommitEvent::Prepare { per_agent, .. } | CommitEvent::Commit { per_agent, .. } => {
                    per_agent
                }
                _ => continue,
            };
            if per_agent.stored_entries() > AgentTimings::SUMMARY_THRESHOLD {
                oversized.push(format!(
                    "event #{} (epoch {}) stores {} per-agent entries",
                    rec.seq,
                    rec.event.epoch(),
                    per_agent.stored_entries()
                ));
            }
        }
        if !oversized.is_empty() {
            self.record(
                interval,
                "bounded-memory",
                format!(
                    "commit events exceed the {}-entry timing bound: {}",
                    AgentTimings::SUMMARY_THRESHOLD,
                    oversized.join(", ")
                ),
                snap,
            );
        }
        for (gauge, ceiling) in [
            ("pool.live_nodes", b.max_session_pool_nodes),
            ("pool.distribution_nodes", b.max_distribution_nodes),
        ] {
            let v = snap.gauges.get(gauge).copied().unwrap_or(0);
            if v > ceiling {
                self.record(
                    interval,
                    "bounded-memory",
                    format!("{gauge} = {v} exceeds ceiling {ceiling}"),
                    snap,
                );
            }
        }
    }

    /// Exact state: fold `count[inport]` out of the aggregated store and
    /// compare against the injection ledger, port by port. **Only valid
    /// at a quiesce point** — see the crate docs; calling this while
    /// workers are mid-batch reports spurious mismatches.
    pub fn check_exact_state(
        &mut self,
        interval: usize,
        network: &DistNetwork,
        ledger: &Ledger,
        snap: &MetricsSnapshot,
    ) {
        let store = network.aggregate_store();
        let var = "count".into();
        let mut mismatches = Vec::new();
        for port in ledger.active_ports() {
            let expected = ledger.get(port);
            let got = store.get(&var, &[Value::Int(port.0 as i64)]);
            if got != Value::Int(expected as i64) {
                mismatches.push(format!(
                    "count[{}]: store {:?} != ledger {}",
                    port.0, got, expected
                ));
            }
        }
        if !mismatches.is_empty() {
            let shown = mismatches.len().min(8);
            self.record(
                interval,
                "exact-state",
                format!(
                    "{} port totals diverged (showing {}): {}",
                    mismatches.len(),
                    shown,
                    mismatches[..shown].join("; ")
                ),
                snap,
            );
        }
    }
}
