//! The soak's trajectory artifact: `BENCH_soak.json`.
//!
//! One soak run produces one [`SoakOutcome`]; [`SoakOutcome::to_json`]
//! renders it as the machine-readable artifact CI uploads and
//! EXPERIMENTS.md § Soak explains how to read — a per-interval rate
//! time-series, min/median/max rate summaries, percentile histograms
//! from the final (quiesced, hence exact) snapshot, the violation list
//! and a pass/fail verdict. JSON is hand-rolled like the telemetry
//! crate's exporter: the workspace has no serde_json.

use crate::monitor::{IntervalStats, Violation};
use crate::SoakConfig;
use snap_telemetry::MetricsSnapshot;
use std::fmt::Write as _;
use std::time::Duration;

/// Everything one soak run produced.
pub struct SoakOutcome {
    /// The configuration the run executed.
    pub config: SoakConfig,
    /// The per-interval rate time-series, in order.
    pub intervals: Vec<IntervalStats>,
    /// Retained violations (first few, with snapshots attached).
    pub violations: Vec<Violation>,
    /// Total violations, including unretained ones.
    pub total_violations: u64,
    /// Policy-churn commits that landed while traffic was flowing.
    pub commits: u64,
    /// Churn commits that aborted.
    pub aborts: u64,
    /// Packets that failed processing (driver or injection errors).
    pub worker_errors: u64,
    /// A few representative error strings (bounded).
    pub error_samples: Vec<String>,
    /// Packets processed across all workers.
    pub packets: u64,
    /// Egress deliveries across all workers.
    pub deliveries: u64,
    /// The final post-quiesce snapshot (exact: all writers joined).
    pub final_snapshot: MetricsSnapshot,
    /// Wall-clock length of the traffic phase.
    pub elapsed: Duration,
}

/// min/median/max of one interval rate series.
#[derive(Clone, Copy, Debug, Default)]
pub struct RateSummary {
    /// Smallest interval value.
    pub min: f64,
    /// Median interval value.
    pub median: f64,
    /// Largest interval value.
    pub max: f64,
}

impl RateSummary {
    /// Summarize a series (all zeros when empty).
    pub fn of(values: impl Iterator<Item = f64>) -> RateSummary {
        let mut v: Vec<f64> = values.filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return RateSummary::default();
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        RateSummary {
            min: v[0],
            median: v[v.len() / 2],
            max: v[v.len() - 1],
        }
    }
}

impl SoakOutcome {
    /// Did the run meet every acceptance condition: zero violations, zero
    /// errors, zero aborts, and at least the configured commit and
    /// interval counts?
    pub fn passed(&self) -> bool {
        self.total_violations == 0
            && self.worker_errors == 0
            && self.aborts == 0
            && self.commits >= self.config.min_commits
            && self.intervals.len() >= self.config.min_intervals
    }

    /// `"pass"` or `"fail"` — the machine-readable verdict.
    pub fn verdict(&self) -> &'static str {
        if self.passed() {
            "pass"
        } else {
            "fail"
        }
    }

    /// Rate summary over the interval series for a field selector.
    pub fn rate_summary(&self, f: impl Fn(&IntervalStats) -> f64) -> RateSummary {
        RateSummary::of(self.intervals.iter().map(f))
    }

    /// The `BENCH_soak.json` artifact.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let mut out = String::with_capacity(16 * 1024);
        out.push_str("{\n  \"config\": {");
        let _ = write!(
            out,
            "\"topology\": \"igen-{}\", \"transport\": \"{}\", \"seed\": {}, \"workers\": {}, \"batch_size\": {}, \
             \"duration_s\": {:.3}, \"interval_s\": {:.3}, \"churn_period_s\": {:.3}, \
             \"quiesce_every\": {}, \"queue_capacity\": {}, \"egress_ports\": {}, \
             \"min_commits\": {}, \"min_intervals\": {}",
            c.switches,
            c.transport.label(),
            c.seed,
            c.workers,
            c.batch_size,
            c.duration.as_secs_f64(),
            c.interval.as_secs_f64(),
            c.churn_period.as_secs_f64(),
            c.quiesce_every,
            c.queue_capacity,
            c.egress_ports,
            c.min_commits,
            c.min_intervals,
        );
        out.push_str("},\n  \"intervals\": [");
        for (i, s) in self.intervals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"index\": {}, \"at_s\": {:.3}, \"elapsed_s\": {:.3}, \
                 \"pkts_per_s\": {:.1}, \"deliveries_per_s\": {:.1}, \"state_writes_per_s\": {:.1}, \
                 \"commits\": {}, \"aborts\": {}, \"prepare_us_max\": {}, \
                 \"commit_us_max\": {}, \"slowest_ack_us\": {}, \"contention\": {:.4}, \
                 \"queue_depth_max\": {}, \"tail_drops\": {}, \"errors\": {}, \
                 \"pool_live_nodes\": {}, \"pool_distribution_nodes\": {}, \
                 \"epoch\": {}, \"epoch_skew\": {}}}",
                s.index,
                s.at_secs,
                s.elapsed_secs,
                s.pkts_per_s,
                s.deliveries_per_s,
                s.state_writes_per_s,
                s.commits,
                s.aborts,
                s.prepare_us_max,
                s.commit_us_max,
                s.slowest_ack_us,
                s.contention,
                s.queue_depth_max,
                s.tail_drops,
                s.errors,
                s.pool_live_nodes,
                s.pool_distribution_nodes,
                s.epoch,
                s.epoch_skew,
            );
        }
        out.push_str("\n  ],\n  \"rates\": {");
        for (i, (name, summary)) in [
            ("pkts_per_s", self.rate_summary(|s| s.pkts_per_s)),
            (
                "deliveries_per_s",
                self.rate_summary(|s| s.deliveries_per_s),
            ),
            (
                "state_writes_per_s",
                self.rate_summary(|s| s.state_writes_per_s),
            ),
            ("contention", self.rate_summary(|s| s.contention)),
            (
                "commit_us_max",
                self.rate_summary(|s| s.commit_us_max as f64),
            ),
            (
                "queue_depth_max",
                self.rate_summary(|s| s.queue_depth_max as f64),
            ),
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{name}\": {{\"min\": {:.2}, \"median\": {:.2}, \"max\": {:.2}}}",
                summary.min, summary.median, summary.max
            );
        }
        out.push_str("},\n  \"histograms\": {");
        let mut first = true;
        for name in [
            "driver.batch_ns",
            "packet.delivery_hops",
            "commit.prepare_us",
            "commit.commit_us",
            "commit.prepare_ack_us",
            "commit.commit_ack_us",
        ] {
            let Some(h) = self.final_snapshot.histograms.get(name) else {
                continue;
            };
            if !first {
                out.push_str(", ");
            }
            first = false;
            let (p50, p90, p99) = h.percentiles();
            let _ = write!(
                out,
                "\"{name}\": {{\"count\": {}, \"mean\": {:.1}, \"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1}, \"max\": {}}}",
                h.count,
                h.mean(),
                p50,
                p90,
                p99,
                h.max
            );
        }
        out.push_str("},\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"interval\": {}, \"monitor\": \"{}\", \"detail\": \"{}\"}}",
                v.interval,
                v.monitor,
                escape(&v.detail)
            );
        }
        let _ = write!(
            out,
            "\n  ],\n  \"violation_count\": {},\n  \"commits\": {},\n  \"aborts\": {},\n  \
             \"worker_errors\": {},\n  \"packets\": {},\n  \"deliveries\": {},\n  \
             \"elapsed_s\": {:.3},\n  \"verdict\": \"{}\"\n}}\n",
            self.total_violations,
            self.commits,
            self.aborts,
            self.worker_errors,
            self.packets,
            self.deliveries,
            self.elapsed.as_secs_f64(),
            self.verdict()
        );
        out
    }

    /// A terse multi-line human summary for run logs.
    pub fn summary(&self) -> String {
        let pkts = self.rate_summary(|s| s.pkts_per_s);
        format!(
            "soak {}: {} packets, {} deliveries over {:.1}s in {} intervals\n  \
             rates: {:.0}/{:.0}/{:.0} pkt/s (min/median/max)\n  \
             churn: {} commits, {} aborts; errors: {}; violations: {}",
            self.verdict(),
            self.packets,
            self.deliveries,
            self.elapsed.as_secs_f64(),
            self.intervals.len(),
            pkts.min,
            pkts.median,
            pkts.max,
            self.commits,
            self.aborts,
            self.worker_errors,
            self.total_violations,
        )
    }
}

/// Minimal JSON string escaping (the telemetry crate's helper is private).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
