//! # snap-soak
//!
//! The standing stress rig: an ISP-scale [`igen_topology`] network driven
//! by gravity-model traffic workers **concurrently** with continuous
//! policy churn (recompile through the `CompilerSession`, distribute as
//! two-phase epoch commits through the `Controller`), while a monitor
//! thread samples `Telemetry::snapshot()` on a fixed interval and turns
//! the stream into a rate time-series plus continuous invariant checks.
//! One run produces one [`SoakOutcome`] — the `BENCH_soak.json`
//! trajectory artifact — so a leak, a contention regression or an
//! epoch-purity violation that only appears 40 seconds into sustained
//! churn becomes a diff between two PRs' artifacts, not archaeology.
//!
//! ## The exactness caveat
//!
//! Hot-path metrics are **sharded, sum-only-on-read** (see the
//! `snap-telemetry` crate docs): a snapshot taken while traffic workers
//! are running includes every write that happened-before the read and may
//! miss in-flight ones. Interval rates and the epoch-purity / FIFO /
//! bounded-memory monitors are therefore evaluated against *live*
//! telemetry and tolerate that slack by construction (they check
//! structural properties, not totals). The **exact-state monitor is
//! different**: it compares aggregated state-store totals against an
//! independently folded ledger, and totals are exact **only at quiesce**.
//! The rig provides quiesce points — a pause gate all traffic workers and
//! the churn thread check between batches/commits — and the exact-state
//! monitor runs *only* there (every [`SoakConfig::quiesce_every`]-th
//! interval, and once more after all writers have joined at run end).
//! Any monitor added here that needs exact totals must do the same.
//!
//! ## What runs where
//!
//! * N **traffic workers** sample `(src, dst)` external-port pairs from
//!   the topology's gravity traffic matrix and inject batches through
//!   [`DistNetwork::inject_batch`], counting every processed packet into
//!   a per-port [`Ledger`].
//! * One **churn thread** owns the [`Controller`](snap_distrib::Controller)
//!   and cycles a small set
//!   of threshold-variant policies (detection-only, placement-stable —
//!   so churn exercises recompile + 2PC + delta shipping without
//!   migration windows or policy drops that would break the ledger
//!   fold).
//! * The **monitor** samples [`DistNetwork::metrics_snapshot`] every
//!   [`SoakConfig::interval`], computes `MetricsSnapshot::delta`, keeps
//!   the [`IntervalStats`] series, runs the invariant monitors, and is
//!   the sole drainer of the egress queues (which is what makes the
//!   per-port FIFO check sound).

#![warn(missing_docs)]

pub mod monitor;
pub mod report;

pub use monitor::{
    IntervalStats, Ledger, MemoryBounds, Monitors, Violation, MAX_RETAINED_VIOLATIONS,
};
pub use report::{RateSummary, SoakOutcome};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snap_apps as apps;
use snap_core::SolverChoice;
use snap_distrib::{
    deploy_in_process_custom, deploy_tcp, DeployOptions, DistNetwork, DistribOptions,
};
use snap_lang::{Field, Packet, Policy, Value};
use snap_session::CompilerSession;
use snap_topology::generators::igen_topology;
use snap_topology::{PortId, Topology, TrafficMatrix};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Which controller↔agent transport the rig deploys over. Both run the
/// identical protocol; TCP adds real framing, socket buffering and reader
/// threads to the soak's failure surface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// In-process bounded channels (the default; fastest, no sockets).
    InProcess,
    /// Length-prefixed TCP over loopback, one connection per agent.
    Tcp,
}

impl Transport {
    /// Read the `SNAP_SOAK_TRANSPORT` override: `tcp` selects
    /// [`Transport::Tcp`], anything else (or unset) the in-process
    /// channels. Presets call this so CI can sweep both backends without
    /// code changes.
    pub fn from_env() -> Transport {
        match std::env::var("SNAP_SOAK_TRANSPORT") {
            Ok(v) if v.eq_ignore_ascii_case("tcp") => Transport::Tcp,
            _ => Transport::InProcess,
        }
    }

    /// The artifact label (`"in-process"` / `"tcp"`).
    pub fn label(&self) -> &'static str {
        match self {
            Transport::InProcess => "in-process",
            Transport::Tcp => "tcp",
        }
    }
}

/// Everything one soak run is parameterized by. Start from
/// [`SoakConfig::isp`] (the acceptance-scale run) or [`SoakConfig::smoke`]
/// (the ~5 s CI variant) and override fields as needed.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Switches in the generated igen topology.
    pub switches: usize,
    /// Seed for topology generation, the gravity matrix and the workers'
    /// traffic sampling (workers offset it by their index).
    pub seed: u64,
    /// Concurrent traffic worker threads.
    pub workers: usize,
    /// Packets per injected batch.
    pub batch_size: usize,
    /// Traffic phase length.
    pub duration: Duration,
    /// Monitor sampling interval.
    pub interval: Duration,
    /// Time between policy-churn commits.
    pub churn_period: Duration,
    /// Run the exact-state monitor every Nth interval (0 = only at run
    /// end). Each check pauses all writers at the quiesce gate.
    pub quiesce_every: usize,
    /// Per-port egress queue capacity.
    pub queue_capacity: usize,
    /// Packet-trace sampling period (1-in-N per worker).
    pub trace_every: u64,
    /// Total gravity traffic volume (shapes the matrix, not the rate).
    pub traffic_volume: f64,
    /// How many external ports receive traffic / egress subnets the
    /// churned policies route (0 = all of the topology's, capped at 250
    /// so subnets fit an IPv4 octet). [`run`] writes the effective value
    /// back into the outcome's config.
    pub egress_ports: usize,
    /// Bounded-memory ceiling for the `pool.live_nodes` gauge.
    pub max_session_pool_nodes: i64,
    /// Bounded-memory ceiling for the `pool.distribution_nodes` gauge.
    pub max_distribution_nodes: i64,
    /// Minimum churn commits for a `pass` verdict.
    pub min_commits: u64,
    /// Minimum monitor intervals for a `pass` verdict.
    pub min_intervals: usize,
    /// Print one line per interval to stderr while running.
    pub progress: bool,
    /// Controller↔agent transport (presets honor `SNAP_SOAK_TRANSPORT`).
    pub transport: Transport,
}

impl SoakConfig {
    /// The acceptance-scale run: an igen ISP topology of 200 switches,
    /// ≥ 60 s of traffic from 4 workers, a commit every ~2.5 s.
    pub fn isp() -> SoakConfig {
        SoakConfig {
            switches: 200,
            seed: 7,
            workers: 4,
            batch_size: 64,
            duration: Duration::from_secs(66),
            interval: Duration::from_secs(4),
            churn_period: Duration::from_millis(1000),
            quiesce_every: 4,
            queue_capacity: 8192,
            trace_every: 512,
            traffic_volume: 10_000.0,
            egress_ports: 0,
            max_session_pool_nodes: 600_000,
            max_distribution_nodes: 2_000_000,
            min_commits: 20,
            min_intervals: 10,
            progress: false,
            transport: Transport::from_env(),
        }
    }

    /// The ~5 s smoke variant CI runs on every push: a small igen
    /// topology, the same code path end to end.
    pub fn smoke() -> SoakConfig {
        SoakConfig {
            switches: 24,
            seed: 11,
            workers: 2,
            batch_size: 32,
            duration: Duration::from_secs(5),
            interval: Duration::from_millis(450),
            churn_period: Duration::from_millis(400),
            quiesce_every: 3,
            queue_capacity: 2048,
            trace_every: 128,
            traffic_volume: 2_000.0,
            egress_ports: 0,
            max_session_pool_nodes: 600_000,
            max_distribution_nodes: 2_000_000,
            min_commits: 5,
            min_intervals: 8,
            progress: false,
            transport: Transport::from_env(),
        }
    }
}

/// The churned policy set: the same detection-only pipeline at different
/// thresholds. Threshold edits keep the packet-state mapping and the
/// state-dependency relation unchanged, so the session reuses placement —
/// every commit is placement-stable (no migration windows) and no variant
/// drops packets (detection only + full egress coverage), which is what
/// lets the exact-state monitor fold `count[inport]` against a simple
/// injection ledger.
fn churn_variants(egress_ports: usize) -> Vec<Policy> {
    (0..5)
        .map(|i| {
            apps::port_monitoring()
                .seq(apps::dns_tunnel_detect(3 + i as i64))
                .seq(apps::heavy_hitter_detection(50 + 10 * i as i64))
                .seq(apps::assign_egress(egress_ports))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The quiesce gate
// ---------------------------------------------------------------------------

/// A pause barrier over `std::sync` (the workspace's parking_lot shim has
/// no `Condvar`). Writers (`present` of them) call [`Gate::checkpoint`]
/// between batches/commits: free when the gate is open, blocking at the
/// barrier while it is paused. The monitor calls [`Gate::pause`], which
/// returns once every present writer is blocked — the quiesce point the
/// exact-state monitor needs — and [`Gate::resume`] to release them.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    paused: bool,
    stopped: bool,
    /// Writers still participating (decremented by [`Gate::leave`]).
    present: usize,
    /// Writers currently blocked at the barrier.
    waiting: usize,
}

impl Gate {
    fn new(present: usize) -> Gate {
        Gate {
            state: Mutex::new(GateState {
                paused: false,
                stopped: false,
                present,
                waiting: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Writer-side: block here while the gate is paused.
    fn checkpoint(&self) {
        let mut s = self.state.lock().expect("gate poisoned");
        if !s.paused || s.stopped {
            return;
        }
        s.waiting += 1;
        self.cv.notify_all();
        while s.paused && !s.stopped {
            s = self.cv.wait(s).expect("gate poisoned");
        }
        s.waiting -= 1;
        self.cv.notify_all();
    }

    /// Writer-side: permanently stop participating (thread exit).
    fn leave(&self) {
        let mut s = self.state.lock().expect("gate poisoned");
        s.present -= 1;
        self.cv.notify_all();
    }

    /// Monitor-side: close the gate and wait until every present writer
    /// is blocked at the barrier. Returns `false` (gate left open) when
    /// the run stopped first or no writers remain.
    fn pause(&self) -> bool {
        let mut s = self.state.lock().expect("gate poisoned");
        if s.stopped || s.present == 0 {
            return false;
        }
        s.paused = true;
        while s.waiting < s.present && !s.stopped {
            s = self.cv.wait(s).expect("gate poisoned");
        }
        if s.stopped {
            s.paused = false;
            self.cv.notify_all();
            return false;
        }
        true
    }

    /// Monitor-side: reopen the gate.
    fn resume(&self) {
        let mut s = self.state.lock().expect("gate poisoned");
        s.paused = false;
        self.cv.notify_all();
    }

    /// End the run: every checkpoint returns immediately from now on.
    fn stop(&self) {
        let mut s = self.state.lock().expect("gate poisoned");
        s.stopped = true;
        self.cv.notify_all();
    }

    fn is_stopped(&self) -> bool {
        self.state.lock().expect("gate poisoned").stopped
    }
}

// ---------------------------------------------------------------------------
// Traffic sampling
// ---------------------------------------------------------------------------

/// Weighted `(src, dst)` sampling from the gravity matrix, restricted to
/// destinations the churned policies route.
struct TrafficSampler {
    pairs: Vec<(PortId, PortId)>,
    /// Cumulative demand, aligned with `pairs`.
    cumulative: Vec<f64>,
    total: f64,
}

impl TrafficSampler {
    fn build(matrix: &TrafficMatrix, max_dst: usize) -> TrafficSampler {
        let mut pairs = Vec::new();
        let mut cumulative = Vec::new();
        let mut total = 0.0;
        for (src, dst, demand) in matrix.iter() {
            if demand <= 0.0 || dst.0 > max_dst || dst.0 == 0 {
                continue;
            }
            total += demand;
            pairs.push((src, dst));
            cumulative.push(total);
        }
        assert!(
            !pairs.is_empty(),
            "gravity matrix produced no usable demand"
        );
        TrafficSampler {
            pairs,
            cumulative,
            total,
        }
    }

    fn sample(&self, rng: &mut StdRng) -> (PortId, PortId) {
        let x = rng.gen::<f64>() * self.total;
        let at = self.cumulative.partition_point(|&c| c < x);
        self.pairs[at.min(self.pairs.len() - 1)]
    }
}

/// Build one fully populated packet for a sampled port pair, so every
/// field the churned policies test is present (a missing tested field is
/// an evaluation error). `k` varies the host octets so per-flow state
/// (heavy-hitter counters, DNS suspicion) sees many keys.
fn make_packet(src: PortId, dst: PortId, k: u64) -> Packet {
    let host = (k % 200) as u8;
    let dns = k.is_multiple_of(7);
    Packet::new()
        .with(Field::InPort, src.0 as i64)
        .with(Field::SrcIp, Value::ip(10, 0, src.0 as u8, host))
        .with(
            Field::DstIp,
            Value::ip(10, 0, dst.0 as u8, host.wrapping_add(1)),
        )
        .with(
            Field::SrcPort,
            if dns { 53 } else { 40_000 + (k % 1000) as i64 },
        )
        .with(Field::DstPort, 443)
        .with(Field::Proto, if dns { 17 } else { 6 })
        .with(
            Field::TcpFlags,
            Value::sym(if k.is_multiple_of(3) { "SYN" } else { "ACK" }),
        )
        .with(Field::DnsRdata, Value::ip(93, 184, 216, host))
}

// ---------------------------------------------------------------------------
// The run
// ---------------------------------------------------------------------------

struct WorkerTotals {
    packets: u64,
    deliveries: u64,
    errors: u64,
    samples: Vec<String>,
}

fn worker_loop(
    w: usize,
    config: &SoakConfig,
    network: &DistNetwork,
    sampler: &TrafficSampler,
    ledger: &Ledger,
    gate: &Gate,
    deadline: Instant,
) -> WorkerTotals {
    let mut rng = StdRng::seed_from_u64(config.seed ^ (0x9e37_79b9 + w as u64));
    let mut totals = WorkerTotals {
        packets: 0,
        deliveries: 0,
        errors: 0,
        samples: Vec::new(),
    };
    let mut k = (w as u64) << 32;
    while !gate.is_stopped() && Instant::now() < deadline {
        gate.checkpoint();
        let batch: Vec<(PortId, Packet)> = (0..config.batch_size)
            .map(|_| {
                let (src, dst) = sampler.sample(&mut rng);
                k += 1;
                (src, make_packet(src, dst, k))
            })
            .collect();
        for ((port, _), result) in batch.iter().zip(network.inject_batch(&batch)) {
            match result {
                Ok(outcome) => {
                    totals.packets += 1;
                    totals.deliveries += outcome.delivered.len() as u64;
                    ledger.bump(*port);
                }
                Err(e) => {
                    totals.errors += 1;
                    if totals.samples.len() < 4 {
                        totals.samples.push(format!("worker {w}: {e}"));
                    }
                }
            }
        }
    }
    gate.leave();
    totals
}

struct ChurnTotals {
    commits: u64,
    aborts: u64,
    samples: Vec<String>,
}

fn churn_loop(
    controller: &mut snap_distrib::Controller,
    variants: &[Policy],
    gate: &Gate,
    period: Duration,
    deadline: Instant,
) -> ChurnTotals {
    let mut totals = ChurnTotals {
        commits: 0,
        aborts: 0,
        samples: Vec::new(),
    };
    let slice = Duration::from_millis(20).min(period);
    let mut since = Instant::now();
    // Every variant was pre-committed once (the last being `len - 1`), so
    // starting the cycle at 0 always flips to a different program.
    let mut next = 0usize;
    while !gate.is_stopped() && Instant::now() < deadline {
        std::thread::sleep(slice);
        gate.checkpoint();
        if since.elapsed() >= period {
            // Pipelined: stage epoch N+1 while N's commit acks drain. A
            // successful call may therefore complete zero epochs (the
            // first of the run) or one; the final `flush` below drains
            // whatever is still in flight when the run ends.
            match controller.update_policy_async(&variants[next % variants.len()]) {
                Ok(reports) => totals.commits += reports.len() as u64,
                Err(e) => {
                    totals.aborts += 1;
                    if totals.samples.len() < 4 {
                        totals.samples.push(format!("churn: {e}"));
                    }
                }
            }
            next += 1;
            since = Instant::now();
        }
    }
    match controller.flush() {
        Ok(reports) => totals.commits += reports.len() as u64,
        Err(e) => {
            totals.aborts += 1;
            if totals.samples.len() < 4 {
                totals.samples.push(format!("churn flush: {e}"));
            }
        }
    }
    gate.leave();
    totals
}

/// Sleep until `until` (or the gate stops), in small slices so stop stays
/// responsive.
fn sleep_until(until: Instant, gate: &Gate) {
    while !gate.is_stopped() {
        let now = Instant::now();
        if now >= until {
            return;
        }
        std::thread::sleep((until - now).min(Duration::from_millis(20)));
    }
}

/// Execute one soak run (see the crate docs for the architecture).
///
/// Builds the igen topology and its gravity matrix, deploys one agent
/// thread per switch behind a [`Controller`](snap_distrib::Controller),
/// commits the first policy variant, then runs traffic workers + policy
/// churn + the interval monitor concurrently for
/// [`SoakConfig::duration`]. Returns the full [`SoakOutcome`]; nothing in
/// here panics on an invariant violation — violations are data in the
/// outcome, and [`SoakOutcome::passed`] is the verdict.
pub fn run(mut config: SoakConfig) -> SoakOutcome {
    let topology: Topology = igen_topology(config.switches, config.seed);
    let nports = topology.external_ports().count();
    let cap = if config.egress_ports == 0 {
        nports.min(250)
    } else {
        config.egress_ports.min(nports).min(250)
    };
    config.egress_ports = cap;
    let matrix = TrafficMatrix::gravity(&topology, config.traffic_volume, config.seed);
    let session =
        CompilerSession::new(topology.clone(), matrix.clone()).with_solver(SolverChoice::Heuristic);
    let deploy_options = DeployOptions {
        distrib: DistribOptions {
            // Keep the append-only distribution pool bounded across
            // unbounded churn: compact once it exceeds 8× the live
            // program (the bounded-memory monitor watches the gauge).
            compact_threshold: Some(8),
            ..DistribOptions::default()
        },
        ack_delay: None,
    };
    let mut deployment = match config.transport {
        Transport::InProcess => {
            deploy_in_process_custom(session, config.queue_capacity, deploy_options)
        }
        Transport::Tcp => deploy_tcp(session, config.queue_capacity, deploy_options)
            .expect("tcp deployment over loopback must bind and connect"),
    };
    if let Some(pt) = deployment.network.telemetry() {
        pt.telemetry().tracer().set_every(config.trace_every);
    }

    // Commit every variant once before traffic starts. This warms the
    // session's version cache (at ISP scale a fresh compile of the
    // composed pipeline takes seconds), so the measured churn cadence is
    // steady-state recompile + 2PC + delta shipping — the thing a soak is
    // about — rather than five first-compile stalls at the front.
    let variants = churn_variants(cap);
    for v in &variants {
        deployment
            .controller
            .update_policy(v)
            .expect("churn variants must compile and commit");
    }

    let sampler = TrafficSampler::build(&matrix, cap);
    let ledger = Ledger::new(nports);
    let gate = Gate::new(config.workers + 1); // workers + the churn thread
    let network = Arc::clone(&deployment.network);
    let mut monitors = Monitors::new(MemoryBounds {
        trace_capacity: snap_telemetry::DEFAULT_TRACE_CAPACITY,
        event_capacity: snap_telemetry::DEFAULT_EVENT_CAPACITY,
        queue_capacity: config.queue_capacity,
        max_session_pool_nodes: config.max_session_pool_nodes,
        max_distribution_nodes: config.max_distribution_nodes,
    });
    let mut intervals: Vec<IntervalStats> = Vec::new();

    let start = Instant::now();
    let deadline = start + config.duration;
    let controller = &mut deployment.controller;
    let (worker_totals, churn_totals) = std::thread::scope(|scope| {
        let churn_handle = {
            let gate = &gate;
            let variants = &variants;
            scope.spawn(move || {
                churn_loop(controller, variants, gate, config.churn_period, deadline)
            })
        };
        let worker_handles: Vec<_> = (0..config.workers)
            .map(|w| {
                let (config, network, sampler, ledger, gate) =
                    (&config, &*network, &sampler, &ledger, &gate);
                scope
                    .spawn(move || worker_loop(w, config, network, sampler, ledger, gate, deadline))
            })
            .collect();

        // The monitor runs on this thread.
        let mut prev = network.metrics_snapshot();
        let mut index = 0usize;
        loop {
            let tick = start + config.interval * (index as u32 + 1);
            if tick > deadline {
                break;
            }
            sleep_until(tick, &gate);
            let snap = network.metrics_snapshot();
            let delta = snap.delta(&prev);
            let stats =
                IntervalStats::from_delta(index, start.elapsed().as_secs_f64(), &delta, &snap);
            monitors.check_epoch_purity(index, &snap);
            monitors.check_fifo(index, &network, &snap);
            monitors.check_bounded_memory(index, &snap);
            if config.quiesce_every > 0
                && (index + 1).is_multiple_of(config.quiesce_every)
                && gate.pause()
            {
                monitors.check_exact_state(index, &network, &ledger, &snap);
                gate.resume();
            }
            if config.progress {
                eprintln!("{}", stats.render_line());
            }
            intervals.push(stats);
            prev = snap;
            index += 1;
        }
        gate.stop();

        let churn_totals = churn_handle.join().expect("churn thread panicked");
        let worker_totals: Vec<WorkerTotals> = worker_handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
        (worker_totals, churn_totals)
    });
    let elapsed = start.elapsed();

    // All writers joined: the final snapshot is exact, so every monitor —
    // including exact state — runs once more against it.
    let final_snapshot = network.metrics_snapshot();
    monitors.check_epoch_purity(usize::MAX, &final_snapshot);
    monitors.check_fifo(usize::MAX, &network, &final_snapshot);
    monitors.check_bounded_memory(usize::MAX, &final_snapshot);
    monitors.check_exact_state(usize::MAX, &network, &ledger, &final_snapshot);

    let mut packets = 0;
    let mut deliveries = 0;
    let mut worker_errors = 0;
    let mut error_samples: Vec<String> = Vec::new();
    for t in &worker_totals {
        packets += t.packets;
        deliveries += t.deliveries;
        worker_errors += t.errors;
        error_samples.extend(t.samples.iter().cloned());
    }
    error_samples.extend(churn_totals.samples.iter().cloned());

    deployment.shutdown();
    SoakOutcome {
        config,
        intervals,
        violations: std::mem::take(&mut monitors.violations),
        total_violations: monitors.total,
        commits: churn_totals.commits,
        aborts: churn_totals.aborts,
        worker_errors,
        error_samples,
        packets,
        deliveries,
        final_snapshot,
        elapsed,
    }
}
