//! End-to-end smoke soak: the full rig (igen topology, traffic workers,
//! policy churn, interval monitors) on a small network for a few seconds.
//! This is the suite CI greps the pass count of; the assertions here are
//! the machine-checkable half of the acceptance criteria, at smoke scale.

use snap_soak::{run, SoakConfig};
use std::time::Duration;

fn smoke_outcome() -> snap_soak::SoakOutcome {
    let mut config = SoakConfig::smoke();
    // Keep the suite fast: the default smoke preset is already ~5 s; trim
    // further for the unit-test context while keeping every code path.
    config.duration = Duration::from_secs(3);
    config.interval = Duration::from_millis(300);
    config.churn_period = Duration::from_millis(350);
    config.min_intervals = 6;
    config.min_commits = 3;
    run(config)
}

#[test]
fn smoke_soak_passes_with_zero_violations() {
    let outcome = smoke_outcome();
    assert_eq!(
        outcome.total_violations,
        0,
        "invariant violations: {:?}",
        outcome
            .violations
            .iter()
            .map(|v| format!("[{}] {}: {}", v.interval, v.monitor, v.detail))
            .collect::<Vec<_>>()
    );
    assert_eq!(
        outcome.worker_errors, 0,
        "errors: {:?}",
        outcome.error_samples
    );
    assert_eq!(outcome.aborts, 0, "aborts: {:?}", outcome.error_samples);
    assert!(
        outcome.commits >= outcome.config.min_commits,
        "only {} commits landed (need {})",
        outcome.commits,
        outcome.config.min_commits
    );
    assert!(
        outcome.intervals.len() >= outcome.config.min_intervals,
        "only {} intervals sampled (need {})",
        outcome.intervals.len(),
        outcome.config.min_intervals
    );
    assert!(outcome.passed(), "verdict: {}", outcome.verdict());
    assert!(outcome.packets > 0 && outcome.deliveries > 0);
}

#[test]
fn smoke_soak_artifact_is_well_formed() {
    let outcome = smoke_outcome();
    let json = outcome.to_json();
    // Structural spot-checks on the hand-rolled artifact.
    for key in [
        "\"config\"",
        "\"intervals\"",
        "\"rates\"",
        "\"histograms\"",
        "\"pkts_per_s\"",
        "\"violation_count\"",
        "\"verdict\"",
        "\"p99\"",
    ] {
        assert!(json.contains(key), "artifact missing {key}:\n{json}");
    }
    assert_eq!(
        json.matches("\"index\":").count(),
        outcome.intervals.len(),
        "one intervals-array entry per sampled interval"
    );
    // Balanced braces/brackets as a cheap well-formedness proxy (the
    // workspace has no JSON parser to round-trip through).
    let balance =
        |open: char, close: char| json.matches(open).count() == json.matches(close).count();
    assert!(
        balance('{', '}') && balance('[', ']'),
        "unbalanced JSON:\n{json}"
    );
    assert!(
        json.contains("\"verdict\": \"pass\""),
        "{}",
        outcome.summary()
    );
}

#[test]
fn interval_series_reports_live_traffic_and_churn() {
    let outcome = smoke_outcome();
    assert!(
        outcome.intervals.iter().any(|s| s.pkts_per_s > 0.0),
        "no interval saw packet throughput"
    );
    assert!(
        outcome.intervals.iter().map(|s| s.commits).sum::<u64>() > 0,
        "no interval captured a churn commit event"
    );
    // The series is ordered and timestamped.
    for w in outcome.intervals.windows(2) {
        assert!(w[0].index + 1 == w[1].index && w[0].at_secs < w[1].at_secs);
    }
    // Pool gauges were exported (satellite: session + distribution pools).
    let last = outcome.intervals.last().expect("intervals nonempty");
    assert!(
        last.pool_live_nodes > 0,
        "pool.live_nodes gauge not exported"
    );
    assert!(
        last.pool_distribution_nodes > 0,
        "pool.distribution_nodes gauge not exported"
    );
}
