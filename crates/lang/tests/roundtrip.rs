//! Property-based round-trip test: pretty-printing a policy and re-parsing it
//! recovers the same AST.

use proptest::prelude::*;
use snap_lang::pretty::policy_to_string;
use snap_lang::{parse_policy, Expr, Field, Policy, Pred, StateVar, Value};

const FIELDS: [Field; 6] = [
    Field::SrcIp,
    Field::DstIp,
    Field::SrcPort,
    Field::DstPort,
    Field::InPort,
    Field::OutPort,
];

fn arb_field() -> impl Strategy<Value = Field> {
    (0usize..FIELDS.len()).prop_map(|i| FIELDS[i].clone())
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..1000).prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Value::ip(10, a, b, 1)),
        (any::<u8>(), 8u8..30).prop_map(|(a, len)| Value::prefix(10, a, 0, 0, len)),
    ]
}

fn arb_state_var() -> impl Strategy<Value = StateVar> {
    prop_oneof![
        Just(StateVar::new("orphan")),
        Just(StateVar::new("susp-client")),
        Just(StateVar::new("flow-size")),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        arb_field().prop_map(Expr::Field),
        arb_value().prop_map(Expr::Value),
    ]
}

fn arb_index() -> impl Strategy<Value = Vec<Expr>> {
    proptest::collection::vec(arb_expr(), 1..=3)
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    let leaf = prop_oneof![
        Just(Pred::Id),
        Just(Pred::Drop),
        (arb_field(), arb_value()).prop_map(|(f, v)| Pred::Test(f, v)),
        (arb_state_var(), arb_index(), arb_expr())
            .prop_map(|(var, index, value)| Pred::StateTest { var, index, value }),
    ];
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|x| Pred::Not(Box::new(x))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| Pred::And(Box::new(x), Box::new(y))),
            (inner.clone(), inner).prop_map(|(x, y)| Pred::Or(Box::new(x), Box::new(y))),
        ]
    })
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    let leaf = prop_oneof![
        arb_pred().prop_map(Policy::Filter),
        (arb_field(), arb_value()).prop_map(|(f, v)| Policy::Modify(f, v)),
        (arb_state_var(), arb_index(), arb_expr())
            .prop_map(|(var, index, value)| Policy::StateSet { var, index, value }),
        (arb_state_var(), arb_index()).prop_map(|(var, index)| Policy::StateIncr { var, index }),
        (arb_state_var(), arb_index()).prop_map(|(var, index)| Policy::StateDecr { var, index }),
    ];
    leaf.prop_recursive(4, 20, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.seq(q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.par(q)),
            (arb_pred(), inner.clone(), inner.clone()).prop_map(|(a, p, q)| Policy::If(
                a,
                Box::new(p),
                Box::new(q)
            )),
            inner.prop_map(|p| p.atomic()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_then_parse_is_identity(policy in arb_policy()) {
        let text = policy_to_string(&policy);
        let reparsed = parse_policy(&text)
            .unwrap_or_else(|e| panic!("failed to parse pretty-printed policy `{text}`: {e}"));
        prop_assert_eq!(policy, reparsed, "round trip failed for `{}`", text);
    }
}
