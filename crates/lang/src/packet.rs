//! Packets as partial maps from header fields to values.
//!
//! A SNAP program is "a function that takes in a packet plus the current
//! state of the network and produces a set of transformed packets as well as
//! updated state" (§2.1). Packets here are symbolic header records; payload
//! bytes are represented by the `content` field when a policy needs them.

use crate::value::{Field, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A packet: an ordered map from fields to values.
///
/// The map is ordered so that packets have a canonical form, can be placed in
/// sets (the output of `eval` is a set of packets) and compared structurally.
///
/// Internally the map is a vector of `(field, value)` pairs kept sorted by
/// field: packets carry a dozen headers at most, and at that size a sorted
/// vector beats a node-based tree on every data-plane hot operation — clone
/// is one allocation plus a memcpy, lookups are a binary search over
/// contiguous memory, and ordering/equality are element-wise scans. The
/// derived `Ord`/`Eq`/`Hash` over the sorted pairs coincide with the old
/// `BTreeMap`'s (both compare the same key-sorted sequence).
#[derive(PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Packet {
    fields: Vec<(Field, Value)>,
}

/// Cap on the per-thread pool of recycled field buffers. Callers routinely
/// hold a whole run's egress (tens of thousands of packets) before dropping
/// it in one burst, and the pool has to absorb that burst for the next run's
/// clones to stay allocation-free; the cap only bounds memory afterwards
/// (a few megabytes per thread at typical header counts).
const BUF_POOL_CAP: usize = 32 * 1024;

thread_local! {
    /// Recycled field buffers: the data plane clones one packet per
    /// injection and drops one per delivery, so in steady state every clone
    /// can reuse the allocation of an earlier drop instead of paying the
    /// allocator per packet.
    static BUF_POOL: std::cell::RefCell<Vec<Vec<(Field, Value)>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// An empty field buffer from the thread's recycle pool (or freshly
/// reserved), with room for at least `capacity` pairs.
fn pooled_buf(capacity: usize) -> Vec<(Field, Value)> {
    let mut buf = BUF_POOL
        .try_with(|pool| pool.borrow_mut().pop().unwrap_or_default())
        .unwrap_or_default();
    buf.reserve(capacity);
    buf
}

impl Clone for Packet {
    fn clone(&self) -> Self {
        // Leave a little slack: the data plane's dominant pattern is
        // "clone, then set one or two fields the original didn't carry"
        // (the OBS outport, a pushed header), and cloning at exact
        // capacity would force a reallocation on that first insert.
        let mut fields = pooled_buf(self.fields.len() + 2);
        fields.extend(self.fields.iter().cloned());
        Packet { fields }
    }
}

impl Drop for Packet {
    fn drop(&mut self) {
        if self.fields.capacity() == 0 {
            return; // nothing to recycle (empty placeholder packets)
        }
        let mut buf = std::mem::take(&mut self.fields);
        // Drop the values, keep the allocation.
        buf.clear();
        // `try_with`: during thread teardown the pool may already be gone —
        // fall through to a plain deallocation.
        let _ = BUF_POOL.try_with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < BUF_POOL_CAP {
                pool.push(buf);
            }
        });
    }
}

impl Packet {
    /// An empty packet with no fields set.
    pub fn new() -> Self {
        Packet::default()
    }

    /// Position of `field`, or where it would be inserted.
    #[inline]
    fn find(&self, field: &Field) -> Result<usize, usize> {
        self.fields.binary_search_by(|(f, _)| f.cmp(field))
    }

    /// Builder-style field assignment.
    pub fn with(mut self, field: Field, value: impl Into<Value>) -> Self {
        self.set(field, value);
        self
    }

    /// Read a field.
    #[inline]
    pub fn get(&self, field: &Field) -> Option<&Value> {
        match self.find(field) {
            Ok(i) => Some(&self.fields[i].1),
            Err(_) => None,
        }
    }

    /// Write a field in place.
    pub fn set(&mut self, field: Field, value: impl Into<Value>) {
        let value = value.into();
        match self.find(&field) {
            Ok(i) => self.fields[i].1 = value,
            Err(i) => self.fields.insert(i, (field, value)),
        }
    }

    /// Remove a field (used by the data plane when stripping the SNAP header).
    pub fn remove(&mut self, field: &Field) -> Option<Value> {
        match self.find(field) {
            Ok(i) => Some(self.fields.remove(i).1),
            Err(_) => None,
        }
    }

    /// Does the packet carry this field?
    pub fn has(&self, field: &Field) -> bool {
        self.find(field).is_ok()
    }

    /// Iterate over `(field, value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Field, &Value)> {
        self.fields.iter().map(|(f, v)| (f, v))
    }

    /// Number of populated fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Is the packet empty (no fields)?
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Keep only the fields for which `keep` returns true.
    pub fn retain(&mut self, mut keep: impl FnMut(&Field, &Value) -> bool) {
        self.fields.retain(|(f, v)| keep(f, v));
    }

    /// Functional update: a copy of the packet with `field` set to `value`
    /// (the paper's `pkt[f ↦ v]`).
    pub fn updated(&self, field: Field, value: impl Into<Value>) -> Self {
        let mut p = self.clone();
        p.set(field, value);
        p
    }

    /// A convenience constructor for a typical TCP/UDP 5-tuple packet.
    pub fn five_tuple(
        srcip: impl Into<Value>,
        dstip: impl Into<Value>,
        srcport: i64,
        dstport: i64,
        proto: i64,
    ) -> Self {
        Packet::new()
            .with(Field::SrcIp, srcip)
            .with(Field::DstIp, dstip)
            .with(Field::SrcPort, srcport)
            .with(Field::DstPort, dstport)
            .with(Field::Proto, proto)
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (field, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}={value}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Field, Value)> for Packet {
    fn from_iter<T: IntoIterator<Item = (Field, Value)>>(iter: T) -> Self {
        let mut fields = pooled_buf(0);
        fields.extend(iter);
        // Map semantics: last write to a field wins. The sort is stable, so
        // within one field the insertion order survives; the swap in
        // `dedup_by` then moves each run's final value into the kept slot.
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        fields.dedup_by(|later, kept| {
            if later.0 == kept.0 {
                std::mem::swap(&mut later.1, &mut kept.1);
                true
            } else {
                false
            }
        });
        Packet { fields }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Ipv4;

    #[test]
    fn build_and_read() {
        let p = Packet::new()
            .with(Field::SrcIp, Value::ip(10, 0, 1, 1))
            .with(Field::DstPort, 53);
        assert_eq!(p.get(&Field::DstPort), Some(&Value::Int(53)));
        assert_eq!(
            p.get(&Field::SrcIp),
            Some(&Value::Ip(Ipv4::new(10, 0, 1, 1)))
        );
        assert_eq!(p.get(&Field::DstIp), None);
        assert!(p.has(&Field::SrcIp));
        assert!(!p.has(&Field::DstIp));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn functional_update_leaves_original_alone() {
        let p = Packet::new().with(Field::OutPort, 1);
        let q = p.updated(Field::OutPort, 6);
        assert_eq!(p.get(&Field::OutPort), Some(&Value::Int(1)));
        assert_eq!(q.get(&Field::OutPort), Some(&Value::Int(6)));
        assert_ne!(p, q);
    }

    #[test]
    fn packets_are_canonical_and_comparable() {
        let a = Packet::new()
            .with(Field::SrcPort, 1)
            .with(Field::DstPort, 2);
        let b = Packet::new()
            .with(Field::DstPort, 2)
            .with(Field::SrcPort, 1);
        assert_eq!(a, b);
        let mut set = std::collections::BTreeSet::new();
        set.insert(a);
        set.insert(b);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn five_tuple_constructor() {
        let p = Packet::five_tuple(Value::ip(1, 1, 1, 1), Value::ip(2, 2, 2, 2), 1000, 80, 6);
        assert_eq!(p.len(), 5);
        assert_eq!(p.get(&Field::Proto), Some(&Value::Int(6)));
    }

    #[test]
    fn remove_field() {
        let mut p = Packet::new().with(Field::Content, "payload");
        assert_eq!(p.remove(&Field::Content), Some(Value::str("payload")));
        assert!(p.is_empty());
        assert_eq!(p.remove(&Field::Content), None);
    }
}
