//! Packets as partial maps from header fields to values.
//!
//! A SNAP program is "a function that takes in a packet plus the current
//! state of the network and produces a set of transformed packets as well as
//! updated state" (§2.1). Packets here are symbolic header records; payload
//! bytes are represented by the `content` field when a policy needs them.

use crate::value::{Field, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A packet: an ordered map from fields to values.
///
/// The map is ordered so that packets have a canonical form, can be placed in
/// sets (the output of `eval` is a set of packets) and compared structurally.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Packet {
    fields: BTreeMap<Field, Value>,
}

impl Packet {
    /// An empty packet with no fields set.
    pub fn new() -> Self {
        Packet::default()
    }

    /// Builder-style field assignment.
    pub fn with(mut self, field: Field, value: impl Into<Value>) -> Self {
        self.fields.insert(field, value.into());
        self
    }

    /// Read a field.
    pub fn get(&self, field: &Field) -> Option<&Value> {
        self.fields.get(field)
    }

    /// Write a field in place.
    pub fn set(&mut self, field: Field, value: impl Into<Value>) {
        self.fields.insert(field, value.into());
    }

    /// Remove a field (used by the data plane when stripping the SNAP header).
    pub fn remove(&mut self, field: &Field) -> Option<Value> {
        self.fields.remove(field)
    }

    /// Does the packet carry this field?
    pub fn has(&self, field: &Field) -> bool {
        self.fields.contains_key(field)
    }

    /// Iterate over `(field, value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Field, &Value)> {
        self.fields.iter()
    }

    /// Number of populated fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Is the packet empty (no fields)?
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Functional update: a copy of the packet with `field` set to `value`
    /// (the paper's `pkt[f ↦ v]`).
    pub fn updated(&self, field: Field, value: impl Into<Value>) -> Self {
        let mut p = self.clone();
        p.set(field, value);
        p
    }

    /// A convenience constructor for a typical TCP/UDP 5-tuple packet.
    pub fn five_tuple(
        srcip: impl Into<Value>,
        dstip: impl Into<Value>,
        srcport: i64,
        dstport: i64,
        proto: i64,
    ) -> Self {
        Packet::new()
            .with(Field::SrcIp, srcip)
            .with(Field::DstIp, dstip)
            .with(Field::SrcPort, srcport)
            .with(Field::DstPort, dstport)
            .with(Field::Proto, proto)
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (field, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}={value}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(Field, Value)> for Packet {
    fn from_iter<T: IntoIterator<Item = (Field, Value)>>(iter: T) -> Self {
        Packet {
            fields: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Ipv4;

    #[test]
    fn build_and_read() {
        let p = Packet::new()
            .with(Field::SrcIp, Value::ip(10, 0, 1, 1))
            .with(Field::DstPort, 53);
        assert_eq!(p.get(&Field::DstPort), Some(&Value::Int(53)));
        assert_eq!(
            p.get(&Field::SrcIp),
            Some(&Value::Ip(Ipv4::new(10, 0, 1, 1)))
        );
        assert_eq!(p.get(&Field::DstIp), None);
        assert!(p.has(&Field::SrcIp));
        assert!(!p.has(&Field::DstIp));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn functional_update_leaves_original_alone() {
        let p = Packet::new().with(Field::OutPort, 1);
        let q = p.updated(Field::OutPort, 6);
        assert_eq!(p.get(&Field::OutPort), Some(&Value::Int(1)));
        assert_eq!(q.get(&Field::OutPort), Some(&Value::Int(6)));
        assert_ne!(p, q);
    }

    #[test]
    fn packets_are_canonical_and_comparable() {
        let a = Packet::new()
            .with(Field::SrcPort, 1)
            .with(Field::DstPort, 2);
        let b = Packet::new()
            .with(Field::DstPort, 2)
            .with(Field::SrcPort, 1);
        assert_eq!(a, b);
        let mut set = std::collections::BTreeSet::new();
        set.insert(a);
        set.insert(b);
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn five_tuple_constructor() {
        let p = Packet::five_tuple(Value::ip(1, 1, 1, 1), Value::ip(2, 2, 2, 2), 1000, 80, 6);
        assert_eq!(p.len(), 5);
        assert_eq!(p.get(&Field::Proto), Some(&Value::Int(6)));
    }

    #[test]
    fn remove_field() {
        let mut p = Packet::new().with(Field::Content, "payload");
        assert_eq!(p.remove(&Field::Content), Some(Value::str("payload")));
        assert!(p.is_empty());
        assert_eq!(p.remove(&Field::Content), None);
    }
}
