//! A recursive-descent parser for SNAP surface syntax.
//!
//! The grammar follows Figure 4 of the paper plus the notational conventions
//! used by its examples (Figure 1, the `assign-egress` and `assumption`
//! policies and the Appendix F listings):
//!
//! ```text
//! policy  := seq ('+' seq)*
//! seq     := disj (';' disj)*
//! disj    := conj ('|' conj)*          -- predicate-only
//! conj    := unary ('&' unary)*        -- predicate-only
//! unary   := ('~' | '!' | 'not') unary | atom
//! atom    := 'id' | 'drop'
//!          | '(' policy ')'
//!          | 'atomic' '(' policy ')'
//!          | 'if' policy 'then' seq 'else' seq
//!          | field '=' value            -- test
//!          | field '<-' value           -- modification
//!          | svar ('[' expr ']')+ '=' expr     -- state test
//!          | svar ('[' expr ']')+ '<-' expr    -- state update
//!          | svar ('[' expr ']')+ ('++' | '--')
//!          | svar ('[' expr ']')+       -- sugar for `... = True`
//! ```
//!
//! `|` and `&` demand predicate operands; using them on packet/state
//! modifications is reported as a parse error, mirroring the typing of
//! Figure 4. Line comments start with `//`.

use crate::ast::{Expr, Policy, Pred, StateVar};
use crate::error::ParseError;
use crate::value::{Field, Ipv4, Prefix, Value};

/// Parse a SNAP policy from surface syntax.
pub fn parse_policy(input: &str) -> Result<Policy, ParseError> {
    let tokens = lex(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let policy = parser.parse_policy()?;
    parser.expect_eof()?;
    Ok(policy)
}

/// Parse a SNAP predicate from surface syntax (a policy that is a filter).
pub fn parse_pred(input: &str) -> Result<Pred, ParseError> {
    let policy = parse_policy(input)?;
    let pos = 0;
    policy_to_pred(policy).ok_or_else(|| ParseError {
        position: pos,
        message: "expected a predicate, found a packet/state-modifying policy".to_string(),
    })
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Ip(Ipv4),
    Prefix(Prefix),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Semi,
    Plus,
    Amp,
    Pipe,
    Tilde,
    Eq,
    Arrow,
    PlusPlus,
    MinusMinus,
    If,
    Then,
    Else,
    Id,
    Drop,
    Atomic,
    True,
    False,
    Not,
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    pos: usize,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn lex(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == '/' {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let tok = match c {
            '(' => {
                i += 1;
                Tok::LParen
            }
            ')' => {
                i += 1;
                Tok::RParen
            }
            '[' => {
                i += 1;
                Tok::LBracket
            }
            ']' => {
                i += 1;
                Tok::RBracket
            }
            ';' => {
                i += 1;
                Tok::Semi
            }
            '&' => {
                i += 1;
                Tok::Amp
            }
            '|' => {
                i += 1;
                Tok::Pipe
            }
            '~' | '!' | '¬' => {
                i += 1;
                Tok::Tilde
            }
            '=' => {
                i += 1;
                Tok::Eq
            }
            '+' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '+' {
                    i += 2;
                    Tok::PlusPlus
                } else {
                    i += 1;
                    Tok::Plus
                }
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '-' {
                    i += 2;
                    Tok::MinusMinus
                } else {
                    return Err(ParseError {
                        position: start,
                        message: "unexpected '-' (did you mean '--' or '<-'?)".to_string(),
                    });
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == '-' {
                    i += 2;
                    Tok::Arrow
                } else {
                    return Err(ParseError {
                        position: start,
                        message: "unexpected '<' (did you mean '<-'?)".to_string(),
                    });
                }
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                while i < bytes.len() && bytes[i] != '"' {
                    s.push(bytes[i]);
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(ParseError {
                        position: start,
                        message: "unterminated string literal".to_string(),
                    });
                }
                i += 1; // closing quote
                Tok::Str(s)
            }
            c if c.is_ascii_digit() => {
                // Integer, IP address, or IP prefix.
                let mut s = String::new();
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    s.push(bytes[i]);
                    i += 1;
                }
                if s.contains('.') {
                    let addr = Ipv4::parse(&s).ok_or_else(|| ParseError {
                        position: start,
                        message: format!("malformed IP address `{s}`"),
                    })?;
                    // Optional /len suffix.
                    if i < bytes.len() && bytes[i] == '/' {
                        i += 1;
                        let mut lenstr = String::new();
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            lenstr.push(bytes[i]);
                            i += 1;
                        }
                        let len: u8 = lenstr.parse().map_err(|_| ParseError {
                            position: start,
                            message: format!("malformed prefix length `{lenstr}`"),
                        })?;
                        if len > 32 {
                            return Err(ParseError {
                                position: start,
                                message: format!("prefix length {len} out of range"),
                            });
                        }
                        Tok::Prefix(Prefix::new(addr, len))
                    } else {
                        Tok::Ip(addr)
                    }
                } else {
                    let n: i64 = s.parse().map_err(|_| ParseError {
                        position: start,
                        message: format!("malformed integer `{s}`"),
                    })?;
                    Tok::Int(n)
                }
            }
            c if is_ident_start(c) => {
                let mut s = String::new();
                s.push(c);
                i += 1;
                loop {
                    if i >= bytes.len() {
                        break;
                    }
                    let d = bytes[i];
                    // An interior `-` / `.` continues the identifier only when
                    // followed by another identifier character; `--` must stay
                    // a decrement even after an identifier.
                    let interior_punct = (d == '-' || d == '.')
                        && i + 1 < bytes.len()
                        && is_ident_continue(bytes[i + 1])
                        && !(d == '-' && bytes[i + 1] == '-');
                    if is_ident_continue(d) || interior_punct {
                        s.push(d);
                        i += 1;
                    } else {
                        break;
                    }
                }
                match s.as_str() {
                    "if" => Tok::If,
                    "then" => Tok::Then,
                    "else" => Tok::Else,
                    "id" => Tok::Id,
                    "drop" => Tok::Drop,
                    "atomic" => Tok::Atomic,
                    "True" => Tok::True,
                    "False" => Tok::False,
                    "not" => Tok::Not,
                    _ => Tok::Ident(s),
                }
            }
            other => {
                return Err(ParseError {
                    position: start,
                    message: format!("unexpected character `{other}`"),
                })
            }
        };
        out.push(Spanned { tok, pos: start });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

/// Convert a policy back to a predicate when it is purely a filter.
pub fn policy_to_pred(p: Policy) -> Option<Pred> {
    match p {
        Policy::Filter(x) => Some(x),
        _ => None,
    }
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn peek_pos(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|s| s.pos)
            .unwrap_or(usize::MAX)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t.map(|s| s.tok)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.peek_pos(),
            message: message.into(),
        }
    }

    fn expect(&mut self, expected: &Tok, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == expected => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error("trailing input after policy"))
        }
    }

    fn parse_policy(&mut self) -> Result<Policy, ParseError> {
        let mut acc = self.parse_seq()?;
        while self.peek() == Some(&Tok::Plus) {
            self.pos += 1;
            let rhs = self.parse_seq()?;
            acc = acc.par(rhs);
        }
        Ok(acc)
    }

    fn parse_seq(&mut self) -> Result<Policy, ParseError> {
        let mut acc = self.parse_disj()?;
        while self.peek() == Some(&Tok::Semi) {
            self.pos += 1;
            let rhs = self.parse_disj()?;
            acc = acc.seq(rhs);
        }
        Ok(acc)
    }

    fn parse_disj(&mut self) -> Result<Policy, ParseError> {
        let mut acc = self.parse_conj()?;
        while self.peek() == Some(&Tok::Pipe) {
            self.pos += 1;
            let rhs = self.parse_conj()?;
            let l = policy_to_pred(acc)
                .ok_or_else(|| self.error("left operand of `|` must be a predicate"))?;
            let r = policy_to_pred(rhs)
                .ok_or_else(|| self.error("right operand of `|` must be a predicate"))?;
            acc = Policy::Filter(l.or(r));
        }
        Ok(acc)
    }

    fn parse_conj(&mut self) -> Result<Policy, ParseError> {
        let mut acc = self.parse_unary()?;
        while self.peek() == Some(&Tok::Amp) {
            self.pos += 1;
            let rhs = self.parse_unary()?;
            let l = policy_to_pred(acc)
                .ok_or_else(|| self.error("left operand of `&` must be a predicate"))?;
            let r = policy_to_pred(rhs)
                .ok_or_else(|| self.error("right operand of `&` must be a predicate"))?;
            acc = Policy::Filter(l.and(r));
        }
        Ok(acc)
    }

    fn parse_unary(&mut self) -> Result<Policy, ParseError> {
        if matches!(self.peek(), Some(Tok::Tilde) | Some(Tok::Not)) {
            self.pos += 1;
            let inner = self.parse_unary()?;
            let p = policy_to_pred(inner)
                .ok_or_else(|| self.error("operand of negation must be a predicate"))?;
            return Ok(Policy::Filter(p.not()));
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Policy, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Id) => {
                self.pos += 1;
                Ok(Policy::id())
            }
            Some(Tok::Drop) => {
                self.pos += 1;
                Ok(Policy::drop())
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let p = self.parse_policy()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(p)
            }
            Some(Tok::Atomic) => {
                self.pos += 1;
                self.expect(&Tok::LParen, "`(` after atomic")?;
                let p = self.parse_policy()?;
                self.expect(&Tok::RParen, "`)` closing atomic")?;
                Ok(p.atomic())
            }
            Some(Tok::If) => {
                self.pos += 1;
                let cond_policy = self.parse_disj_only()?;
                let cond = policy_to_pred(cond_policy)
                    .ok_or_else(|| self.error("if-condition must be a predicate"))?;
                self.expect(&Tok::Then, "`then`")?;
                let then_branch = self.parse_seq()?;
                self.expect(&Tok::Else, "`else`")?;
                let else_branch = self.parse_seq()?;
                Ok(Policy::If(
                    cond,
                    Box::new(then_branch),
                    Box::new(else_branch),
                ))
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                self.parse_ident_form(name)
            }
            other => Err(self.error(format!("unexpected token {other:?}"))),
        }
    }

    /// Parse the condition of an `if` — predicates only, stops before `then`.
    fn parse_disj_only(&mut self) -> Result<Policy, ParseError> {
        self.parse_disj()
    }

    /// Something starting with an identifier: a field test/modification or a
    /// state reference.
    fn parse_ident_form(&mut self, name: String) -> Result<Policy, ParseError> {
        if self.peek() == Some(&Tok::LBracket) {
            // State reference: name[e]...[e]
            let mut index = Vec::new();
            while self.peek() == Some(&Tok::LBracket) {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect(&Tok::RBracket, "`]`")?;
                index.push(e);
            }
            let var = StateVar::new(name);
            match self.peek() {
                Some(Tok::Arrow) => {
                    self.pos += 1;
                    let value = self.parse_expr()?;
                    Ok(Policy::StateSet { var, index, value })
                }
                Some(Tok::Eq) => {
                    self.pos += 1;
                    let value = self.parse_expr()?;
                    Ok(Policy::Filter(Pred::StateTest { var, index, value }))
                }
                Some(Tok::PlusPlus) => {
                    self.pos += 1;
                    Ok(Policy::StateIncr { var, index })
                }
                Some(Tok::MinusMinus) => {
                    self.pos += 1;
                    Ok(Policy::StateDecr { var, index })
                }
                // Bare state reference: sugar for `s[e] = True`.
                _ => Ok(Policy::Filter(Pred::StateTest {
                    var,
                    index,
                    value: Expr::Value(Value::Bool(true)),
                })),
            }
        } else {
            // Field test or field modification.
            let f = Field::from_name(&name);
            match self.peek() {
                Some(Tok::Eq) => {
                    self.pos += 1;
                    let v = self.parse_value()?;
                    Ok(Policy::Filter(Pred::Test(f, v)))
                }
                Some(Tok::Arrow) => {
                    self.pos += 1;
                    let v = self.parse_value()?;
                    Ok(Policy::Modify(f, v))
                }
                other => Err(self.error(format!(
                    "expected `=`, `<-` or `[` after identifier `{name}`, found {other:?}"
                ))),
            }
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.next() {
            Some(Tok::Int(i)) => Ok(Value::Int(i)),
            Some(Tok::Ip(ip)) => Ok(Value::Ip(ip)),
            Some(Tok::Prefix(p)) => Ok(Value::Prefix(p)),
            Some(Tok::Str(s)) => Ok(Value::Str(s)),
            Some(Tok::True) => Ok(Value::Bool(true)),
            Some(Tok::False) => Ok(Value::Bool(false)),
            Some(Tok::Ident(s)) => Ok(Value::Symbol(s)),
            other => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error(format!("expected a value, found {other:?}")))
            }
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) if Field::is_known_name(&s) => {
                self.pos += 1;
                Ok(Expr::Field(Field::from_name(&s)))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let mut items = vec![self.parse_expr()?];
                while self.peek() != Some(&Tok::RParen) {
                    items.push(self.parse_expr()?);
                }
                self.expect(&Tok::RParen, "`)`")?;
                Ok(Expr::Tuple(items))
            }
            _ => Ok(Expr::Value(self.parse_value()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::pretty::policy_to_string;

    #[test]
    fn parse_primitives() {
        assert_eq!(parse_policy("id").unwrap(), Policy::id());
        assert_eq!(parse_policy("drop").unwrap(), Policy::drop());
        assert_eq!(
            parse_policy("outport <- 6").unwrap(),
            modify(Field::OutPort, Value::Int(6))
        );
        assert_eq!(
            parse_policy("dstip = 10.0.6.0/24").unwrap(),
            Policy::Filter(test_prefix(Field::DstIp, 10, 0, 6, 0, 24))
        );
        assert_eq!(
            parse_policy("srcip = 10.0.1.1").unwrap(),
            Policy::Filter(test(Field::SrcIp, Value::ip(10, 0, 1, 1)))
        );
    }

    #[test]
    fn parse_state_forms() {
        assert_eq!(
            parse_policy("count[inport]++").unwrap(),
            state_incr("count", vec![field(Field::InPort)])
        );
        assert_eq!(
            parse_policy("susp-client[srcip]--").unwrap(),
            state_decr("susp-client", vec![field(Field::SrcIp)])
        );
        assert_eq!(
            parse_policy("orphan[dstip][dns.rdata] <- True").unwrap(),
            state_set(
                "orphan",
                vec![field(Field::DstIp), field(Field::DnsRdata)],
                Value::Bool(true)
            )
        );
        assert_eq!(
            parse_policy("blacklist[dstip] = True").unwrap(),
            Policy::Filter(state_test(
                "blacklist",
                vec![field(Field::DstIp)],
                Value::Bool(true)
            ))
        );
        // Bare state reference sugar.
        assert_eq!(
            parse_policy("orphan[srcip][dstip]").unwrap(),
            Policy::Filter(state_truthy(
                "orphan",
                vec![field(Field::SrcIp), field(Field::DstIp)]
            ))
        );
    }

    #[test]
    fn parse_composition_precedence() {
        // `;` binds tighter than `+`.
        let p = parse_policy("id; drop + id").unwrap();
        assert_eq!(p, Policy::id().seq(Policy::drop()).par(Policy::id()));
        // `&` binds tighter than `|`.
        let q = parse_policy("srcport = 53 | dstport = 53 & proto = 17").unwrap();
        let expected = Policy::Filter(
            test(Field::SrcPort, Value::Int(53))
                .or(test(Field::DstPort, Value::Int(53)).and(test(Field::Proto, Value::Int(17)))),
        );
        assert_eq!(q, expected);
    }

    #[test]
    fn parse_negation_forms() {
        let a = parse_policy("~established[srcip][dstip]").unwrap();
        let b = parse_policy("not established[srcip][dstip]").unwrap();
        let c = parse_policy("!established[srcip][dstip]").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(matches!(a, Policy::Filter(Pred::Not(_))));
    }

    #[test]
    fn parse_figure_1_program() {
        let src = r#"
            // DNS-tunnel-detect (Figure 1)
            if dstip = 10.0.6.0/24 & srcport = 53 then
                orphan[dstip][dns.rdata] <- True;
                susp-client[dstip]++;
                if susp-client[dstip] = 5 then
                    blacklist[dstip] <- True
                else id
            else
                if srcip = 10.0.6.0/24 & orphan[srcip][dstip] then
                    orphan[srcip][dstip] <- False;
                    susp-client[srcip]--
                else id
        "#;
        let p = parse_policy(src).unwrap();
        let vars = p.state_vars();
        assert_eq!(vars.len(), 3);
        assert!(vars.contains(&StateVar::new("orphan")));
        assert!(vars.contains(&StateVar::new("susp-client")));
        assert!(vars.contains(&StateVar::new("blacklist")));
    }

    #[test]
    fn parse_assign_egress() {
        let src = r#"
            if dstip = 10.0.1.0/24 then outport <- 1
            else if dstip = 10.0.2.0/24 then outport <- 2
            else if dstip = 10.0.6.0/24 then outport <- 6
            else drop
        "#;
        let p = parse_policy(src).unwrap();
        assert!(p.fields().contains(&Field::OutPort));
        assert!(p.state_vars().is_empty());
    }

    #[test]
    fn parse_atomic_block() {
        let src = "atomic(hon-ip[inport] <- srcip; hon-dstport[inport] <- dstport)";
        let p = parse_policy(src).unwrap();
        assert!(matches!(p, Policy::Atomic(_)));
        assert_eq!(p.writes().len(), 2);
    }

    #[test]
    fn parse_string_and_symbol_values() {
        let p = parse_policy(r#"content = "Kindle/3.0+""#).unwrap();
        assert_eq!(
            p,
            Policy::Filter(test(Field::Content, Value::str("Kindle/3.0+")))
        );
        let q = parse_policy("tcp.flags = SYN").unwrap();
        assert_eq!(q, Policy::Filter(test(Field::TcpFlags, Value::sym("SYN"))));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_policy("if srcport = 53 then id").is_err()); // missing else
        assert!(parse_policy("outport <-").is_err());
        assert!(parse_policy("srcport = 53 &").is_err());
        assert!(parse_policy("outport <- 1 & srcport = 53").is_err()); // non-predicate operand
        assert!(parse_policy("srcport < 53").is_err());
        assert!(parse_policy("srcport = 53 extra").is_err());
        assert!(parse_policy("\"unterminated").is_err());
        assert!(parse_policy("dstip = 10.0.6.0/99").is_err());
        assert!(parse_policy("dstip = 10.0.6").is_err());
    }

    #[test]
    fn roundtrip_through_pretty_printer() {
        let samples = vec![
            "id",
            "drop",
            "outport <- 6",
            "count[inport]++",
            "(if dstip = 10.0.6.0/24 & srcport = 53 then blacklist[dstip] <- True else id)",
            "((id; drop) + count[inport]++)",
            "atomic((hon-ip[inport] <- srcip; hon-dstport[inport] <- dstport))",
            "~(orphan[srcip][dstip] = True)",
        ];
        for src in samples {
            let p = parse_policy(src).unwrap();
            let printed = policy_to_string(&p);
            let reparsed = parse_policy(&printed)
                .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
            assert_eq!(p, reparsed, "round-trip failed for `{src}`");
        }
    }

    #[test]
    fn parse_pred_helper() {
        assert_eq!(
            parse_pred("srcport = 53 & dstip = 10.0.6.0/24").unwrap(),
            test(Field::SrcPort, Value::Int(53)).and(test_prefix(Field::DstIp, 10, 0, 6, 0, 24))
        );
        assert!(parse_pred("outport <- 1").is_err());
    }
}
