//! Ergonomic constructors for building SNAP programs in Rust.
//!
//! These mirror the surface syntax closely so that the Appendix F policies
//! can be transcribed almost line-for-line:
//!
//! ```
//! use snap_lang::builder::*;
//! use snap_lang::{Field, Value};
//!
//! // if dstip = 10.0.6.0/24 & srcport = 53 then susp-client[dstip]++ else id
//! let p = ite(
//!     test(Field::DstIp, Value::prefix(10, 0, 6, 0, 24))
//!         .and(test(Field::SrcPort, Value::Int(53))),
//!     state_incr("susp-client", vec![field(Field::DstIp)]),
//!     id(),
//! );
//! assert_eq!(p.state_vars().len(), 1);
//! ```

use crate::ast::{Expr, Policy, Pred, StateVar};
use crate::value::{Field, Value};

/// The `id` policy (pass everything unchanged).
pub fn id() -> Policy {
    Policy::id()
}

/// The `drop` policy.
pub fn drop() -> Policy {
    Policy::drop()
}

/// The field test predicate `f = v`.
pub fn test(f: Field, v: impl Into<Value>) -> Pred {
    Pred::Test(f, v.into())
}

/// Predicate testing that an IP field matches a prefix, e.g.
/// `test_prefix(Field::DstIp, 10, 0, 6, 0, 24)`.
pub fn test_prefix(f: Field, a: u8, b: u8, c: u8, d: u8, len: u8) -> Pred {
    Pred::Test(f, Value::prefix(a, b, c, d, len))
}

/// The state test predicate `s[index] = value`.
pub fn state_test(var: impl Into<StateVar>, index: Vec<Expr>, value: impl Into<Expr>) -> Pred {
    Pred::StateTest {
        var: var.into(),
        index,
        value: value.into(),
    }
}

/// A bare state test `s[index]`, sugar for `s[index] = True` (used all over
/// Appendix F, e.g. `orphan[srcip][dstip]`).
pub fn state_truthy(var: impl Into<StateVar>, index: Vec<Expr>) -> Pred {
    state_test(var, index, Value::Bool(true))
}

/// Field modification `f ← v`.
pub fn modify(f: Field, v: impl Into<Value>) -> Policy {
    Policy::Modify(f, v.into())
}

/// State modification `s[index] ← value`.
pub fn state_set(var: impl Into<StateVar>, index: Vec<Expr>, value: impl Into<Expr>) -> Policy {
    Policy::StateSet {
        var: var.into(),
        index,
        value: value.into(),
    }
}

/// Increment `s[index]++`.
pub fn state_incr(var: impl Into<StateVar>, index: Vec<Expr>) -> Policy {
    Policy::StateIncr {
        var: var.into(),
        index,
    }
}

/// Decrement `s[index]--`.
pub fn state_decr(var: impl Into<StateVar>, index: Vec<Expr>) -> Policy {
    Policy::StateDecr {
        var: var.into(),
        index,
    }
}

/// Conditional `if a then p else q`.
pub fn ite(a: Pred, p: Policy, q: Policy) -> Policy {
    Policy::If(a, Box::new(p), Box::new(q))
}

/// `atomic(p)` — network transaction.
pub fn atomic(p: Policy) -> Policy {
    Policy::Atomic(Box::new(p))
}

/// A field expression.
pub fn field(f: Field) -> Expr {
    Expr::Field(f)
}

/// A literal value expression.
pub fn val(v: impl Into<Value>) -> Expr {
    Expr::Value(v.into())
}

/// An integer literal expression.
pub fn int(i: i64) -> Expr {
    Expr::Value(Value::Int(i))
}

/// A symbolic-constant expression (e.g. `sym("ESTABLISHED")`).
pub fn sym(s: &str) -> Expr {
    Expr::Value(Value::sym(s))
}

/// Filter on a predicate (turn a predicate into a policy explicitly).
pub fn filter(p: Pred) -> Policy {
    Policy::Filter(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dns_tunnel_fragment_builds() {
        // Lines 1-6 of Figure 1.
        let detect = ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24).and(test(Field::SrcPort, Value::Int(53))),
            Policy::seq_all(vec![
                state_set(
                    "orphan",
                    vec![field(Field::DstIp), field(Field::DnsRdata)],
                    Value::Bool(true),
                ),
                state_incr("susp-client", vec![field(Field::DstIp)]),
                ite(
                    state_test("susp-client", vec![field(Field::DstIp)], sym("threshold")),
                    state_set("blacklist", vec![field(Field::DstIp)], Value::Bool(true)),
                    id(),
                ),
            ]),
            id(),
        );
        let vars = detect.state_vars();
        assert_eq!(vars.len(), 3);
        assert!(vars.contains(&StateVar::new("orphan")));
        assert!(vars.contains(&StateVar::new("blacklist")));
    }

    #[test]
    fn truthy_state_test_is_sugar_for_true() {
        let p = state_truthy("established", vec![field(Field::SrcIp)]);
        match p {
            Pred::StateTest { value, .. } => assert_eq!(value, Expr::Value(Value::Bool(true))),
            _ => panic!("expected state test"),
        }
    }
}
