//! The global network state: a dictionary from state variables to key/value
//! mappings (paper §3: "We express the program state as a dictionary that
//! maps state variables to their contents. The contents of each state
//! variable is itself a mapping from values to values").

use crate::ast::StateVar;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The contents of one state variable: a mapping from index vectors to values.
///
/// Indices are vectors of values because SNAP arrays may be indexed by
/// several fields at once (e.g. `orphan[dstip][dns.rdata]`). Entries that were
/// never written read back as the variable's default value.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateTable {
    entries: BTreeMap<Vec<Value>, Value>,
    default: Value,
}

impl StateTable {
    /// A fresh table whose unwritten entries read back as `default`.
    pub fn with_default(default: Value) -> Self {
        StateTable {
            entries: BTreeMap::new(),
            default,
        }
    }

    /// Read the value at `index` (the default if never written).
    pub fn get(&self, index: &[Value]) -> Value {
        self.entries
            .get(index)
            .cloned()
            .unwrap_or_else(|| self.default.clone())
    }

    /// Write `value` at `index`.
    pub fn set(&mut self, index: Vec<Value>, value: Value) {
        self.entries.insert(index, value);
    }

    /// Write `value` at a borrowed `index`: the index is only cloned when
    /// the entry does not exist yet, so overwrites (the steady state of a
    /// busy counter) never allocate a key.
    pub fn set_at(&mut self, index: &[Value], value: Value) {
        if let Some(slot) = self.entries.get_mut(index) {
            *slot = value;
        } else {
            self.entries.insert(index.to_vec(), value);
        }
    }

    /// Read-modify-write at `index` in one tree walk: `update` sees the
    /// current value (the default if never written) and produces the new
    /// one. An `Err` from `update` leaves the table untouched. Like
    /// [`StateTable::set_at`], the index is cloned only on first write.
    pub fn update<E>(
        &mut self,
        index: &[Value],
        update: impl FnOnce(&Value) -> Result<Value, E>,
    ) -> Result<(), E> {
        if let Some(slot) = self.entries.get_mut(index) {
            *slot = update(slot)?;
        } else {
            let value = update(&self.default)?;
            self.entries.insert(index.to_vec(), value);
        }
        Ok(())
    }

    /// The default value of this table.
    pub fn default_value(&self) -> &Value {
        &self.default
    }

    /// Number of explicitly-written entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Has nothing been written yet?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over explicitly-written entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, &Value)> {
        self.entries.iter()
    }

    /// Union `other`'s entries into this table (other's entries win on
    /// shared keys). Used to reassemble a table from key-disjoint partials
    /// held by independent state shards — with disjoint key sets the union
    /// is exact regardless of order.
    pub fn absorb(&mut self, other: StateTable) {
        if self.entries.is_empty() {
            self.entries = other.entries;
        } else {
            self.entries.extend(other.entries);
        }
    }
}

impl Default for StateTable {
    fn default() -> Self {
        StateTable::with_default(Value::Int(0))
    }
}

impl fmt::Debug for StateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.entries.iter()).finish()
    }
}

/// The whole network state: one table per state variable.
///
/// Unknown variables behave as empty tables with default `0`, matching the
/// paper's treatment of state as total mappings.
#[derive(Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Store {
    tables: BTreeMap<StateVar, StateTable>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Declare a variable with an explicit default value (e.g. `Bool(false)`
    /// for flag arrays, `Int(0)` for counters). Idempotent.
    pub fn declare(&mut self, var: StateVar, default: Value) {
        self.tables
            .entry(var)
            .or_insert_with(|| StateTable::with_default(default));
    }

    /// Read `var[index]`.
    pub fn get(&self, var: &StateVar, index: &[Value]) -> Value {
        match self.tables.get(var) {
            Some(t) => t.get(index),
            None => Value::Int(0),
        }
    }

    /// Write `var[index] ← value`.
    pub fn set(&mut self, var: &StateVar, index: Vec<Value>, value: Value) {
        self.table_mut(var).set(index, value);
    }

    /// Write `var[index] ← value` with a borrowed index — see
    /// [`StateTable::set_at`].
    pub fn set_at(&mut self, var: &StateVar, index: &[Value], value: Value) {
        self.table_mut(var).set_at(index, value);
    }

    /// Read-modify-write `var[index]` in one table walk — see
    /// [`StateTable::update`].
    pub fn update<E>(
        &mut self,
        var: &StateVar,
        index: &[Value],
        update: impl FnOnce(&Value) -> Result<Value, E>,
    ) -> Result<(), E> {
        self.table_mut(var).update(index, update)
    }

    /// The table backing `var`, created empty on first touch. Clones the
    /// variable name only on that first touch, not per write.
    fn table_mut(&mut self, var: &StateVar) -> &mut StateTable {
        if !self.tables.contains_key(var) {
            self.tables.insert(var.clone(), StateTable::default());
        }
        self.tables.get_mut(var).expect("just ensured")
    }

    /// The table backing `var`, if any entry was ever written or declared.
    pub fn table(&self, var: &StateVar) -> Option<&StateTable> {
        self.tables.get(var)
    }

    /// Variables with a table in this store.
    pub fn variables(&self) -> impl Iterator<Item = &StateVar> {
        self.tables.keys()
    }

    /// Replace the whole table for `var` (used when merging distributed state
    /// back into a single OBS view).
    pub fn insert_table(&mut self, var: StateVar, table: StateTable) {
        self.tables.insert(var, table);
    }

    /// Take the whole table for `var` out of the store (used when migrating
    /// a variable to a different switch during a configuration swap).
    pub fn remove_table(&mut self, var: &StateVar) -> Option<StateTable> {
        self.tables.remove(var)
    }

    /// Do two stores agree on variable `var`?
    pub fn var_eq(&self, other: &Store, var: &StateVar) -> bool {
        let empty = StateTable::default();
        let a = self.tables.get(var).unwrap_or(&empty);
        let b = other.tables.get(var).unwrap_or(&empty);
        a == b
    }

    /// Merge per the paper's `merge(m, m1, m2)`: for every variable, if `m1`
    /// left it unchanged relative to base `m`, take `m2`'s version, otherwise
    /// take `m1`'s. Extended to any number of updated stores by folding.
    pub fn merge(base: &Store, updated: &[Store]) -> Store {
        match updated {
            [] => base.clone(),
            [only] => only.clone(),
            [first, rest @ ..] => {
                let m2 = Store::merge(base, rest);
                let mut out = Store::new();
                let mut vars: Vec<StateVar> = Vec::new();
                vars.extend(base.tables.keys().cloned());
                vars.extend(first.tables.keys().cloned());
                vars.extend(m2.tables.keys().cloned());
                vars.sort();
                vars.dedup();
                for var in vars {
                    let table = if first.var_eq(base, &var) {
                        m2.tables.get(&var).cloned()
                    } else {
                        first.tables.get(&var).cloned()
                    };
                    if let Some(t) = table {
                        out.tables.insert(var, t);
                    }
                }
                out
            }
        }
    }
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.tables.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(s: &str) -> StateVar {
        StateVar::new(s)
    }

    #[test]
    fn default_reads() {
        let store = Store::new();
        assert_eq!(store.get(&sv("counter"), &[Value::Int(1)]), Value::Int(0));
        let mut store = Store::new();
        store.declare(sv("flag"), Value::Bool(false));
        assert_eq!(store.get(&sv("flag"), &[Value::Int(1)]), Value::Bool(false));
    }

    #[test]
    fn set_then_get() {
        let mut store = Store::new();
        store.set(
            &sv("s"),
            vec![Value::Int(1), Value::Int(2)],
            Value::Bool(true),
        );
        assert_eq!(
            store.get(&sv("s"), &[Value::Int(1), Value::Int(2)]),
            Value::Bool(true)
        );
        assert_eq!(
            store.get(&sv("s"), &[Value::Int(1), Value::Int(3)]),
            Value::Int(0)
        );
    }

    #[test]
    fn merge_takes_changed_table() {
        let base = Store::new();
        let mut m1 = Store::new();
        m1.set(&sv("a"), vec![Value::Int(0)], Value::Int(1));
        let mut m2 = Store::new();
        m2.set(&sv("b"), vec![Value::Int(0)], Value::Int(2));
        let merged = Store::merge(&base, &[m1.clone(), m2.clone()]);
        assert_eq!(merged.get(&sv("a"), &[Value::Int(0)]), Value::Int(1));
        assert_eq!(merged.get(&sv("b"), &[Value::Int(0)]), Value::Int(2));
    }

    #[test]
    fn merge_prefers_first_writer_when_both_changed() {
        // Mirrors the definition in appendix A: if m1 changed s, take m1's s.
        let base = Store::new();
        let mut m1 = Store::new();
        m1.set(&sv("s"), vec![], Value::Int(1));
        let mut m2 = Store::new();
        m2.set(&sv("s"), vec![], Value::Int(2));
        let merged = Store::merge(&base, &[m1, m2]);
        assert_eq!(merged.get(&sv("s"), &[]), Value::Int(1));
    }

    #[test]
    fn merge_of_empty_list_is_base() {
        let mut base = Store::new();
        base.set(&sv("s"), vec![], Value::Int(9));
        let merged = Store::merge(&base, &[]);
        assert_eq!(merged, base);
    }

    #[test]
    fn var_eq_handles_missing_tables() {
        let a = Store::new();
        let mut b = Store::new();
        assert!(a.var_eq(&b, &sv("x")));
        b.set(&sv("x"), vec![], Value::Int(1));
        assert!(!a.var_eq(&b, &sv("x")));
    }

    #[test]
    fn table_iteration() {
        let mut t = StateTable::with_default(Value::Bool(false));
        t.set(vec![Value::Int(1)], Value::Bool(true));
        t.set(vec![Value::Int(2)], Value::Bool(true));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 2);
        assert_eq!(t.default_value(), &Value::Bool(false));
    }
}
