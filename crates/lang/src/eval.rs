//! The formal semantics of SNAP (paper appendix A, Figure 13).
//!
//! `eval` takes a policy, a starting state (`Store`) and a packet, and yields
//! an updated store, a set of output packets and a log of the state variables
//! read and written. The log is what lets us define (and reject) ambiguous
//! compositions: a parallel composition whose sides conflict on some state
//! variable has no consistent semantics and evaluates to an error, exactly as
//! the paper leaves those cases undefined (`⊥`).

use crate::ast::{Expr, Policy, Pred, StateVar};
use crate::error::EvalError;
use crate::packet::Packet;
use crate::state::Store;
use crate::value::Value;
use std::collections::BTreeSet;

/// The read/write log of an evaluation (the paper's `l ∈ Log`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Log {
    /// State variables read (`R s` entries).
    pub reads: BTreeSet<StateVar>,
    /// State variables written (`W s` entries).
    pub writes: BTreeSet<StateVar>,
}

impl Log {
    /// The empty log.
    pub fn empty() -> Self {
        Log::default()
    }

    /// A log with a single read.
    pub fn read(var: StateVar) -> Self {
        let mut l = Log::empty();
        l.reads.insert(var);
        l
    }

    /// A log with a single write.
    pub fn write(var: StateVar) -> Self {
        let mut l = Log::empty();
        l.writes.insert(var);
        l
    }

    /// Union of two logs (the paper's `l1 ∪ l2`).
    pub fn union(mut self, other: &Log) -> Self {
        self.reads.extend(other.reads.iter().cloned());
        self.writes.extend(other.writes.iter().cloned());
        self
    }

    /// The paper's `consistent(l1, l2)`: no variable is written by one log and
    /// read or written by the other. Returns the offending variable if any.
    pub fn conflict_with(&self, other: &Log) -> Option<StateVar> {
        for w in &self.writes {
            if other.reads.contains(w) || other.writes.contains(w) {
                return Some(w.clone());
            }
        }
        for w in &other.writes {
            if self.reads.contains(w) || self.writes.contains(w) {
                return Some(w.clone());
            }
        }
        None
    }

    /// Boolean form of [`Log::conflict_with`].
    pub fn consistent(&self, other: &Log) -> bool {
        self.conflict_with(other).is_none()
    }
}

/// The result of evaluating a policy on a packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalResult {
    /// The updated network state.
    pub store: Store,
    /// The set of output packets (empty when the packet was dropped).
    pub packets: BTreeSet<Packet>,
    /// The read/write log.
    pub log: Log,
}

impl EvalResult {
    fn new(store: Store, packets: BTreeSet<Packet>, log: Log) -> Self {
        EvalResult {
            store,
            packets,
            log,
        }
    }

    /// Did the policy drop the packet entirely?
    pub fn dropped(&self) -> bool {
        self.packets.is_empty()
    }
}

/// Evaluate an expression against a packet (the paper's `evale`).
pub fn eval_expr(expr: &Expr, pkt: &Packet) -> Result<Value, EvalError> {
    match expr {
        Expr::Value(v) => Ok(v.clone()),
        Expr::Field(f) => pkt
            .get(f)
            .cloned()
            .ok_or_else(|| EvalError::MissingField(f.clone())),
        Expr::Tuple(es) => {
            let mut vs = Vec::with_capacity(es.len());
            for e in es {
                vs.push(eval_expr(e, pkt)?);
            }
            Ok(Value::Tuple(vs))
        }
    }
}

/// Evaluate an index vector against a packet.
pub fn eval_index(index: &[Expr], pkt: &Packet) -> Result<Vec<Value>, EvalError> {
    index.iter().map(|e| eval_expr(e, pkt)).collect()
}

/// Evaluate an index vector into a caller-provided buffer (cleared first),
/// so hot paths can reuse one allocation across packets.
pub fn eval_index_into(
    index: &[Expr],
    pkt: &Packet,
    out: &mut Vec<Value>,
) -> Result<(), EvalError> {
    out.clear();
    for e in index {
        out.push(eval_expr(e, pkt)?);
    }
    Ok(())
}

/// Evaluate a predicate: does `pkt` pass, and which state variables were read?
///
/// Predicates never modify the packet or the state, so a boolean plus a log is
/// a faithful (and much cheaper) representation of the paper's semantics.
pub fn eval_pred(pred: &Pred, store: &Store, pkt: &Packet) -> Result<(bool, Log), EvalError> {
    match pred {
        Pred::Id => Ok((true, Log::empty())),
        Pred::Drop => Ok((false, Log::empty())),
        Pred::Test(f, v) => {
            let passes = match pkt.get(f) {
                Some(actual) => v.matches(actual),
                None => false,
            };
            Ok((passes, Log::empty()))
        }
        Pred::Not(x) => {
            let (b, l) = eval_pred(x, store, pkt)?;
            Ok((!b, l))
        }
        Pred::Or(x, y) => {
            let (bx, lx) = eval_pred(x, store, pkt)?;
            let (by, ly) = eval_pred(y, store, pkt)?;
            Ok((bx || by, lx.union(&ly)))
        }
        Pred::And(x, y) => {
            let (bx, lx) = eval_pred(x, store, pkt)?;
            let (by, ly) = eval_pred(y, store, pkt)?;
            Ok((bx && by, lx.union(&ly)))
        }
        Pred::StateTest { var, index, value } => {
            let idx = eval_index(index, pkt)?;
            let expected = eval_expr(value, pkt)?;
            let actual = store.get(var, &idx);
            Ok((actual == expected, Log::read(var.clone())))
        }
    }
}

/// Evaluate a policy (the paper's `eval : Pol → Store → Packet → Store × 2^Packet × Log`).
pub fn eval(policy: &Policy, store: &Store, pkt: &Packet) -> Result<EvalResult, EvalError> {
    match policy {
        Policy::Filter(pred) => {
            let (passes, log) = eval_pred(pred, store, pkt)?;
            let mut packets = BTreeSet::new();
            if passes {
                packets.insert(pkt.clone());
            }
            Ok(EvalResult::new(store.clone(), packets, log))
        }
        Policy::Modify(f, v) => {
            let out = pkt.updated(f.clone(), v.clone());
            let mut packets = BTreeSet::new();
            packets.insert(out);
            Ok(EvalResult::new(store.clone(), packets, Log::empty()))
        }
        Policy::StateSet { var, index, value } => {
            let idx = eval_index(index, pkt)?;
            let val = eval_expr(value, pkt)?;
            let mut new_store = store.clone();
            new_store.set(var, idx, val);
            let mut packets = BTreeSet::new();
            packets.insert(pkt.clone());
            Ok(EvalResult::new(new_store, packets, Log::write(var.clone())))
        }
        Policy::StateIncr { var, index } => eval_bump(store, pkt, var, index, 1),
        Policy::StateDecr { var, index } => eval_bump(store, pkt, var, index, -1),
        Policy::If(a, p, q) => {
            let (cond, log_a) = eval_pred(a, store, pkt)?;
            let branch = if cond { p } else { q };
            let mut result = eval(branch, store, pkt)?;
            result.log = result.log.union(&log_a);
            Ok(result)
        }
        Policy::Atomic(p) => eval(p, store, pkt),
        Policy::Par(p, q) => {
            let rp = eval(p, store, pkt)?;
            let rq = eval(q, store, pkt)?;
            if let Some(var) = rp.log.conflict_with(&rq.log) {
                return Err(EvalError::ParallelConflict(var));
            }
            let store_out = Store::merge(store, &[rp.store, rq.store]);
            let mut packets = rp.packets;
            packets.extend(rq.packets);
            Ok(EvalResult::new(store_out, packets, rp.log.union(&rq.log)))
        }
        Policy::Seq(p, q) => {
            let rp = eval(p, store, pkt)?;
            if rp.packets.is_empty() {
                // The packet was dropped by `p`; `p`'s state changes persist.
                return Ok(rp);
            }
            let mut stores = Vec::new();
            let mut logs: Vec<Log> = Vec::new();
            let mut packets = BTreeSet::new();
            for pkt_i in &rp.packets {
                let r = eval(q, &rp.store, pkt_i)?;
                stores.push(r.store);
                logs.push(r.log);
                packets.extend(r.packets);
            }
            // The runs of `q` must be pairwise consistent.
            for i in 0..logs.len() {
                for j in (i + 1)..logs.len() {
                    if let Some(var) = logs[i].conflict_with(&logs[j]) {
                        return Err(EvalError::SequentialConflict(var));
                    }
                }
            }
            let store_out = Store::merge(&rp.store, &stores);
            let mut log = rp.log;
            for l in &logs {
                log = log.union(l);
            }
            Ok(EvalResult::new(store_out, packets, log))
        }
    }
}

fn eval_bump(
    store: &Store,
    pkt: &Packet,
    var: &StateVar,
    index: &[Expr],
    delta: i64,
) -> Result<EvalResult, EvalError> {
    let idx = eval_index(index, pkt)?;
    let current = store.get(var, &idx);
    let next = match current.as_int() {
        Some(i) => Value::Int(i + delta),
        None => {
            return Err(EvalError::NotAnInteger {
                var: var.clone(),
                value: current,
            })
        }
    };
    let mut new_store = store.clone();
    new_store.set(var, idx, next);
    let mut packets = BTreeSet::new();
    packets.insert(pkt.clone());
    Ok(EvalResult::new(new_store, packets, Log::write(var.clone())))
}

/// Evaluate a policy over a whole trace of packets, threading the state
/// through. Returns the final store and, per input packet, the set of outputs.
pub fn eval_trace(
    policy: &Policy,
    initial: &Store,
    packets: &[Packet],
) -> Result<(Store, Vec<BTreeSet<Packet>>), EvalError> {
    let mut store = initial.clone();
    let mut outputs = Vec::with_capacity(packets.len());
    for pkt in packets {
        let r = eval(policy, &store, pkt)?;
        store = r.store;
        outputs.push(r.packets);
    }
    Ok((store, outputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::value::Field;

    fn pkt_dns_response() -> Packet {
        Packet::new()
            .with(Field::SrcIp, Value::ip(8, 8, 8, 8))
            .with(Field::DstIp, Value::ip(10, 0, 6, 5))
            .with(Field::SrcPort, 53)
            .with(Field::DstPort, 3453)
            .with(Field::DnsRdata, Value::ip(1, 2, 3, 4))
    }

    fn sv(s: &str) -> StateVar {
        StateVar::new(s)
    }

    #[test]
    fn id_passes_and_drop_drops() {
        let store = Store::new();
        let pkt = pkt_dns_response();
        let r = eval(&id(), &store, &pkt).unwrap();
        assert_eq!(r.packets.len(), 1);
        let r = eval(&drop(), &store, &pkt).unwrap();
        assert!(r.dropped());
    }

    #[test]
    fn field_test_with_prefix() {
        let store = Store::new();
        let pkt = pkt_dns_response();
        let p = filter(test_prefix(Field::DstIp, 10, 0, 6, 0, 24));
        assert_eq!(eval(&p, &store, &pkt).unwrap().packets.len(), 1);
        let p = filter(test_prefix(Field::DstIp, 10, 0, 5, 0, 24));
        assert!(eval(&p, &store, &pkt).unwrap().dropped());
    }

    #[test]
    fn test_on_missing_field_fails_closed() {
        let store = Store::new();
        let pkt = Packet::new();
        let p = filter(test(Field::SrcPort, Value::Int(53)));
        assert!(eval(&p, &store, &pkt).unwrap().dropped());
    }

    #[test]
    fn modify_changes_field() {
        let store = Store::new();
        let pkt = pkt_dns_response();
        let p = modify(Field::OutPort, Value::Int(6));
        let r = eval(&p, &store, &pkt).unwrap();
        let out = r.packets.iter().next().unwrap();
        assert_eq!(out.get(&Field::OutPort), Some(&Value::Int(6)));
    }

    #[test]
    fn state_set_and_test() {
        let store = Store::new();
        let pkt = pkt_dns_response();
        let p = state_set(
            "orphan",
            vec![field(Field::DstIp), field(Field::DnsRdata)],
            Value::Bool(true),
        );
        let r = eval(&p, &store, &pkt).unwrap();
        assert!(r.log.writes.contains(&sv("orphan")));
        let q = filter(state_test(
            "orphan",
            vec![field(Field::DstIp), field(Field::DnsRdata)],
            Value::Bool(true),
        ));
        let r2 = eval(&q, &r.store, &pkt).unwrap();
        assert_eq!(r2.packets.len(), 1);
        assert!(r2.log.reads.contains(&sv("orphan")));
    }

    #[test]
    fn increment_and_decrement() {
        let store = Store::new();
        let pkt = pkt_dns_response();
        let p = state_incr("susp-client", vec![field(Field::DstIp)]);
        let r = eval(&p, &store, &pkt).unwrap();
        let r = eval(&p, &r.store, &pkt).unwrap();
        assert_eq!(
            r.store.get(&sv("susp-client"), &[Value::ip(10, 0, 6, 5)]),
            Value::Int(2)
        );
        let d = state_decr("susp-client", vec![field(Field::DstIp)]);
        let r = eval(&d, &r.store, &pkt).unwrap();
        assert_eq!(
            r.store.get(&sv("susp-client"), &[Value::ip(10, 0, 6, 5)]),
            Value::Int(1)
        );
    }

    #[test]
    fn increment_of_boolean_is_an_error() {
        let mut store = Store::new();
        store.set(&sv("flag"), vec![Value::Int(1)], Value::Bool(true));
        let pkt = Packet::new().with(Field::InPort, 1);
        let p = state_incr("flag", vec![field(Field::InPort)]);
        let err = eval(&p, &store, &pkt).unwrap_err();
        assert!(matches!(err, EvalError::NotAnInteger { .. }));
    }

    #[test]
    fn missing_field_in_state_index_is_an_error() {
        let store = Store::new();
        let pkt = Packet::new();
        let p = state_incr("count", vec![field(Field::InPort)]);
        assert_eq!(
            eval(&p, &store, &pkt).unwrap_err(),
            EvalError::MissingField(Field::InPort)
        );
    }

    #[test]
    fn parallel_conflict_detected() {
        // (s[0] <- 1) + (s[0] <- 2) conflicts; with distinct variables it is fine.
        let store = Store::new();
        let pkt = pkt_dns_response();
        let conflict =
            state_set("s", vec![int(0)], int(1)).par(state_set("s", vec![int(0)], int(2)));
        assert_eq!(
            eval(&conflict, &store, &pkt).unwrap_err(),
            EvalError::ParallelConflict(sv("s"))
        );
        let fine = state_set("s", vec![int(0)], int(1)).par(state_set("t", vec![int(0)], int(2)));
        let r = eval(&fine, &store, &pkt).unwrap();
        assert_eq!(r.store.get(&sv("s"), &[Value::Int(0)]), Value::Int(1));
        assert_eq!(r.store.get(&sv("t"), &[Value::Int(0)]), Value::Int(2));
    }

    #[test]
    fn parallel_read_write_conflict_detected() {
        let store = Store::new();
        let pkt = pkt_dns_response();
        let p =
            filter(state_test("s", vec![int(0)], int(0))).par(state_set("s", vec![int(0)], int(2)));
        assert_eq!(
            eval(&p, &store, &pkt).unwrap_err(),
            EvalError::ParallelConflict(sv("s"))
        );
    }

    #[test]
    fn sequential_conflict_from_packet_copies() {
        // p = (f <- 1 + f <- 2); q = s[0] <- f   -- the example from §3.
        let store = Store::new();
        let pkt = pkt_dns_response();
        let p = modify(Field::DstPort, Value::Int(1)).par(modify(Field::DstPort, Value::Int(2)));
        let q = state_set("s", vec![int(0)], field(Field::DstPort));
        let program = p.clone().seq(q);
        assert_eq!(
            eval(&program, &store, &pkt).unwrap_err(),
            EvalError::SequentialConflict(sv("s"))
        );
        // but p; (g <- 3) runs fine.
        let ok = p.seq(modify(Field::SrcPort, Value::Int(3)));
        let r = eval(&ok, &store, &pkt).unwrap();
        assert_eq!(r.packets.len(), 2);
    }

    #[test]
    fn sequencing_threads_state() {
        // count[inport]++ ; if count[inport] = 1 then id else drop
        let store = Store::new();
        let pkt = Packet::new().with(Field::InPort, 3);
        let p = state_incr("count", vec![field(Field::InPort)]).seq(ite(
            state_test("count", vec![field(Field::InPort)], int(1)),
            id(),
            drop(),
        ));
        let r = eval(&p, &store, &pkt).unwrap();
        assert_eq!(r.packets.len(), 1);
        // Second packet: counter is now 2, so it gets dropped.
        let r2 = eval(&p, &r.store, &pkt).unwrap();
        assert!(r2.dropped());
    }

    #[test]
    fn drop_then_anything_keeps_left_state_changes() {
        let store = Store::new();
        let pkt = pkt_dns_response();
        let p = state_incr("c", vec![int(0)])
            .seq(drop())
            .seq(state_incr("d", vec![int(0)]));
        let r = eval(&p, &store, &pkt).unwrap();
        assert!(r.dropped());
        assert_eq!(r.store.get(&sv("c"), &[Value::Int(0)]), Value::Int(1));
        assert_eq!(r.store.get(&sv("d"), &[Value::Int(0)]), Value::Int(0));
    }

    #[test]
    fn conditional_reads_propagate_to_log() {
        let store = Store::new();
        let pkt = pkt_dns_response();
        let p = ite(
            state_test("seen", vec![field(Field::DstIp)], Value::Bool(true)),
            id(),
            state_set("seen", vec![field(Field::DstIp)], Value::Bool(true)),
        );
        let r = eval(&p, &store, &pkt).unwrap();
        assert!(r.log.reads.contains(&sv("seen")));
        assert!(r.log.writes.contains(&sv("seen")));
    }

    #[test]
    fn atomic_is_transparent_to_eval() {
        let store = Store::new();
        let pkt = pkt_dns_response();
        let body = state_set("hon-ip", vec![int(1)], field(Field::SrcIp)).seq(state_set(
            "hon-dstport",
            vec![int(1)],
            field(Field::DstPort),
        ));
        let r1 = eval(&atomic(body.clone()), &store, &pkt).unwrap();
        let r2 = eval(&body, &store, &pkt).unwrap();
        assert_eq!(r1.store, r2.store);
        assert_eq!(r1.packets, r2.packets);
    }

    #[test]
    fn eval_trace_threads_state_across_packets() {
        let p = state_incr("count", vec![field(Field::InPort)]);
        let pkts: Vec<Packet> = (0..5)
            .map(|_| Packet::new().with(Field::InPort, 1))
            .collect();
        let (store, outs) = eval_trace(&p, &Store::new(), &pkts).unwrap();
        assert_eq!(store.get(&sv("count"), &[Value::Int(1)]), Value::Int(5));
        assert!(outs.iter().all(|o| o.len() == 1));
    }

    #[test]
    fn dns_tunnel_detect_end_to_end() {
        // Figure 1 with threshold = 2, exercised on a small packet trace.
        let threshold = 2;
        let detect = ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24).and(test(Field::SrcPort, Value::Int(53))),
            Policy::seq_all(vec![
                state_set(
                    "orphan",
                    vec![field(Field::DstIp), field(Field::DnsRdata)],
                    Value::Bool(true),
                ),
                state_incr("susp-client", vec![field(Field::DstIp)]),
                ite(
                    state_test("susp-client", vec![field(Field::DstIp)], int(threshold)),
                    state_set("blacklist", vec![field(Field::DstIp)], Value::Bool(true)),
                    id(),
                ),
            ]),
            ite(
                test_prefix(Field::SrcIp, 10, 0, 6, 0, 24).and(state_test(
                    "orphan",
                    vec![field(Field::SrcIp), field(Field::DstIp)],
                    Value::Bool(true),
                )),
                state_set(
                    "orphan",
                    vec![field(Field::SrcIp), field(Field::DstIp)],
                    Value::Bool(false),
                )
                .seq(state_decr("susp-client", vec![field(Field::SrcIp)])),
                id(),
            ),
        );

        let client = Value::ip(10, 0, 6, 5);
        let resolved1 = Value::ip(93, 184, 216, 34);
        let resolved2 = Value::ip(93, 184, 216, 35);

        // Two DNS responses arrive for the client without it ever contacting
        // the resolved addresses: the client crosses the threshold and is
        // blacklisted.
        let dns1 = Packet::new()
            .with(Field::SrcIp, Value::ip(8, 8, 8, 8))
            .with(Field::DstIp, client.clone())
            .with(Field::SrcPort, 53)
            .with(Field::DnsRdata, resolved1.clone());
        let dns2 = dns1.clone().updated(Field::DnsRdata, resolved2);

        let (store, _) = eval_trace(&detect, &Store::new(), &[dns1.clone(), dns2]).unwrap();
        assert_eq!(
            store.get(&sv("blacklist"), std::slice::from_ref(&client)),
            Value::Bool(true)
        );

        // If instead the client uses the resolved address, the counter goes
        // back down and it is never blacklisted.
        let usage = Packet::new()
            .with(Field::SrcIp, client.clone())
            .with(Field::DstIp, resolved1)
            .with(Field::SrcPort, 5555);
        let (store, _) = eval_trace(&detect, &Store::new(), &[dns1, usage]).unwrap();
        assert_eq!(
            store.get(&sv("susp-client"), std::slice::from_ref(&client)),
            Value::Int(0)
        );
        assert_eq!(store.get(&sv("blacklist"), &[client]), Value::Int(0));
    }

    #[test]
    fn log_conflict_rules() {
        let l1 = Log::write(sv("a"));
        let l2 = Log::read(sv("a"));
        assert_eq!(l1.conflict_with(&l2), Some(sv("a")));
        assert_eq!(l2.conflict_with(&l1), Some(sv("a")));
        let l3 = Log::read(sv("b"));
        assert!(l2.consistent(&l3));
        // read/read never conflicts
        assert!(Log::read(sv("a")).consistent(&Log::read(sv("a"))));
    }
}
