//! Abstract syntax of SNAP programs (paper Figure 4).
//!
//! A SNAP program is built from *predicates* (which filter packets and may
//! read state) and *policies* (which may additionally modify packets and
//! state, and compose in parallel or sequence).

use crate::value::{Field, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A global, persistent state variable (array), e.g. `orphan` or `susp-client`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StateVar(pub String);

impl StateVar {
    /// Create a state variable by name.
    pub fn new(name: impl Into<String>) -> Self {
        StateVar(name.into())
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for StateVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for StateVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for StateVar {
    fn from(s: &str) -> Self {
        StateVar::new(s)
    }
}

/// An expression: a value, a packet field, or a vector of expressions
/// (the paper's `e ::= v | f | ⇀e`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A literal value.
    Value(Value),
    /// The value of a packet header field.
    Field(Field),
    /// A vector of sub-expressions.
    Tuple(Vec<Expr>),
}

impl Expr {
    /// All packet fields referenced by this expression.
    pub fn fields(&self) -> BTreeSet<Field> {
        let mut out = BTreeSet::new();
        self.collect_fields(&mut out);
        out
    }

    fn collect_fields(&self, out: &mut BTreeSet<Field>) {
        match self {
            Expr::Value(_) => {}
            Expr::Field(f) => {
                out.insert(f.clone());
            }
            Expr::Tuple(es) => {
                for e in es {
                    e.collect_fields(out);
                }
            }
        }
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Value(v) => write!(f, "{v}"),
            Expr::Field(field) => write!(f, "{field}"),
            Expr::Tuple(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e:?}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<Value> for Expr {
    fn from(v: Value) -> Self {
        Expr::Value(v)
    }
}

impl From<Field> for Expr {
    fn from(f: Field) -> Self {
        Expr::Field(f)
    }
}

impl From<i64> for Expr {
    fn from(i: i64) -> Self {
        Expr::Value(Value::Int(i))
    }
}

impl From<bool> for Expr {
    fn from(b: bool) -> Self {
        Expr::Value(Value::Bool(b))
    }
}

/// A predicate (paper Figure 4, `x, y ∈ Pred`). Predicates never modify the
/// packet or the state; they pass or drop the input packet, possibly reading
/// state along the way.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Pred {
    /// `id` — pass every packet.
    Id,
    /// `drop` — drop every packet.
    Drop,
    /// `f = v` — field test.
    Test(Field, Value),
    /// `¬x` — negation.
    Not(Box<Pred>),
    /// `x | y` — disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// `x & y` — conjunction.
    And(Box<Pred>, Box<Pred>),
    /// `s[⇀e] = e` — state test.
    StateTest {
        /// The state variable read.
        var: StateVar,
        /// Index expressions.
        index: Vec<Expr>,
        /// Expected value.
        value: Expr,
    },
}

impl Pred {
    /// `¬self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pred {
        Pred::Not(Box::new(self))
    }

    /// `self & other`
    pub fn and(self, other: Pred) -> Pred {
        Pred::And(Box::new(self), Box::new(other))
    }

    /// `self | other`
    pub fn or(self, other: Pred) -> Pred {
        Pred::Or(Box::new(self), Box::new(other))
    }

    /// State variables read by this predicate.
    pub fn reads(&self) -> BTreeSet<StateVar> {
        let mut out = BTreeSet::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut BTreeSet<StateVar>) {
        match self {
            Pred::Id | Pred::Drop | Pred::Test(_, _) => {}
            Pred::Not(x) => x.collect_reads(out),
            Pred::Or(x, y) | Pred::And(x, y) => {
                x.collect_reads(out);
                y.collect_reads(out);
            }
            Pred::StateTest { var, .. } => {
                out.insert(var.clone());
            }
        }
    }

    /// Packet fields referenced by this predicate.
    pub fn fields(&self) -> BTreeSet<Field> {
        let mut out = BTreeSet::new();
        self.collect_fields(&mut out);
        out
    }

    fn collect_fields(&self, out: &mut BTreeSet<Field>) {
        match self {
            Pred::Id | Pred::Drop => {}
            Pred::Test(f, _) => {
                out.insert(f.clone());
            }
            Pred::Not(x) => x.collect_fields(out),
            Pred::Or(x, y) | Pred::And(x, y) => {
                x.collect_fields(out);
                y.collect_fields(out);
            }
            Pred::StateTest { index, value, .. } => {
                for e in index {
                    e.collect_fields(out);
                }
                value.collect_fields(out);
            }
        }
    }
}

/// A policy (paper Figure 4, `p, q ∈ Pol`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// A predicate used as a filter.
    Filter(Pred),
    /// `f ← v` — field modification.
    Modify(Field, Value),
    /// `p + q` — parallel composition.
    Par(Box<Policy>, Box<Policy>),
    /// `p ; q` — sequential composition.
    Seq(Box<Policy>, Box<Policy>),
    /// `s[⇀e] ← e` — state modification.
    StateSet {
        /// The state variable written.
        var: StateVar,
        /// Index expressions.
        index: Vec<Expr>,
        /// New value.
        value: Expr,
    },
    /// `s[⇀e]++` — increment.
    StateIncr {
        /// The state variable written.
        var: StateVar,
        /// Index expressions.
        index: Vec<Expr>,
    },
    /// `s[⇀e]--` — decrement.
    StateDecr {
        /// The state variable written.
        var: StateVar,
        /// Index expressions.
        index: Vec<Expr>,
    },
    /// `if a then p else q`.
    If(Pred, Box<Policy>, Box<Policy>),
    /// `atomic(p)` — network transaction; all state in `p` is co-located and
    /// updated atomically.
    Atomic(Box<Policy>),
}

impl Policy {
    /// The identity policy.
    pub fn id() -> Policy {
        Policy::Filter(Pred::Id)
    }

    /// The drop policy.
    pub fn drop() -> Policy {
        Policy::Filter(Pred::Drop)
    }

    /// `self ; other`
    pub fn seq(self, other: Policy) -> Policy {
        Policy::Seq(Box::new(self), Box::new(other))
    }

    /// `self + other`
    pub fn par(self, other: Policy) -> Policy {
        Policy::Par(Box::new(self), Box::new(other))
    }

    /// `atomic(self)`
    pub fn atomic(self) -> Policy {
        Policy::Atomic(Box::new(self))
    }

    /// Sequentially compose a list of policies (`id` when empty).
    pub fn seq_all(policies: impl IntoIterator<Item = Policy>) -> Policy {
        let mut it = policies.into_iter();
        match it.next() {
            None => Policy::id(),
            Some(first) => it.fold(first, |acc, p| acc.seq(p)),
        }
    }

    /// Parallel-compose a list of policies (`drop` when empty).
    pub fn par_all(policies: impl IntoIterator<Item = Policy>) -> Policy {
        let mut it = policies.into_iter();
        match it.next() {
            None => Policy::drop(),
            Some(first) => it.fold(first, |acc, p| acc.par(p)),
        }
    }

    /// State variables read by this policy (including tests in conditionals).
    pub fn reads(&self) -> BTreeSet<StateVar> {
        let mut out = BTreeSet::new();
        self.collect_reads(&mut out);
        out
    }

    fn collect_reads(&self, out: &mut BTreeSet<StateVar>) {
        match self {
            Policy::Filter(x) => x.collect_reads(out),
            Policy::Modify(_, _) => {}
            Policy::Par(p, q) | Policy::Seq(p, q) => {
                p.collect_reads(out);
                q.collect_reads(out);
            }
            Policy::StateSet { .. } | Policy::StateIncr { .. } | Policy::StateDecr { .. } => {}
            Policy::If(a, p, q) => {
                a.collect_reads(out);
                p.collect_reads(out);
                q.collect_reads(out);
            }
            Policy::Atomic(p) => p.collect_reads(out),
        }
    }

    /// State variables written by this policy.
    pub fn writes(&self) -> BTreeSet<StateVar> {
        let mut out = BTreeSet::new();
        self.collect_writes(&mut out);
        out
    }

    fn collect_writes(&self, out: &mut BTreeSet<StateVar>) {
        match self {
            Policy::Filter(_) | Policy::Modify(_, _) => {}
            Policy::Par(p, q) | Policy::Seq(p, q) => {
                p.collect_writes(out);
                q.collect_writes(out);
            }
            Policy::StateSet { var, .. }
            | Policy::StateIncr { var, .. }
            | Policy::StateDecr { var, .. } => {
                out.insert(var.clone());
            }
            Policy::If(_, p, q) => {
                p.collect_writes(out);
                q.collect_writes(out);
            }
            Policy::Atomic(p) => p.collect_writes(out),
        }
    }

    /// All state variables mentioned by this policy (reads ∪ writes).
    pub fn state_vars(&self) -> BTreeSet<StateVar> {
        let mut out = self.reads();
        out.extend(self.writes());
        out
    }

    /// All packet fields referenced by this policy.
    pub fn fields(&self) -> BTreeSet<Field> {
        let mut out = BTreeSet::new();
        self.collect_fields(&mut out);
        out
    }

    fn collect_fields(&self, out: &mut BTreeSet<Field>) {
        match self {
            Policy::Filter(x) => x.collect_fields(out),
            Policy::Modify(f, _) => {
                out.insert(f.clone());
            }
            Policy::Par(p, q) | Policy::Seq(p, q) => {
                p.collect_fields(out);
                q.collect_fields(out);
            }
            Policy::StateSet { index, value, .. } => {
                for e in index {
                    e.collect_fields(out);
                }
                value.collect_fields(out);
            }
            Policy::StateIncr { index, .. } | Policy::StateDecr { index, .. } => {
                for e in index {
                    e.collect_fields(out);
                }
            }
            Policy::If(a, p, q) => {
                a.collect_fields(out);
                p.collect_fields(out);
                q.collect_fields(out);
            }
            Policy::Atomic(p) => p.collect_fields(out),
        }
    }

    /// Size of the AST (number of nodes), useful for reporting and fuzzing.
    pub fn size(&self) -> usize {
        match self {
            Policy::Filter(x) => pred_size(x),
            Policy::Modify(_, _)
            | Policy::StateSet { .. }
            | Policy::StateIncr { .. }
            | Policy::StateDecr { .. } => 1,
            Policy::Par(p, q) | Policy::Seq(p, q) => 1 + p.size() + q.size(),
            Policy::If(a, p, q) => 1 + pred_size(a) + p.size() + q.size(),
            Policy::Atomic(p) => 1 + p.size(),
        }
    }
}

fn pred_size(p: &Pred) -> usize {
    match p {
        Pred::Id | Pred::Drop | Pred::Test(_, _) | Pred::StateTest { .. } => 1,
        Pred::Not(x) => 1 + pred_size(x),
        Pred::Or(x, y) | Pred::And(x, y) => 1 + pred_size(x) + pred_size(y),
    }
}

impl From<Pred> for Policy {
    fn from(p: Pred) -> Self {
        Policy::Filter(p)
    }
}

impl fmt::Debug for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::pred_to_string(self))
    }
}

impl fmt::Debug for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::pretty::policy_to_string(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;

    #[test]
    fn reads_and_writes() {
        // if s[srcip] = 1 then t[dstip] <- 2 else u[srcip]++
        let p = ite(
            state_test("s", vec![field(Field::SrcIp)], int(1)),
            state_set("t", vec![field(Field::DstIp)], int(2)),
            state_incr("u", vec![field(Field::SrcIp)]),
        );
        assert_eq!(p.reads(), [StateVar::new("s")].into_iter().collect());
        assert_eq!(
            p.writes(),
            [StateVar::new("t"), StateVar::new("u")]
                .into_iter()
                .collect()
        );
        assert_eq!(p.state_vars().len(), 3);
    }

    #[test]
    fn fields_collection() {
        let p = test(Field::DstIp, Value::prefix(10, 0, 6, 0, 24))
            .and(test(Field::SrcPort, Value::Int(53)));
        let fields = p.fields();
        assert!(fields.contains(&Field::DstIp));
        assert!(fields.contains(&Field::SrcPort));
        assert_eq!(fields.len(), 2);
    }

    #[test]
    fn seq_all_and_par_all() {
        assert_eq!(Policy::seq_all(vec![]), Policy::id());
        assert_eq!(Policy::par_all(vec![]), Policy::drop());
        let p = Policy::seq_all(vec![Policy::id(), Policy::drop()]);
        assert_eq!(p, Policy::id().seq(Policy::drop()));
    }

    #[test]
    fn policy_size() {
        let p = Policy::id()
            .seq(Policy::drop())
            .par(modify(Field::OutPort, Value::Int(1)));
        assert_eq!(p.size(), 1 + (1 + 1 + 1) + 1);
    }

    #[test]
    fn expr_fields() {
        let e = Expr::Tuple(vec![
            Expr::Field(Field::SrcIp),
            Expr::Value(Value::Int(1)),
            Expr::Field(Field::DstIp),
        ]);
        assert_eq!(e.fields().len(), 2);
    }
}
