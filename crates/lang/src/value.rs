//! Values and header fields of the SNAP language.
//!
//! SNAP values (paper §3, appendix A) are "packet-related fields (IP
//! addresses, TCP ports, MAC addresses, DNS domains) along with integers,
//! booleans and vectors of such values". We add IP prefixes (used by tests
//! such as `dstip = 10.0.6.0/24`) and symbolic constants (used by policies
//! such as the TCP state machine, e.g. `ESTABLISHED`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 32-bit IPv4 address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Build an address from dotted-quad octets.
    pub fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(u32::from(a) << 24 | u32::from(b) << 16 | u32::from(c) << 8 | u32::from(d))
    }

    /// The four octets of the address, most significant first.
    pub fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Parse a dotted-quad string such as `10.0.6.0`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split('.');
        let a: u8 = parts.next()?.parse().ok()?;
        let b: u8 = parts.next()?.parse().ok()?;
        let c: u8 = parts.next()?.parse().ok()?;
        let d: u8 = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(Ipv4::new(a, b, c, d))
    }
}

impl fmt::Debug for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An IPv4 prefix, e.g. `10.0.6.0/24`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    /// Network address (host bits are ignored for matching but preserved for display).
    pub addr: Ipv4,
    /// Prefix length in bits, `0..=32`.
    pub len: u8,
}

impl Prefix {
    /// Build a prefix, masking the host bits of `addr`.
    pub fn new(addr: Ipv4, len: u8) -> Self {
        assert!(len <= 32, "prefix length must be <= 32");
        Prefix {
            addr: Ipv4(addr.0 & Self::mask(len)),
            len,
        }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// Does `ip` fall inside this prefix?
    pub fn contains(&self, ip: Ipv4) -> bool {
        (ip.0 & Self::mask(self.len)) == self.addr.0
    }

    /// Is `other` a sub-prefix of (or equal to) this prefix?
    pub fn contains_prefix(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains(other.addr)
    }

    /// Do the two prefixes share any address?
    pub fn overlaps(&self, other: &Prefix) -> bool {
        self.contains_prefix(other) || other.contains_prefix(self)
    }

    /// Parse a `a.b.c.d/len` string.
    pub fn parse(s: &str) -> Option<Self> {
        let (addr, len) = s.split_once('/')?;
        let addr = Ipv4::parse(addr)?;
        let len: u8 = len.parse().ok()?;
        if len > 32 {
            return None;
        }
        Some(Prefix::new(addr, len))
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A SNAP value.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A signed integer (counters, ports, thresholds, TTLs, ...).
    Int(i64),
    /// A boolean (used pervasively by the Appendix F policies).
    Bool(bool),
    /// An IPv4 address.
    Ip(Ipv4),
    /// An IPv4 prefix; only meaningful inside tests such as `dstip = 10.0.6.0/24`.
    Prefix(Prefix),
    /// A string (DNS names, HTTP user agents, payload content, ...).
    Str(String),
    /// A symbolic constant such as `ESTABLISHED`, `SYN` or `threshold`.
    Symbol(String),
    /// A vector of values (the paper's `⇀v`).
    Tuple(Vec<Value>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for symbolic constants.
    pub fn sym(s: impl Into<String>) -> Self {
        Value::Symbol(s.into())
    }

    /// Convenience constructor for IP addresses from octets.
    pub fn ip(a: u8, b: u8, c: u8, d: u8) -> Self {
        Value::Ip(Ipv4::new(a, b, c, d))
    }

    /// Convenience constructor for IP prefixes from octets and length.
    pub fn prefix(a: u8, b: u8, c: u8, d: u8, len: u8) -> Self {
        Value::Prefix(Prefix::new(Ipv4::new(a, b, c, d), len))
    }

    /// True if this value "matches" `other` in a test `f = v` sense:
    /// values are equal, or `self` is a prefix containing `other`'s address.
    pub fn matches(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Prefix(p), Value::Ip(ip)) => p.contains(*ip),
            (Value::Ip(ip), Value::Prefix(p)) => p.contains(*ip),
            (Value::Prefix(a), Value::Prefix(b)) => a == b,
            (a, b) => a == b,
        }
    }

    /// Is this value an integer, and if so which one?
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Is this value truthy (used by bare state tests such as `orphan[a][b]`)?
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            _ => true,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{}", if *b { "True" } else { "False" }),
            Value::Ip(ip) => write!(f, "{ip}"),
            Value::Prefix(p) => write!(f, "{p}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Symbol(s) => write!(f, "{s}"),
            Value::Tuple(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<Ipv4> for Value {
    fn from(ip: Ipv4) -> Self {
        Value::Ip(ip)
    }
}

impl From<Prefix> for Value {
    fn from(p: Prefix) -> Self {
        Value::Prefix(p)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

/// A packet header field.
///
/// The paper assumes "a rich set of fields, e.g. DNS response data"
/// (§2.1 footnote 1); programmable parsers such as P4's make the exact set
/// configurable, so `Field::Custom` keeps the set open-ended while the common
/// fields get dedicated variants.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the variant names are the documentation (header field names)
pub enum Field {
    SrcIp,
    DstIp,
    SrcPort,
    DstPort,
    Proto,
    TcpFlags,
    /// OBS ingress port (external port of the one big switch).
    InPort,
    /// OBS egress port.
    OutPort,
    DnsRdata,
    DnsQname,
    DnsTtl,
    FtpPort,
    SmtpMta,
    HttpUserAgent,
    SessionId,
    MpegFrameType,
    Content,
    /// Any other field, by name.
    Custom(String),
}

impl Field {
    /// The canonical surface-syntax name of this field.
    pub fn name(&self) -> &str {
        match self {
            Field::SrcIp => "srcip",
            Field::DstIp => "dstip",
            Field::SrcPort => "srcport",
            Field::DstPort => "dstport",
            Field::Proto => "proto",
            Field::TcpFlags => "tcp.flags",
            Field::InPort => "inport",
            Field::OutPort => "outport",
            Field::DnsRdata => "dns.rdata",
            Field::DnsQname => "dns.qname",
            Field::DnsTtl => "dns.ttl",
            Field::FtpPort => "ftp.PORT",
            Field::SmtpMta => "smtp.MTA",
            Field::HttpUserAgent => "http.user-agent",
            Field::SessionId => "sid",
            Field::MpegFrameType => "mpeg.frame-type",
            Field::Content => "content",
            Field::Custom(s) => s,
        }
    }

    /// Look a field up by its surface-syntax name; unknown names map to
    /// `Field::Custom`.
    pub fn from_name(name: &str) -> Self {
        match name {
            "srcip" => Field::SrcIp,
            "dstip" => Field::DstIp,
            "srcport" => Field::SrcPort,
            "dstport" => Field::DstPort,
            "proto" => Field::Proto,
            "tcp.flags" => Field::TcpFlags,
            "inport" => Field::InPort,
            "outport" => Field::OutPort,
            "dns.rdata" => Field::DnsRdata,
            "dns.qname" => Field::DnsQname,
            "dns.ttl" => Field::DnsTtl,
            "ftp.PORT" => Field::FtpPort,
            "smtp.MTA" => Field::SmtpMta,
            "http.user-agent" => Field::HttpUserAgent,
            "sid" => Field::SessionId,
            "mpeg.frame-type" => Field::MpegFrameType,
            "content" => Field::Content,
            other => Field::Custom(other.to_string()),
        }
    }

    /// Is `name` one of the built-in field names?
    pub fn is_known_name(name: &str) -> bool {
        !matches!(Field::from_name(name), Field::Custom(_))
    }

    /// All built-in fields (useful for random packet generation in tests).
    pub fn all_builtin() -> Vec<Field> {
        vec![
            Field::SrcIp,
            Field::DstIp,
            Field::SrcPort,
            Field::DstPort,
            Field::Proto,
            Field::TcpFlags,
            Field::InPort,
            Field::OutPort,
            Field::DnsRdata,
            Field::DnsQname,
            Field::DnsTtl,
            Field::FtpPort,
            Field::SmtpMta,
            Field::HttpUserAgent,
            Field::SessionId,
            Field::MpegFrameType,
            Field::Content,
        ]
    }
}

impl fmt::Debug for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_roundtrip() {
        let ip = Ipv4::new(10, 0, 6, 42);
        assert_eq!(ip.octets(), [10, 0, 6, 42]);
        assert_eq!(Ipv4::parse("10.0.6.42"), Some(ip));
        assert_eq!(format!("{ip}"), "10.0.6.42");
        assert_eq!(Ipv4::parse("300.1.1.1"), None);
        assert_eq!(Ipv4::parse("1.2.3"), None);
        assert_eq!(Ipv4::parse("1.2.3.4.5"), None);
    }

    #[test]
    fn prefix_contains() {
        let p = Prefix::parse("10.0.6.0/24").unwrap();
        assert!(p.contains(Ipv4::new(10, 0, 6, 1)));
        assert!(p.contains(Ipv4::new(10, 0, 6, 255)));
        assert!(!p.contains(Ipv4::new(10, 0, 7, 1)));
        let q = Prefix::parse("10.0.6.128/25").unwrap();
        assert!(p.contains_prefix(&q));
        assert!(!q.contains_prefix(&p));
        assert!(p.overlaps(&q));
        let r = Prefix::parse("10.0.3.0/25").unwrap();
        assert!(!p.overlaps(&r));
    }

    #[test]
    fn prefix_zero_length_contains_everything() {
        let p = Prefix::new(Ipv4::new(0, 0, 0, 0), 0);
        assert!(p.contains(Ipv4::new(255, 255, 255, 255)));
        assert!(p.contains(Ipv4::new(0, 0, 0, 1)));
    }

    #[test]
    fn prefix_masks_host_bits() {
        let p = Prefix::new(Ipv4::new(10, 0, 6, 77), 24);
        assert_eq!(p.addr, Ipv4::new(10, 0, 6, 0));
    }

    #[test]
    fn value_matches_prefix() {
        let pre = Value::prefix(10, 0, 6, 0, 24);
        assert!(pre.matches(&Value::ip(10, 0, 6, 9)));
        assert!(!pre.matches(&Value::ip(10, 0, 5, 9)));
        assert!(Value::ip(10, 0, 6, 9).matches(&pre));
        assert!(pre.matches(&pre));
        assert!(!pre.matches(&Value::Int(3)));
    }

    #[test]
    fn value_matches_exact() {
        assert!(Value::Int(53).matches(&Value::Int(53)));
        assert!(!Value::Int(53).matches(&Value::Int(54)));
        assert!(Value::sym("SYN").matches(&Value::sym("SYN")));
        assert!(!Value::Bool(true).matches(&Value::Int(1)));
    }

    #[test]
    fn value_truthiness() {
        assert!(Value::Bool(true).truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(7).truthy());
        assert!(Value::str("x").truthy());
    }

    #[test]
    fn field_name_roundtrip() {
        for f in Field::all_builtin() {
            assert_eq!(Field::from_name(f.name()), f);
        }
        let c = Field::from_name("my.weird.field");
        assert_eq!(c, Field::Custom("my.weird.field".to_string()));
        assert_eq!(c.name(), "my.weird.field");
        assert!(Field::is_known_name("dns.rdata"));
        assert!(!Field::is_known_name("frobnicator"));
    }

    #[test]
    fn value_ordering_is_total() {
        let mut vs = vec![
            Value::Int(3),
            Value::Bool(true),
            Value::ip(1, 2, 3, 4),
            Value::str("a"),
            Value::sym("Z"),
            Value::Tuple(vec![Value::Int(1)]),
        ];
        vs.sort();
        vs.dedup();
        assert_eq!(vs.len(), 6);
    }
}
