//! Error types shared by the SNAP language front end.

use crate::ast::StateVar;
use crate::value::{Field, Value};
use std::fmt;

/// Errors raised while evaluating a program with the formal semantics
/// (appendix A). The `⊥` cases of the paper's `eval` become `Err` values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// An expression read a field the packet does not carry.
    MissingField(Field),
    /// A read/write or write/write conflict between the two sides of a
    /// parallel composition (`p + q`).
    ParallelConflict(StateVar),
    /// Inconsistent runs of the right-hand side of a sequential composition
    /// (`p ; q`) over the multiple packets produced by `p`.
    SequentialConflict(StateVar),
    /// `s[e]++` or `s[e]--` applied to a non-integer value.
    NotAnInteger {
        /// The state variable being incremented or decremented.
        var: StateVar,
        /// The offending current value.
        value: Value,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingField(field) => {
                write!(f, "packet does not carry field `{field}`")
            }
            EvalError::ParallelConflict(var) => write!(
                f,
                "read/write or write/write conflict on state variable `{var}` in a parallel composition"
            ),
            EvalError::SequentialConflict(var) => write!(
                f,
                "inconsistent updates to state variable `{var}` across the packets produced by the left side of a sequential composition"
            ),
            EvalError::NotAnInteger { var, value } => write!(
                f,
                "increment/decrement of state variable `{var}` whose current value `{value}` is not an integer"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// Errors raised while parsing SNAP surface syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}
