//! # snap-lang
//!
//! The SNAP stateful network programming language, after
//! *"SNAP: Stateful Network-Wide Abstractions for Packet Processing"*
//! (SIGCOMM 2016).
//!
//! SNAP programs are written against **one big switch** (OBS): they read and
//! write packet header fields and global, persistent, array-valued state
//! variables, and compose in parallel (`p + q`) and sequence (`p ; q`).
//! This crate provides:
//!
//! * the abstract syntax ([`Policy`], [`Pred`], [`Expr`], [`StateVar`]),
//! * packets and values ([`Packet`], [`Value`], [`Field`]),
//! * the network state ([`Store`]),
//! * the formal evaluation semantics of the paper's appendix A
//!   ([`eval::eval`]), including detection of ambiguous (conflicting)
//!   compositions,
//! * a parser for the paper's surface syntax ([`parser::parse_policy`]) and a
//!   matching pretty printer ([`pretty::policy_to_string`]),
//! * an ergonomic builder DSL ([`builder`]).
//!
//! The compiler that maps these programs onto a physical topology lives in
//! the `snap-core` crate; this crate is purely the language.
//!
//! ## Example
//!
//! ```
//! use snap_lang::prelude::*;
//!
//! // Count packets per ingress port and forward everything to port 6.
//! let program = state_incr("count", vec![field(Field::InPort)])
//!     .seq(modify(Field::OutPort, Value::Int(6)));
//!
//! let pkt = Packet::new().with(Field::InPort, 3);
//! let result = eval(&program, &Store::new(), &pkt).unwrap();
//! assert_eq!(result.packets.len(), 1);
//! assert_eq!(
//!     result.store.get(&StateVar::new("count"), &[Value::Int(3)]),
//!     Value::Int(1)
//! );
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod error;
pub mod eval;
pub mod packet;
pub mod parser;
pub mod pretty;
pub mod state;
pub mod value;

pub use ast::{Expr, Policy, Pred, StateVar};
pub use error::{EvalError, ParseError};
pub use eval::{
    eval, eval_expr, eval_index, eval_index_into, eval_pred, eval_trace, EvalResult, Log,
};
pub use packet::Packet;
pub use parser::{parse_policy, parse_pred};
pub use state::{StateTable, Store};
pub use value::{Field, Ipv4, Prefix, Value};

/// A convenient glob-import for users of the language API.
pub mod prelude {
    pub use crate::ast::{Expr, Policy, Pred, StateVar};
    pub use crate::builder::*;
    pub use crate::error::{EvalError, ParseError};
    pub use crate::eval::{eval, eval_trace, EvalResult, Log};
    pub use crate::packet::Packet;
    pub use crate::parser::{parse_policy, parse_pred};
    pub use crate::pretty::{policy_to_pretty_lines, policy_to_string};
    pub use crate::state::{StateTable, Store};
    pub use crate::value::{Field, Ipv4, Prefix, Value};
}
