//! Pretty printer producing canonical SNAP surface syntax.
//!
//! The output is fully parenthesized so that `parse(pretty(p))` recovers the
//! original AST structurally (a property checked by the round-trip tests in
//! `parser.rs`).

use crate::ast::{Expr, Policy, Pred};
use crate::value::Value;
use std::fmt::Write;

/// Render a value in surface syntax.
pub fn value_to_string(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Bool(true) => "True".to_string(),
        Value::Bool(false) => "False".to_string(),
        Value::Ip(ip) => ip.to_string(),
        Value::Prefix(p) => p.to_string(),
        Value::Str(s) => format!("{s:?}"),
        Value::Symbol(s) => s.clone(),
        Value::Tuple(vs) => {
            let inner: Vec<String> = vs.iter().map(value_to_string).collect();
            format!("({})", inner.join(", "))
        }
    }
}

/// Render an expression in surface syntax.
pub fn expr_to_string(e: &Expr) -> String {
    match e {
        Expr::Value(v) => value_to_string(v),
        Expr::Field(f) => f.name().to_string(),
        Expr::Tuple(es) => {
            let inner: Vec<String> = es.iter().map(expr_to_string).collect();
            format!("({})", inner.join(", "))
        }
    }
}

fn state_ref(var: &crate::ast::StateVar, index: &[Expr]) -> String {
    let mut s = var.name().to_string();
    for e in index {
        let _ = write!(s, "[{}]", expr_to_string(e));
    }
    s
}

/// Render a predicate in surface syntax.
pub fn pred_to_string(p: &Pred) -> String {
    match p {
        Pred::Id => "id".to_string(),
        Pred::Drop => "drop".to_string(),
        Pred::Test(f, v) => format!("{} = {}", f.name(), value_to_string(v)),
        Pred::Not(x) => format!("~({})", pred_to_string(x)),
        Pred::Or(x, y) => format!("({} | {})", pred_to_string(x), pred_to_string(y)),
        Pred::And(x, y) => format!("({} & {})", pred_to_string(x), pred_to_string(y)),
        Pred::StateTest { var, index, value } => {
            format!("{} = {}", state_ref(var, index), expr_to_string(value))
        }
    }
}

/// Render a policy in surface syntax.
pub fn policy_to_string(p: &Policy) -> String {
    match p {
        Policy::Filter(x) => pred_to_string(x),
        Policy::Modify(f, v) => format!("{} <- {}", f.name(), value_to_string(v)),
        Policy::Par(a, b) => format!("({} + {})", policy_to_string(a), policy_to_string(b)),
        Policy::Seq(a, b) => format!("({}; {})", policy_to_string(a), policy_to_string(b)),
        Policy::StateSet { var, index, value } => {
            format!("{} <- {}", state_ref(var, index), expr_to_string(value))
        }
        Policy::StateIncr { var, index } => format!("{}++", state_ref(var, index)),
        Policy::StateDecr { var, index } => format!("{}--", state_ref(var, index)),
        Policy::If(a, p, q) => format!(
            "(if {} then {} else {})",
            pred_to_string(a),
            policy_to_string(p),
            policy_to_string(q)
        ),
        Policy::Atomic(p) => format!("atomic({})", policy_to_string(p)),
    }
}

/// Render a policy as an indented multi-line listing (for documentation and
/// example output; not intended to be re-parsed).
pub fn policy_to_pretty_lines(p: &Policy) -> String {
    let mut out = String::new();
    render_lines(p, 0, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_lines(p: &Policy, depth: usize, out: &mut String) {
    match p {
        Policy::Seq(a, b) => {
            render_lines(a, depth, out);
            let last = out.trim_end_matches('\n').len();
            out.truncate(last);
            out.push_str(";\n");
            render_lines(b, depth, out);
        }
        Policy::Par(a, b) => {
            indent(out, depth);
            out.push_str("(\n");
            render_lines(a, depth + 1, out);
            indent(out, depth);
            out.push_str("+\n");
            render_lines(b, depth + 1, out);
            indent(out, depth);
            out.push_str(")\n");
        }
        Policy::If(a, t, e) => {
            indent(out, depth);
            let _ = writeln!(out, "if {} then", pred_to_string(a));
            render_lines(t, depth + 1, out);
            indent(out, depth);
            out.push_str("else\n");
            render_lines(e, depth + 1, out);
        }
        Policy::Atomic(inner) => {
            indent(out, depth);
            out.push_str("atomic(\n");
            render_lines(inner, depth + 1, out);
            indent(out, depth);
            out.push_str(")\n");
        }
        other => {
            indent(out, depth);
            let _ = writeln!(out, "{}", policy_to_string(other));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::*;
    use crate::value::Field;

    #[test]
    fn simple_forms() {
        assert_eq!(policy_to_string(&id()), "id");
        assert_eq!(policy_to_string(&drop()), "drop");
        assert_eq!(
            policy_to_string(&modify(Field::OutPort, Value::Int(6))),
            "outport <- 6"
        );
        assert_eq!(
            policy_to_string(&state_incr("count", vec![field(Field::InPort)])),
            "count[inport]++"
        );
        assert_eq!(
            pred_to_string(&test_prefix(Field::DstIp, 10, 0, 6, 0, 24)),
            "dstip = 10.0.6.0/24"
        );
    }

    #[test]
    fn composite_forms() {
        let p = ite(
            test(Field::SrcPort, Value::Int(53)),
            state_set("seen", vec![field(Field::DstIp)], Value::Bool(true)),
            id(),
        );
        assert_eq!(
            policy_to_string(&p),
            "(if srcport = 53 then seen[dstip] <- True else id)"
        );
        let q = id().seq(drop()).par(id());
        assert_eq!(policy_to_string(&q), "((id; drop) + id)");
    }

    #[test]
    fn multiline_rendering_mentions_all_parts() {
        let p = ite(
            test(Field::SrcPort, Value::Int(53)),
            state_incr("c", vec![field(Field::DstIp)]).seq(id()),
            drop(),
        );
        let text = policy_to_pretty_lines(&p);
        assert!(text.contains("if srcport = 53 then"));
        assert!(text.contains("c[dstip]++"));
        assert!(text.contains("else"));
        assert!(text.contains("drop"));
    }
}
