//! Capacity bounds of the telemetry plane's two bounded buffers.
//!
//! The soak monitor's bounded-memory invariant leans on the trace ring and
//! the event log never growing past their construction-time capacity, no
//! matter how long the run. This suite fills both far past capacity and
//! pins down the contract: the newest entries are kept, nothing panics,
//! and the eviction count is reported.

use snap_telemetry::{AgentTimings, CommitEvent, EventLog, Telemetry, TraceSampler};

#[test]
fn trace_ring_keeps_newest_and_counts_evictions() {
    let s = TraceSampler::new(1, 8);
    assert_eq!(s.capacity(), 8);
    for i in 0..1000 {
        let t = s.maybe_start(i, 0).expect("every=1 samples all");
        s.finish(t);
    }
    assert_eq!(s.sampled(), 1000);
    assert_eq!(s.dropped(), 1000 - 8);
    let traces = s.traces();
    assert_eq!(traces.len(), 8);
    // Newest 8 survive, oldest first.
    let inports: Vec<usize> = traces.iter().map(|t| t.inport).collect();
    assert_eq!(inports, (992..1000).collect::<Vec<_>>());
}

#[test]
fn trace_ring_under_capacity_drops_nothing() {
    let s = TraceSampler::new(1, 32);
    for i in 0..10 {
        let t = s.maybe_start(i, 0).unwrap();
        s.finish(t);
    }
    assert_eq!(s.sampled(), 10);
    assert_eq!(s.dropped(), 0);
    assert_eq!(s.traces().len(), 10);
}

#[test]
fn degenerate_capacities_are_clamped_to_one() {
    // capacity 0 would make every push evict itself or panic; both buffers
    // clamp to 1 instead.
    let s = TraceSampler::new(1, 0);
    assert_eq!(s.capacity(), 1);
    for i in 0..3 {
        let t = s.maybe_start(i, 0).unwrap();
        s.finish(t);
    }
    assert_eq!(s.traces().len(), 1);
    assert_eq!(s.traces()[0].inport, 2);
    assert_eq!(s.dropped(), 2);

    let log = EventLog::new(0);
    assert_eq!(log.capacity(), 1);
    for epoch in 0..3 {
        log.record(CommitEvent::Compaction {
            epoch,
            reclaimed: 0,
        });
    }
    assert_eq!(log.events().len(), 1);
    assert_eq!(log.events()[0].event.epoch(), 2);
    assert_eq!(log.dropped(), 2);
}

#[test]
fn event_log_keeps_newest_and_counts_evictions() {
    let log = EventLog::new(16);
    assert_eq!(log.capacity(), 16);
    for epoch in 0..500 {
        log.record(CommitEvent::Abort {
            epoch,
            reason: "bounds test".into(),
        });
    }
    assert_eq!(log.recorded(), 500);
    assert_eq!(log.dropped(), 500 - 16);
    let events = log.events();
    assert_eq!(events.len(), 16);
    // Newest 16 survive with their original (monotone) seqs.
    let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, (484..500).collect::<Vec<_>>());
    assert_eq!(events.last().unwrap().event.epoch(), 499);
}

#[test]
fn event_log_under_capacity_drops_nothing() {
    let log = EventLog::new(64);
    for epoch in 0..5 {
        log.record(CommitEvent::Commit {
            epoch,
            migrated_tables: 0,
            micros: 1,
            per_agent: AgentTimings::Full(vec![]),
        });
    }
    assert_eq!(log.recorded(), 5);
    assert_eq!(log.dropped(), 0);
    assert_eq!(log.events().len(), 5);
}

#[test]
fn concurrent_overfill_stays_bounded_and_accounts_every_eviction() {
    let t = Telemetry::with_trace_sampling(1, 4);
    let log = EventLog::new(4);
    std::thread::scope(|scope| {
        for w in 0..4 {
            let t = &t;
            let log = &log;
            scope.spawn(move || {
                for i in 0..250 {
                    let trace = t.tracer().maybe_start(w * 1000 + i, 0).unwrap();
                    t.tracer().finish(trace);
                    log.record(CommitEvent::Compaction {
                        epoch: (w * 1000 + i) as u64,
                        reclaimed: 0,
                    });
                }
            });
        }
    });
    // At quiesce the accounting is exact: everything beyond capacity was
    // evicted, exactly capacity retained.
    assert_eq!(t.tracer().sampled(), 1000);
    assert_eq!(t.tracer().dropped(), 1000 - 4);
    assert_eq!(t.tracer().traces().len(), 4);
    assert_eq!(log.recorded(), 1000);
    assert_eq!(log.dropped(), 1000 - 4);
    let events = log.events();
    assert_eq!(events.len(), 4);
    // Retained seqs are still strictly increasing even under contention.
    assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
}
