//! The metric primitives and the per-instance registry.
//!
//! Every primitive here follows the same **per-worker-shard aggregation
//! contract** (see the crate docs): writes go to a shard owned (in the
//! common case exclusively) by the writing thread with one relaxed atomic
//! RMW and no locks, and the shards are only summed when somebody *reads*
//! the metric — `get()`, a family total, or a [`Registry::snapshot`].
//! Reads are therefore linear in the shard count and may race with
//! concurrent writers: a snapshot is a consistent-enough sum (every write
//! that happened-before the read is included; in-flight writes may or may
//! not be), and once writers quiesce the sum is exact.

use crate::json::{self, JsonMap};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of write shards per sharded metric. Threads are assigned shards
/// round-robin on first use; with at most this many concurrently writing
/// threads every writer owns its shard exclusively, and beyond that the
/// contention degrades gracefully instead of failing.
pub const SHARDS: usize = 16;

/// Round-robin assignment of write shards to threads: a thread picks its
/// shard on its first metric write and keeps it for its lifetime, so every
/// subsequent write is a relaxed RMW on a line no other (recent) thread
/// touches.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    SHARD.with(|cell| {
        let mut s = cell.get();
        if s == usize::MAX {
            s = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            cell.set(s);
        }
        s
    })
}

/// One cache-line-sized counter shard, padded so two shards never share a
/// line (the whole point of sharding).
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// A monotone, sharded counter. Cloning clones the handle, not the value:
/// every clone writes into the same shards.
#[derive(Clone)]
pub struct Counter {
    shards: Arc<[Shard; SHARDS]>,
}

impl Counter {
    /// A fresh counter at zero, unregistered. Registered counters come from
    /// [`Registry::counter`].
    pub fn new() -> Counter {
        Counter {
            shards: Arc::new(std::array::from_fn(|_| Shard::default())),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` to the calling thread's shard — one relaxed RMW, no locks.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sum the shards. Exact once writers quiesce; during concurrent writes
    /// the sum includes every write that happened-before the read.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

/// A point-in-time value (queue depth, epoch, program size). Gauges are
/// written rarely and read rarely, so a single atomic cell is enough — no
/// shards.
#[derive(Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjust the value by a delta.
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets per histogram: bucket 0 holds exact zeros and
/// bucket `b ≥ 1` holds values in `[2^(b-1), 2^b)`, so the full `u64` range
/// is covered.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// One histogram shard: the bucket counts plus the running sum and max,
/// padded to its own cache lines like a counter shard.
#[repr(align(64))]
struct HistShard {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistShard {
    fn default() -> HistShard {
        HistShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The log₂ bucket a value lands in.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// A sharded log-scale (log₂-bucketed) histogram for latency and occupancy
/// style measurements. Recording is three relaxed RMWs on the calling
/// thread's shard; reading merges the shards into a
/// [`HistogramSnapshot`].
#[derive(Clone)]
pub struct Histogram {
    shards: Arc<[HistShard; SHARDS]>,
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            shards: Arc::new(std::array::from_fn(|_| HistShard::default())),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let shard = &self.shards[shard_index()];
        shard.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        shard.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Flush a locally accumulated buffer into the calling thread's shard:
    /// one relaxed RMW per non-empty bucket plus sum and max, however many
    /// observations the buffer holds. See [`LocalHistogram`].
    pub fn merge(&self, local: &LocalHistogram) {
        if local.count == 0 {
            return;
        }
        let shard = &self.shards[shard_index()];
        for (b, &c) in local.buckets.iter().enumerate() {
            if c > 0 {
                shard.buckets[b].fetch_add(c, Ordering::Relaxed);
            }
        }
        shard.sum.fetch_add(local.sum, Ordering::Relaxed);
        shard.max.fetch_max(local.max, Ordering::Relaxed);
    }

    /// Merge the shards into a readable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        let mut sum = 0u64;
        let mut max = 0u64;
        for shard in self.shards.iter() {
            for (b, cell) in shard.buckets.iter().enumerate() {
                buckets[b] += cell.load(Ordering::Relaxed);
            }
            sum += shard.sum.load(Ordering::Relaxed);
            max = max.max(shard.max.load(Ordering::Relaxed));
        }
        let count = buckets.iter().sum();
        let buckets = buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| {
                let lower = if b == 0 { 0 } else { 1u64 << (b - 1) };
                (lower, c)
            })
            .collect();
        HistogramSnapshot {
            count,
            sum,
            max,
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A plain, single-owner accumulation buffer for a [`Histogram`]. Hot
/// loops record into it with ordinary arithmetic (no atomics, no
/// thread-local lookup) and flush once per batch via [`Histogram::merge`],
/// paying the sharded RMWs per *batch* instead of per observation. The
/// aggregation contract is unchanged: the flush lands in the flushing
/// thread's shard, and reads sum the shards as always.
#[derive(Clone)]
pub struct LocalHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    sum: u64,
    max: u64,
    count: u64,
}

impl LocalHistogram {
    /// A fresh, empty buffer.
    pub fn new() -> LocalHistogram {
        LocalHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
            max: 0,
            count: 0,
        }
    }

    /// Record one observation — three plain integer ops.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
    }

    /// Number of buffered observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded since the last [`clear`].
    ///
    /// [`clear`]: LocalHistogram::clear
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Reset the buffer for reuse after a merge.
    pub fn clear(&mut self) {
        *self = LocalHistogram::new();
    }
}

impl Default for LocalHistogram {
    fn default() -> LocalHistogram {
        LocalHistogram::new()
    }
}

/// A merged, read-side view of a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (wrapping is the caller's problem at
    /// `u64` scale).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Non-empty log₂ buckets as `(lower_bound, count)`: bucket 0 is the
    /// exact-zero bucket, bucket with lower bound `2^k` counts values in
    /// `[2^k, 2^(k+1))`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// inside the log₂ bucket holding the target rank. The estimate is
    /// bounded by the bucket's range — at most a factor of 2 off — and is
    /// clamped to the observed `max`, so the tail quantiles of a
    /// single-bucket distribution stay honest. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation (1-based, clamped into range).
        let rank = (q * self.count as f64).max(1.0).min(self.count as f64);
        let mut below = 0u64;
        for &(lower, count) in &self.buckets {
            let upto = below + count;
            if (upto as f64) >= rank {
                if lower == 0 {
                    return 0.0;
                }
                // Interpolate within [lower, 2*lower), assuming observations
                // spread uniformly across the bucket.
                let into = (rank - below as f64) / count as f64;
                let est = lower as f64 * (1.0 + into);
                return est.min(self.max as f64);
            }
            below = upto;
        }
        self.max as f64
    }

    /// The (p50, p90, p99) percentile estimates — what
    /// [`MetricsSnapshot::to_json`] exports per histogram.
    pub fn percentiles(&self) -> (f64, f64, f64) {
        (
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
        )
    }

    /// The interval histogram between `prev` (an earlier snapshot of the
    /// same histogram) and `self`: bucket-wise saturating difference of
    /// counts and sum. `max` cannot be diffed from log₂ buckets, so the
    /// delta keeps the running (lifetime) max — an over-estimate for the
    /// interval, documented rather than hidden.
    pub fn delta_since(&self, prev: &HistogramSnapshot) -> HistogramSnapshot {
        let prev_by_lower: BTreeMap<u64, u64> = prev.buckets.iter().copied().collect();
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .map(|&(lower, count)| {
                (
                    lower,
                    count.saturating_sub(prev_by_lower.get(&lower).copied().unwrap_or(0)),
                )
            })
            .filter(|&(_, c)| c > 0)
            .collect();
        HistogramSnapshot {
            count: buckets.iter().map(|&(_, c)| c).sum(),
            sum: self.sum.saturating_sub(prev.sum),
            max: self.max,
            buckets,
        }
    }
}

/// A dense family of counters sharing one name, indexed by a small integer
/// (switch id, port id) with a human label per index. The per-index
/// counters are sharded exactly like [`Counter`]; use it when the hot path
/// already has a dense index and a `BTreeMap` lookup per packet would be
/// absurd.
#[derive(Clone)]
pub struct CounterFamily {
    inner: Arc<FamilyInner>,
}

struct FamilyInner {
    labels: Vec<String>,
    /// `SHARDS` rows of `labels.len()` cells each. Rows of different shards
    /// are separate allocations, so two threads on different shards never
    /// share a line even for neighbouring indices.
    rows: Vec<Box<[AtomicU64]>>,
}

impl CounterFamily {
    /// A family with one counter per label, all zero.
    pub fn new(labels: Vec<String>) -> CounterFamily {
        let len = labels.len();
        let rows = (0..SHARDS)
            .map(|_| (0..len).map(|_| AtomicU64::new(0)).collect())
            .collect();
        CounterFamily {
            inner: Arc::new(FamilyInner { labels, rows }),
        }
    }

    /// Number of indexed counters.
    pub fn len(&self) -> usize {
        self.inner.labels.len()
    }

    /// Is the family empty?
    pub fn is_empty(&self) -> bool {
        self.inner.labels.is_empty()
    }

    /// The label of index `idx`.
    pub fn label(&self, idx: usize) -> &str {
        &self.inner.labels[idx]
    }

    /// Add one at `idx`.
    #[inline]
    pub fn inc(&self, idx: usize) {
        self.add(idx, 1);
    }

    /// Add `n` at `idx` — one relaxed RMW on the calling thread's shard
    /// row. Out-of-range indices are ignored (a family sized off a topology
    /// can never be behind, but defensive beats a hot-path panic).
    #[inline]
    pub fn add(&self, idx: usize, n: u64) {
        if let Some(cell) = self.inner.rows[shard_index()].get(idx) {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Sum the shards of index `idx`.
    pub fn get(&self, idx: usize) -> u64 {
        self.inner
            .rows
            .iter()
            .map(|row| row.get(idx).map_or(0, |c| c.load(Ordering::Relaxed)))
            .sum()
    }

    /// Every `(label, value)` pair, in index order.
    pub fn values(&self) -> Vec<(String, u64)> {
        (0..self.len())
            .map(|i| (self.inner.labels[i].clone(), self.get(i)))
            .collect()
    }

    /// Sum over all indices.
    pub fn total(&self) -> u64 {
        (0..self.len()).map(|i| self.get(i)).sum()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    families: Mutex<BTreeMap<String, CounterFamily>>,
}

/// A per-instance registry of named metrics.
///
/// Registration (`counter("driver.packets")`) is get-or-create under a
/// short lock and returns a cheap cloneable handle; hot paths register
/// once at construction time and then write through the handle without
/// ever touching the registry again. Cloning the registry clones the
/// handle — two clones see the same metrics.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .counters
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .gauges
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .histograms
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the counter family named `name`. If the family already
    /// exists it is returned as-is (its labels win); otherwise it is
    /// created with `labels`.
    pub fn counter_family(&self, name: &str, labels: &[String]) -> CounterFamily {
        self.inner
            .families
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| CounterFamily::new(labels.to_vec()))
            .clone()
    }

    /// Read every registered metric into a [`MetricsSnapshot`] (with empty
    /// trace and event sections — [`crate::Telemetry::snapshot`] fills
    /// those).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .inner
                .counters
                .lock()
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            families: self
                .inner
                .families
                .lock()
                .iter()
                .map(|(k, f)| (k.clone(), f.values()))
                .collect(),
            traces: Vec::new(),
            events: Vec::new(),
            taken_at: Some(std::time::Instant::now()),
        }
    }
}

/// A point-in-time, owned view of everything a [`crate::Telemetry`]
/// instance knows: metric values, sampled packet traces and the commit
/// event log. Plane-level helpers may append computed entries (egress
/// queue stats, program shape gauges) before export — the fields are
/// public precisely so a snapshot can be *enriched* after the registry
/// read.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Counter families by name, each a `(label, value)` list in index
    /// order.
    pub families: BTreeMap<String, Vec<(String, u64)>>,
    /// Sampled packet traces, oldest first.
    pub traces: Vec<crate::PacketTrace>,
    /// Distribution-plane commit events, in record order.
    pub events: Vec<crate::EventRecord>,
    /// When the registry was read, so [`MetricsSnapshot::delta`] can derive
    /// per-second rates. `None` for hand-built snapshots.
    pub taken_at: Option<std::time::Instant>,
}

impl MetricsSnapshot {
    /// Serialize the snapshot as a self-contained JSON document (the
    /// machine-readable `BENCH_*`-style telemetry file).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let mut top = JsonMap::new(&mut out, 1);
        top.key("counters");
        json::write_u64_map(top.out(), &self.counters, 2);
        top.key("gauges");
        json::write_i64_map(top.out(), &self.gauges, 2);
        top.key("histograms");
        {
            let out = top.out();
            out.push_str("{\n");
            let mut map = JsonMap::new(out, 2);
            for (name, h) in &self.histograms {
                map.key(name);
                let out = map.out();
                let (p50, p90, p99) = h.percentiles();
                let _ = write!(
                    out,
                    "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.3}, \"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \"buckets\": [",
                    h.count,
                    h.sum,
                    h.max,
                    h.mean(),
                    p50,
                    p90,
                    p99
                );
                for (i, (lower, count)) in h.buckets.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "[{lower}, {count}]");
                }
                out.push_str("]}");
            }
            map.finish("}");
        }
        top.key("families");
        {
            let out = top.out();
            out.push_str("{\n");
            let mut map = JsonMap::new(out, 2);
            for (name, entries) in &self.families {
                map.key(name);
                json::write_u64_pairs(map.out(), entries, 3);
            }
            map.finish("}");
        }
        top.key("traces");
        {
            let out = top.out();
            out.push('[');
            for (i, t) in self.traces.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n    ");
                t.write_json(out);
            }
            if !self.traces.is_empty() {
                out.push_str("\n  ");
            }
            out.push(']');
        }
        top.key("events");
        {
            let out = top.out();
            out.push('[');
            for (i, e) in self.events.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n    ");
                e.write_json(out);
            }
            if !self.events.is_empty() {
                out.push_str("\n  ");
            }
            out.push(']');
        }
        top.finish("}");
        out.push('\n');
        out
    }

    /// A human-readable multi-line rendering (what `telemetry_tour`
    /// prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== counters ==");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "  {name:<40} {v}");
        }
        let _ = writeln!(out, "== gauges ==");
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "  {name:<40} {v}");
        }
        let _ = writeln!(out, "== histograms ==");
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  {name:<40} count={} mean={:.1} p50={:.0} p90={:.0} p99={:.0} max={}",
                h.count,
                h.mean(),
                h.percentile(0.50),
                h.percentile(0.90),
                h.percentile(0.99),
                h.max
            );
        }
        let _ = writeln!(out, "== families ==");
        for (name, entries) in &self.families {
            let _ = writeln!(out, "  {name}:");
            for (label, v) in entries {
                if *v > 0 {
                    let _ = writeln!(out, "    {label:<38} {v}");
                }
            }
        }
        let _ = writeln!(
            out,
            "== traces == ({} sampled, showing ring)",
            self.traces.len()
        );
        for t in &self.traces {
            let _ = writeln!(out, "{}", t.render());
        }
        let _ = writeln!(out, "== events == ({} recorded)", self.events.len());
        for e in &self.events {
            let _ = writeln!(out, "  {}", e.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_threads_exactly() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1030);
        assert_eq!(s.max, 1024);
        // 0 → zero bucket; 1 → [1,2); 2,3 → [2,4); 1024 → [1024,2048).
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 2), (1024, 1)]);
    }

    #[test]
    fn families_index_and_total() {
        let f = CounterFamily::new(vec!["a".into(), "b".into()]);
        f.add(0, 3);
        f.inc(1);
        f.add(7, 100); // out of range: ignored
        assert_eq!(f.get(0), 3);
        assert_eq!(f.get(1), 1);
        assert_eq!(f.total(), 4);
        assert_eq!(f.values(), vec![("a".into(), 3), ("b".into(), 1)]);
    }

    #[test]
    fn registry_handles_are_shared_and_snapshot_reads_them() {
        let r = Registry::new();
        let c1 = r.counter("x");
        let c2 = r.counter("x");
        c1.inc();
        c2.inc();
        r.gauge("g").set(-5);
        r.histogram("h").record(7);
        let snap = r.snapshot();
        assert_eq!(snap.counters["x"], 2);
        assert_eq!(snap.gauges["g"], -5);
        assert_eq!(snap.histograms["h"].count, 1);
        // Two registry clones are the same registry.
        let r2 = r.clone();
        r2.counter("x").inc();
        assert_eq!(r.counter("x").get(), 3);
    }

    #[test]
    fn snapshot_json_is_well_formed_enough() {
        let r = Registry::new();
        r.counter("a\"b").add(1);
        r.counter_family("fam", &["s\\1".into()]).inc(0);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"a\\\"b\": 1"));
        assert!(json.contains("\"s\\\\1\": 1"));
        assert!(json.trim_end().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
