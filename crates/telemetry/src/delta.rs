//! Interval diffs between two [`MetricsSnapshot`]s.
//!
//! A soak monitor (or any periodic scraper) samples
//! [`crate::Telemetry::snapshot`] on a fixed interval; the difference of
//! two consecutive snapshots is the *interval view* — how many packets,
//! deliveries, state writes and commits landed in that window, at what
//! rate. [`MetricsSnapshot::delta`] computes that view: saturating diffs
//! for counters and counter families, interval histograms
//! ([`HistogramSnapshot::delta_since`]), point-in-time gauges carried
//! through, and the event-log suffix new since the previous snapshot
//! (identified by the records' monotone sequence numbers, so a bounded,
//! partially evicted log still diffs correctly).
//!
//! The sharded-registry aggregation contract carries over: a snapshot
//! taken while writers are running includes every write that
//! happened-before the read and may miss in-flight ones, so an interval
//! delta is a consistent-enough window, not an exact one — a write missed
//! by interval N's read is included in interval N+1's. Sums over all
//! intervals plus the final quiesced snapshot are exact.

use crate::registry::{HistogramSnapshot, MetricsSnapshot};
use crate::EventRecord;
use std::collections::BTreeMap;
use std::time::Duration;

/// The difference between two [`MetricsSnapshot`]s of the same telemetry
/// instance — see the module docs.
#[derive(Clone, Debug, Default)]
pub struct SnapshotDelta {
    /// Wall-clock time between the two snapshots (zero when either side
    /// was built by hand and carries no timestamp).
    pub elapsed: Duration,
    /// Per-counter increase over the interval (saturating: a counter
    /// absent from the older snapshot diffs against zero).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values *now* — gauges are points in time, not accumulations,
    /// so the newer snapshot's reading is carried through undiffed.
    pub gauges: BTreeMap<String, i64>,
    /// Interval histograms: observations recorded during the window.
    /// `max` is the lifetime max, not the interval's (see
    /// [`HistogramSnapshot::delta_since`]).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Per-row increase of every counter family over the interval.
    pub families: BTreeMap<String, Vec<(String, u64)>>,
    /// Event records new since the previous snapshot (sequence number
    /// greater than any the previous snapshot retained).
    pub events: Vec<EventRecord>,
}

impl MetricsSnapshot {
    /// The interval view between `prev` (an earlier snapshot of the same
    /// instance) and `self`. Counters and families diff saturating — a
    /// metric registered mid-interval diffs against zero, and a snapshot
    /// pair accidentally passed in the wrong order yields zeros rather
    /// than wrapping.
    pub fn delta(&self, prev: &MetricsSnapshot) -> SnapshotDelta {
        let elapsed = match (prev.taken_at, self.taken_at) {
            (Some(a), Some(b)) => b.saturating_duration_since(a),
            _ => Duration::ZERO,
        };
        let counters = self
            .counters
            .iter()
            .map(|(name, &now)| {
                let before = prev.counters.get(name).copied().unwrap_or(0);
                (name.clone(), now.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, now)| {
                let delta = match prev.histograms.get(name) {
                    Some(before) => now.delta_since(before),
                    None => now.clone(),
                };
                (name.clone(), delta)
            })
            .collect();
        let families = self
            .families
            .iter()
            .map(|(name, rows)| {
                let before: BTreeMap<&str, u64> = prev
                    .families
                    .get(name)
                    .map(|rows| rows.iter().map(|(l, v)| (l.as_str(), *v)).collect())
                    .unwrap_or_default();
                let diffed = rows
                    .iter()
                    .map(|(label, now)| {
                        let b = before.get(label.as_str()).copied().unwrap_or(0);
                        (label.clone(), now.saturating_sub(b))
                    })
                    .collect();
                (name.clone(), diffed)
            })
            .collect();
        let last_seen = prev.events.last().map(|e| e.seq);
        let events = self
            .events
            .iter()
            .filter(|e| last_seen.is_none_or(|seq| e.seq > seq))
            .cloned()
            .collect();
        SnapshotDelta {
            elapsed,
            counters,
            gauges: self.gauges.clone(),
            histograms,
            families,
            events,
        }
    }
}

impl SnapshotDelta {
    /// The interval length in seconds.
    pub fn secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }

    /// A counter's increase over the interval (0 when unregistered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A counter's per-second rate over the interval (0 when the interval
    /// has no measurable duration).
    pub fn rate(&self, name: &str) -> f64 {
        per_second(self.counter(name), self.elapsed)
    }

    /// A gauge's value at the newer snapshot (0 when unregistered).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Sum of a counter family's per-row increases over the interval.
    pub fn family_total(&self, name: &str) -> u64 {
        self.families
            .get(name)
            .map(|rows| rows.iter().map(|(_, v)| v).sum())
            .unwrap_or(0)
    }

    /// A family total's per-second rate over the interval.
    pub fn family_rate(&self, name: &str) -> f64 {
        per_second(self.family_total(name), self.elapsed)
    }

    /// `numerator_family / denominator_family` over the interval (0 when
    /// the denominator saw no traffic) — e.g. the shard contention ratio
    /// `store.shard.contended / store.shard.acquisitions`.
    pub fn family_ratio(&self, numerator: &str, denominator: &str) -> f64 {
        let d = self.family_total(denominator);
        if d == 0 {
            0.0
        } else {
            self.family_total(numerator) as f64 / d as f64
        }
    }
}

fn per_second(count: u64, elapsed: Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        count as f64 / secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AgentTimings, CommitEvent, Telemetry};

    #[test]
    fn delta_diffs_counters_families_histograms_and_events() {
        let t = Telemetry::new();
        let r = t.registry();
        r.counter("c").add(5);
        r.gauge("g").set(10);
        r.histogram("h").record(4);
        r.counter_family("f", &["a".into(), "b".into()]).add(0, 2);
        t.events().record(CommitEvent::Commit {
            epoch: 1,
            migrated_tables: 0,
            micros: 3,
            per_agent: AgentTimings::Full(vec![]),
        });
        let before = t.snapshot();

        r.counter("c").add(7);
        r.gauge("g").set(4);
        r.histogram("h").record(4);
        r.histogram("h").record(100);
        r.counter_family("f", &[]).add(1, 9);
        t.events().record(CommitEvent::Abort {
            epoch: 2,
            reason: "x".into(),
        });
        let after = t.snapshot();

        let d = after.delta(&before);
        assert_eq!(d.counter("c"), 7);
        assert_eq!(d.counter("missing"), 0);
        assert_eq!(d.gauge("g"), 4);
        assert_eq!(d.family_total("f"), 9);
        assert_eq!(
            d.families["f"],
            vec![("a".to_string(), 0), ("b".to_string(), 9)]
        );
        let h = &d.histograms["h"];
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 104);
        // Only the events recorded after `before` survive the diff.
        assert_eq!(d.events.len(), 1);
        assert_eq!(d.events[0].event.epoch(), 2);
        assert!(d.elapsed <= after.taken_at.unwrap().elapsed() + d.elapsed);
    }

    #[test]
    fn rates_derive_from_the_snapshot_timestamps() {
        let t = Telemetry::new();
        t.registry().counter("c").add(100);
        let before = t.snapshot();
        t.registry().counter("c").add(100);
        std::thread::sleep(Duration::from_millis(20));
        let after = t.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.counter("c"), 100);
        assert!(d.secs() >= 0.019, "elapsed {:?}", d.elapsed);
        let rate = d.rate("c");
        assert!(rate > 0.0 && rate <= 100.0 / 0.019);
        // A hand-built snapshot has no timestamp: rates degrade to zero
        // instead of dividing by zero.
        let blank = MetricsSnapshot::default();
        let d2 = after.delta(&blank);
        assert_eq!(d2.secs(), 0.0);
        assert_eq!(d2.rate("c"), 0.0);
        assert_eq!(d2.counter("c"), 200);
    }

    #[test]
    fn reversed_order_saturates_to_zero() {
        let t = Telemetry::new();
        t.registry().counter("c").add(3);
        let before = t.snapshot();
        t.registry().counter("c").add(1);
        let after = t.snapshot();
        let wrong = before.delta(&after);
        assert_eq!(wrong.counter("c"), 0);
    }

    #[test]
    fn family_ratio_handles_empty_denominator() {
        let d = SnapshotDelta::default();
        assert_eq!(d.family_ratio("a", "b"), 0.0);
    }
}
