//! The structured event log of the distribution plane.
//!
//! Two-phase commits happen at control-plane rate (per policy update, not
//! per packet), so the log is a plain bounded `Vec` under a mutex — no
//! sharding needed. Each entry records what the controller did, how many
//! bytes it shipped and how long each agent took to acknowledge, which is
//! exactly the data the prepare/commit latency claims in EXPERIMENTS.md
//! are made of.

use crate::json;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-agent ack timings for one commit phase, bounded at ISP scale.
///
/// Below [`AgentTimings::SUMMARY_THRESHOLD`] agents the full arrival-order
/// vector is kept; above it the vector is collapsed to percentiles plus the
/// slowest few, so one event costs O(1) memory at a thousand agents instead
/// of O(agents) — the event log's byte ceiling stays flat no matter how
/// large the fleet is.
#[derive(Clone, Debug)]
pub enum AgentTimings {
    /// Every agent's `(name, micros-from-phase-start)`, in ack-arrival order.
    Full(Vec<(String, u64)>),
    /// Summarized timings for large fleets.
    Summary {
        /// How many agents acked.
        agents: usize,
        /// Median ack latency, microseconds.
        p50_us: u64,
        /// 90th-percentile ack latency, microseconds.
        p90_us: u64,
        /// 99th-percentile ack latency, microseconds.
        p99_us: u64,
        /// The slowest [`AgentTimings::SLOWEST_KEPT`] agents, slowest first.
        slowest: Vec<(String, u64)>,
    },
}

impl AgentTimings {
    /// Fleets at or below this size keep the full per-agent vector.
    pub const SUMMARY_THRESHOLD: usize = 64;
    /// How many stragglers a summary names.
    pub const SLOWEST_KEPT: usize = 5;

    /// Build timings from arrival-order acks, summarizing large fleets.
    pub fn from_acks(acks: Vec<(String, u64)>) -> AgentTimings {
        if acks.len() <= AgentTimings::SUMMARY_THRESHOLD {
            return AgentTimings::Full(acks);
        }
        let agents = acks.len();
        let mut sorted: Vec<u64> = acks.iter().map(|(_, us)| *us).collect();
        sorted.sort_unstable();
        let pct = |p: f64| sorted[((agents - 1) as f64 * p) as usize];
        let mut slowest = acks;
        slowest.sort_by_key(|entry| std::cmp::Reverse(entry.1));
        slowest.truncate(AgentTimings::SLOWEST_KEPT);
        AgentTimings::Summary {
            agents,
            p50_us: pct(0.50),
            p90_us: pct(0.90),
            p99_us: pct(0.99),
            slowest,
        }
    }

    /// How many agents acked in this phase.
    pub fn agents(&self) -> usize {
        match self {
            AgentTimings::Full(v) => v.len(),
            AgentTimings::Summary { agents, .. } => *agents,
        }
    }

    /// Per-agent entries actually retained in memory — bounded by
    /// [`AgentTimings::SUMMARY_THRESHOLD`] regardless of fleet size.
    pub fn stored_entries(&self) -> usize {
        match self {
            AgentTimings::Full(v) => v.len(),
            AgentTimings::Summary { slowest, .. } => slowest.len(),
        }
    }

    /// The slowest agent's latency in microseconds (0 when empty).
    pub fn max_us(&self) -> u64 {
        match self {
            AgentTimings::Full(v) => v.iter().map(|(_, us)| *us).max().unwrap_or(0),
            AgentTimings::Summary { slowest, .. } => {
                slowest.first().map(|(_, us)| *us).unwrap_or(0)
            }
        }
    }
}

/// One distribution-plane event.
#[derive(Clone, Debug)]
pub enum CommitEvent {
    /// The prepare phase of a two-phase commit: deltas (and full programs,
    /// for resyncing agents) shipped and acknowledged.
    Prepare {
        /// The epoch being prepared.
        epoch: u64,
        /// Agents the prepare was sent to.
        agents: usize,
        /// Of those, agents that received a full resync instead of a delta.
        resyncs: usize,
        /// Total delta payload bytes shipped.
        delta_bytes: usize,
        /// Total full-program payload bytes shipped to resyncing agents.
        resync_bytes: usize,
        /// Wall-clock duration of the whole phase, in microseconds.
        micros: u64,
        /// Per-agent time from phase start to that agent's ack arrival,
        /// summarized above [`AgentTimings::SUMMARY_THRESHOLD`] agents.
        per_agent: AgentTimings,
    },
    /// The commit phase: every prepared agent flipped to the new epoch.
    Commit {
        /// The committed epoch.
        epoch: u64,
        /// State tables migrated between agents during the commit.
        migrated_tables: usize,
        /// Wall-clock duration of the whole phase, in microseconds.
        micros: u64,
        /// Per-agent time from phase start to that agent's ack arrival,
        /// summarized above [`AgentTimings::SUMMARY_THRESHOLD`] agents.
        per_agent: AgentTimings,
    },
    /// A commit was aborted (send failure, agent rejection or timeout).
    Abort {
        /// The epoch that was being prepared when the abort happened.
        epoch: u64,
        /// Why.
        reason: String,
    },
    /// Distribution-state compaction reclaimed nodes no live agent needs.
    Compaction {
        /// The epoch after which the compaction ran.
        epoch: u64,
        /// Pool nodes reclaimed.
        reclaimed: usize,
    },
}

impl CommitEvent {
    fn kind(&self) -> &'static str {
        match self {
            CommitEvent::Prepare { .. } => "prepare",
            CommitEvent::Commit { .. } => "commit",
            CommitEvent::Abort { .. } => "abort",
            CommitEvent::Compaction { .. } => "compaction",
        }
    }

    /// The epoch the event concerns.
    pub fn epoch(&self) -> u64 {
        match self {
            CommitEvent::Prepare { epoch, .. }
            | CommitEvent::Commit { epoch, .. }
            | CommitEvent::Abort { epoch, .. }
            | CommitEvent::Compaction { epoch, .. } => *epoch,
        }
    }
}

/// A logged event plus its monotone sequence number.
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// Position in the log since construction (monotone even when older
    /// records have been evicted from the bounded buffer).
    pub seq: u64,
    /// The event.
    pub event: CommitEvent,
}

impl EventRecord {
    pub(crate) fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"seq\": {}, \"kind\": \"{}\", \"epoch\": {}",
            self.seq,
            self.event.kind(),
            self.event.epoch()
        );
        match &self.event {
            CommitEvent::Prepare {
                agents,
                resyncs,
                delta_bytes,
                resync_bytes,
                micros,
                per_agent,
                ..
            } => {
                let _ = write!(
                    out,
                    ", \"agents\": {agents}, \"resyncs\": {resyncs}, \"delta_bytes\": {delta_bytes}, \"resync_bytes\": {resync_bytes}, \"micros\": {micros}, \"per_agent_micros\": "
                );
                write_per_agent(out, per_agent);
            }
            CommitEvent::Commit {
                migrated_tables,
                micros,
                per_agent,
                ..
            } => {
                let _ = write!(
                    out,
                    ", \"migrated_tables\": {migrated_tables}, \"micros\": {micros}, \"per_agent_micros\": "
                );
                write_per_agent(out, per_agent);
            }
            CommitEvent::Abort { reason, .. } => {
                out.push_str(", \"reason\": ");
                json::write_str(out, reason);
            }
            CommitEvent::Compaction { reclaimed, .. } => {
                let _ = write!(out, ", \"reclaimed\": {reclaimed}");
            }
        }
        out.push('}');
    }

    /// A one-line human-readable rendering.
    pub fn render(&self) -> String {
        match &self.event {
            CommitEvent::Prepare {
                epoch,
                agents,
                resyncs,
                delta_bytes,
                resync_bytes,
                micros,
                ..
            } => format!(
                "#{} prepare epoch {epoch}: {agents} agents ({resyncs} resyncs), {delta_bytes}B delta + {resync_bytes}B resync, {micros}us",
                self.seq
            ),
            CommitEvent::Commit {
                epoch,
                migrated_tables,
                micros,
                ..
            } => format!(
                "#{} commit  epoch {epoch}: {migrated_tables} tables migrated, {micros}us",
                self.seq
            ),
            CommitEvent::Abort { epoch, reason } => {
                format!("#{} abort   epoch {epoch}: {reason}", self.seq)
            }
            CommitEvent::Compaction { epoch, reclaimed } => {
                format!(
                    "#{} compact epoch {epoch}: {reclaimed} nodes reclaimed",
                    self.seq
                )
            }
        }
    }
}

fn write_per_agent(out: &mut String, per_agent: &AgentTimings) {
    match per_agent {
        AgentTimings::Full(entries) => write_agent_map(out, entries),
        AgentTimings::Summary {
            agents,
            p50_us,
            p90_us,
            p99_us,
            slowest,
        } => {
            let _ = write!(
                out,
                "{{\"agents\": {agents}, \"p50_us\": {p50_us}, \"p90_us\": {p90_us}, \"p99_us\": {p99_us}, \"slowest\": "
            );
            write_agent_map(out, slowest);
            out.push('}');
        }
    }
}

fn write_agent_map(out: &mut String, entries: &[(String, u64)]) {
    out.push('{');
    for (i, (name, us)) in entries.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json::write_str(out, name);
        let _ = write!(out, ": {us}");
    }
    out.push('}');
}

/// A bounded, mutex-guarded log of [`CommitEvent`]s.
pub struct EventLog {
    events: Mutex<VecDeque<EventRecord>>,
    capacity: usize,
    next_seq: AtomicU64,
    dropped: AtomicU64,
}

/// Default event-log capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

impl EventLog {
    /// A log keeping at most `capacity` most-recent events.
    pub fn new(capacity: usize) -> EventLog {
        EventLog {
            events: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            next_seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append an event, evicting the oldest when full. Returns the event's
    /// sequence number.
    pub fn record(&self, event: CommitEvent) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut events = self.events.lock();
        if events.len() >= self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(EventRecord { seq, event });
        seq
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Events evicted from the bounded buffer to make room for newer ones —
    /// `recorded() - dropped()` is the number currently retained.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The log's capacity: [`EventLog::events`] never returns more than
    /// this many records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        self.events.lock().iter().cloned().collect()
    }
}

impl Default for EventLog {
    fn default() -> EventLog {
        EventLog::new(DEFAULT_EVENT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_is_bounded_with_monotone_seqs() {
        let log = EventLog::new(2);
        for epoch in 0..5 {
            log.record(CommitEvent::Abort {
                epoch,
                reason: "test".into(),
            });
        }
        assert_eq!(log.recorded(), 5);
        let events = log.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[1].seq, 4);
        assert_eq!(events[1].event.epoch(), 4);
    }
}
