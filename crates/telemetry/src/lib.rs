//! # snap-telemetry
//!
//! The network-wide telemetry plane of the SNAP workspace: a lock-free,
//! **per-instance** metrics registry (counters, gauges, log₂ histograms,
//! dense counter families), a 1-in-N sampled packet tracer and a
//! structured commit event log, all reachable from one [`Telemetry`]
//! handle and exportable as one [`MetricsSnapshot`] (JSON via
//! [`MetricsSnapshot::to_json`]).
//!
//! ## The per-worker-shard aggregation contract
//!
//! Hot-path metrics ([`Counter`], [`Histogram`], [`CounterFamily`]) are
//! **sharded**: each metric owns [`registry::SHARDS`] cache-line-padded
//! cells, every thread is assigned one shard round-robin on its first
//! metric write and keeps it for its lifetime, and a write is a single
//! relaxed atomic RMW on the writer's own shard — no locks, no shared
//! cachelines between (the first `SHARDS`) concurrent workers, no
//! registration of threads. Aggregation happens **only on read**: `get()`
//! and [`Registry::snapshot`] sum the shards at that moment. The
//! consequences, which every consumer relies on:
//!
//! * writes never wait — a telemetry-enabled hot path pays one
//!   uncontended RMW per recorded event and nothing else;
//! * reads are O(`SHARDS`) per metric and may run concurrently with
//!   writers: a snapshot includes every write that *happened-before* the
//!   read and may or may not include in-flight ones;
//! * once writers quiesce (workers joined, injection stopped), sums are
//!   **exact** — this is what the concurrency-exactness test suite pins
//!   down by comparing aggregated counters against independently computed
//!   totals.
//!
//! Everything here is *per instance*: two `Network`s in one process get
//! two registries and never contaminate each other's readings (the
//! process-wide statics this crate replaced did). Sharing is explicit —
//! clone the [`Telemetry`] handle and hand it to whoever should write
//! into the same registry (the distribution plane shares one handle
//! between its controller, its agents' egress stats and its packet
//! driver, so a single snapshot tells the whole story).
//!
//! ## Cost model
//!
//! A disabled subsystem costs a `None` check. An enabled one costs, per
//! packet, roughly: one family RMW at ingress, one thread-local countdown
//! for trace sampling, and a handful of amortized per-group/per-batch
//! adds — small enough that the dataplane bench budgets telemetry at <3%
//! of sustained throughput and checks it (`BENCH_dataplane.json`,
//! `telemetry.overhead_pct`).

#![warn(missing_docs)]

mod delta;
mod events;
mod json;
pub mod registry;
mod trace;

pub use delta::SnapshotDelta;
pub use events::{AgentTimings, CommitEvent, EventLog, EventRecord, DEFAULT_EVENT_CAPACITY};
pub use registry::{
    Counter, CounterFamily, Gauge, Histogram, HistogramSnapshot, LocalHistogram, MetricsSnapshot,
    Registry, HISTOGRAM_BUCKETS,
};
pub use trace::{
    HopRecord, PacketTrace, TraceSampler, DEFAULT_TRACE_CAPACITY, DEFAULT_TRACE_EVERY,
};

use std::sync::Arc;

struct TelemetryInner {
    registry: Registry,
    tracer: TraceSampler,
    events: EventLog,
}

/// One instance's telemetry plane: registry + packet-trace sampler +
/// commit event log. Cloning clones the handle; all clones write into the
/// same instance.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

impl Telemetry {
    /// A fresh telemetry instance with the default trace sampling
    /// (1-in-[`DEFAULT_TRACE_EVERY`], ring of [`DEFAULT_TRACE_CAPACITY`])
    /// and event-log capacity.
    pub fn new() -> Telemetry {
        Telemetry::with_trace_sampling(DEFAULT_TRACE_EVERY, DEFAULT_TRACE_CAPACITY)
    }

    /// A telemetry instance tracing one in `every` packets (0 disables
    /// tracing) into a ring of `capacity` traces.
    pub fn with_trace_sampling(every: u64, capacity: usize) -> Telemetry {
        Telemetry {
            inner: Arc::new(TelemetryInner {
                registry: Registry::new(),
                tracer: TraceSampler::new(every, capacity),
                events: EventLog::default(),
            }),
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The packet-trace sampler.
    pub fn tracer(&self) -> &TraceSampler {
        &self.inner.tracer
    }

    /// The commit event log.
    pub fn events(&self) -> &EventLog {
        &self.inner.events
    }

    /// Read everything into one [`MetricsSnapshot`]: all registered
    /// metrics, the current trace ring and the retained event log.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.inner.registry.snapshot();
        snap.traces = self.inner.tracer.traces();
        snap.events = self.inner.events.events();
        snap
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_combines_registry_traces_and_events() {
        let t = Telemetry::with_trace_sampling(1, 4);
        t.registry().counter("c").add(2);
        let trace = t.tracer().maybe_start(3, 0).unwrap();
        t.tracer().finish(trace);
        t.events().record(CommitEvent::Commit {
            epoch: 1,
            migrated_tables: 0,
            micros: 5,
            per_agent: AgentTimings::Full(vec![("A".into(), 5)]),
        });
        let snap = t.snapshot();
        assert_eq!(snap.counters["c"], 2);
        assert_eq!(snap.traces.len(), 1);
        assert_eq!(snap.events.len(), 1);
        let json = snap.to_json();
        assert!(json.contains("\"c\": 2"));
        assert!(json.contains("\"kind\": \"commit\""));
        assert!(json.contains("\"inport\": 3"));
    }

    #[test]
    fn clones_share_one_instance_but_instances_are_isolated() {
        let a = Telemetry::new();
        let b = a.clone();
        b.registry().counter("x").inc();
        assert_eq!(a.registry().counter("x").get(), 1);
        let c = Telemetry::new();
        assert_eq!(c.registry().counter("x").get(), 0);
    }
}
