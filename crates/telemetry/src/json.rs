//! A minimal hand-rolled JSON writer.
//!
//! The build environment has no `serde_json`, and the workspace's bench
//! files already emit JSON with `std::fmt::Write` by hand; this module
//! centralizes the escaping and the map/array plumbing so the exporter in
//! [`crate::MetricsSnapshot::to_json`] stays readable.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Append `s` as a JSON string literal (quotes included) to `out`.
pub(crate) fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Comma/indent bookkeeping for one JSON object whose members are written
/// incrementally: `key()` emits the separator, indentation and the quoted
/// key, the caller then writes the value into `out()`, and `finish()`
/// closes the object.
pub(crate) struct JsonMap<'a> {
    out: &'a mut String,
    indent: usize,
    first: bool,
}

impl<'a> JsonMap<'a> {
    /// A map writer at `indent` levels (two spaces each). The caller has
    /// already written the opening `{` and a newline.
    pub(crate) fn new(out: &'a mut String, indent: usize) -> JsonMap<'a> {
        JsonMap {
            out,
            indent,
            first: true,
        }
    }

    /// Begin the member named `name`: separator, indentation, quoted key
    /// and `: `.
    pub(crate) fn key(&mut self, name: &str) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        write_str(self.out, name);
        self.out.push_str(": ");
    }

    /// The underlying buffer, for writing the member's value.
    pub(crate) fn out(&mut self) -> &mut String {
        self.out
    }

    /// Close the object with `close` on its own line (or inline when no
    /// member was written).
    pub(crate) fn finish(self, close: &str) {
        if !self.first {
            self.out.push('\n');
            for _ in 0..self.indent.saturating_sub(1) {
                self.out.push_str("  ");
            }
        }
        self.out.push_str(close);
    }
}

/// Write a `{"name": value, ...}` object of unsigned integers.
pub(crate) fn write_u64_map(out: &mut String, map: &BTreeMap<String, u64>, indent: usize) {
    if map.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    let mut m = JsonMap::new(out, indent);
    for (k, v) in map {
        m.key(k);
        let _ = write!(m.out(), "{v}");
    }
    m.finish("}");
}

/// Write a `{"name": value, ...}` object of signed integers.
pub(crate) fn write_i64_map(out: &mut String, map: &BTreeMap<String, i64>, indent: usize) {
    if map.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    let mut m = JsonMap::new(out, indent);
    for (k, v) in map {
        m.key(k);
        let _ = write!(m.out(), "{v}");
    }
    m.finish("}");
}

/// Write a `{"label": value, ...}` object from `(label, value)` pairs,
/// preserving their order.
pub(crate) fn write_u64_pairs(out: &mut String, pairs: &[(String, u64)], indent: usize) {
    if pairs.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push_str("{\n");
    let mut m = JsonMap::new(out, indent);
    for (k, v) in pairs {
        m.key(k);
        let _ = write!(m.out(), "{v}");
    }
    m.finish("}");
}

/// Write a `["a", "b", ...]` array of strings inline.
pub(crate) fn write_str_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_str(out, s);
    }
    out.push(']');
}
