//! Sampled end-to-end packet traces.
//!
//! Tracing every packet would dwarf the traffic being measured, so the
//! driver asks the [`TraceSampler`] at ingress whether *this* packet should
//! be traced — a 1-in-N decision made with a per-thread countdown (no
//! shared cacheline on the fast path; each worker samples its own 1-in-N
//! slice, and its very first packet, so short runs still produce a trace).
//! A sampled packet carries a [`PacketTrace`] through the driver, which
//! appends one [`HopRecord`] per switch visit (the §4.5 packet tag it
//! resumed at, the state variables tested and written, and how the visit
//! ended) and hands the finished trace back to the sampler's bounded ring,
//! oldest evicted first.

use crate::json;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// One switch visit of a sampled packet.
#[derive(Clone, Debug)]
pub struct HopRecord {
    /// The switch (topology node index) the visit happened on.
    pub switch: usize,
    /// Its human name in the topology.
    pub switch_name: String,
    /// The configuration epoch the visit executed under.
    pub epoch: u64,
    /// The dense flat-program node the packet resumed at — the §4.5 packet
    /// tag, rendered (`b12` for a branch, `l3` for a leaf, `-` before the
    /// first program node).
    pub entry_node: String,
    /// State variables whose tests were evaluated at this switch.
    pub state_tests: Vec<String>,
    /// State variables written at this switch.
    pub state_writes: Vec<String>,
    /// How the visit ended: `emit:<port>`, `drop`, `need-state:<var>`,
    /// `fork:<n>`, `forward` or `error`.
    pub outcome: String,
}

impl HopRecord {
    /// A fresh record for a visit starting at `entry_node`.
    pub fn begin(switch: usize, switch_name: &str, epoch: u64, entry_node: String) -> HopRecord {
        HopRecord {
            switch,
            switch_name: switch_name.to_string(),
            epoch,
            entry_node,
            state_tests: Vec::new(),
            state_writes: Vec::new(),
            outcome: String::new(),
        }
    }

    pub(crate) fn write_json(&self, out: &mut String) {
        out.push_str("{\"switch\": ");
        let _ = write!(out, "{}", self.switch);
        out.push_str(", \"name\": ");
        json::write_str(out, &self.switch_name);
        let _ = write!(out, ", \"epoch\": {}, \"entry_node\": ", self.epoch);
        json::write_str(out, &self.entry_node);
        out.push_str(", \"state_tests\": ");
        json::write_str_array(out, &self.state_tests);
        out.push_str(", \"state_writes\": ");
        json::write_str_array(out, &self.state_writes);
        out.push_str(", \"outcome\": ");
        json::write_str(out, &self.outcome);
        out.push('}');
    }
}

/// A full end-to-end trace of one sampled packet.
#[derive(Clone, Debug)]
pub struct PacketTrace {
    /// The OBS external port the packet entered at.
    pub inport: usize,
    /// The configuration epoch stamped at ingress.
    pub ingress_epoch: u64,
    /// One record per switch visit, in visit order. A forked packet's trace
    /// follows its first copy only.
    pub hops: Vec<HopRecord>,
    /// Where the packet left the network, as `(switch, port)` — `None` for
    /// a drop or an error.
    pub egress: Option<(usize, usize)>,
    /// Was the packet dropped by the policy?
    pub dropped: bool,
}

impl PacketTrace {
    pub(crate) fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"inport\": {}, \"ingress_epoch\": {}, \"dropped\": {}, \"egress\": ",
            self.inport, self.ingress_epoch, self.dropped
        );
        match self.egress {
            Some((sw, port)) => {
                let _ = write!(out, "[{sw}, {port}]");
            }
            None => out.push_str("null"),
        }
        out.push_str(", \"hops\": [");
        for (i, h) in self.hops.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            h.write_json(out);
        }
        out.push_str("]}");
    }

    /// A human-readable multi-line rendering of the trace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "  packet in@port{} epoch {}:",
            self.inport, self.ingress_epoch
        );
        for h in &self.hops {
            let _ = write!(out, "\n    {} [{}]", h.switch_name, h.entry_node);
            if !h.state_tests.is_empty() {
                let _ = write!(out, " tests={}", h.state_tests.join(","));
            }
            if !h.state_writes.is_empty() {
                let _ = write!(out, " writes={}", h.state_writes.join(","));
            }
            let _ = write!(out, " -> {}", h.outcome);
        }
        match self.egress {
            Some((_, port)) => {
                let _ = write!(out, "\n    delivered at port{port}");
            }
            None if self.dropped => {
                let _ = write!(out, "\n    dropped by policy");
            }
            None => {
                let _ = write!(out, "\n    no egress");
            }
        }
        out
    }
}

/// The 1-in-N packet-trace sampler and its bounded trace ring.
pub struct TraceSampler {
    /// Process-unique sampler id, so the per-thread countdowns of two
    /// samplers (two `Network` instances in one test process, say) never
    /// contaminate each other.
    id: u64,
    /// Sample every Nth packet per worker thread; 0 disables sampling.
    every: AtomicU64,
    ring: Mutex<VecDeque<PacketTrace>>,
    capacity: usize,
    sampled: AtomicU64,
    dropped: AtomicU64,
}

/// Default sampling period: 1 trace per 1024 packets per worker.
pub const DEFAULT_TRACE_EVERY: u64 = 1024;

/// Default trace-ring capacity.
pub const DEFAULT_TRACE_CAPACITY: usize = 32;

impl TraceSampler {
    /// A sampler tracing one in `every` packets (0 disables) into a ring of
    /// at most `capacity` finished traces.
    pub fn new(every: u64, capacity: usize) -> TraceSampler {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        TraceSampler {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            every: AtomicU64::new(every),
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            sampled: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Change the sampling period (0 disables). Takes effect as worker
    /// threads' countdowns next reload.
    pub fn set_every(&self, every: u64) {
        self.every.store(every, Ordering::Relaxed);
    }

    /// The current sampling period.
    pub fn every(&self) -> u64 {
        self.every.load(Ordering::Relaxed)
    }

    /// Decide whether the packet entering at `inport` under `epoch` should
    /// be traced, and if so start its trace. The decision costs one
    /// thread-local countdown on the fast path; each worker thread samples
    /// its first packet and then one in every N.
    #[inline]
    pub fn maybe_start(&self, inport: usize, epoch: u64) -> Option<PacketTrace> {
        if self.sample_offsets(1).is_empty() {
            return None;
        }
        Some(self.start(inport, epoch))
    }

    /// Make the sampling decisions for a whole window of `n` packets with a
    /// single thread-local countdown access: the returned (ascending,
    /// zero-based) offsets within the window are the packets to trace —
    /// usually none, so batched callers pay one countdown per *batch*
    /// instead of per packet. Start the chosen packets' traces with
    /// [`TraceSampler::start`].
    pub fn sample_offsets(&self, window: u64) -> Vec<u64> {
        let every = self.every.load(Ordering::Relaxed);
        if every == 0 || window == 0 {
            return Vec::new();
        }
        thread_local! {
            // Per (thread, sampler) countdowns; the handful of live
            // samplers keeps the scan a few entries long.
            static COUNTDOWNS: std::cell::RefCell<Vec<(u64, u64)>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        COUNTDOWNS.with(|cell| {
            let counts = &mut *cell.borrow_mut();
            let entry = match counts.iter_mut().find(|(id, _)| *id == self.id) {
                Some(entry) => entry,
                None => {
                    counts.push((self.id, 0));
                    counts.last_mut().expect("just pushed")
                }
            };
            if entry.1 >= window {
                entry.1 -= window;
                return Vec::new();
            }
            let mut out = Vec::new();
            let mut offset = entry.1;
            while offset < window {
                out.push(offset);
                offset += every;
            }
            entry.1 = offset - window;
            out
        })
    }

    /// Start a trace for a packet already chosen by [`sample_offsets`].
    ///
    /// [`sample_offsets`]: TraceSampler::sample_offsets
    pub fn start(&self, inport: usize, epoch: u64) -> PacketTrace {
        PacketTrace {
            inport,
            ingress_epoch: epoch,
            hops: Vec::new(),
            egress: None,
            dropped: false,
        }
    }

    /// Hand a finished trace back to the ring (oldest evicted when full).
    pub fn finish(&self, trace: PacketTrace) {
        self.sampled.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock();
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(trace);
    }

    /// Total traces ever finished (including those evicted from the ring).
    pub fn sampled(&self) -> u64 {
        self.sampled.load(Ordering::Relaxed)
    }

    /// Traces evicted from the ring to make room for newer ones —
    /// `sampled() - dropped()` is the number currently retained (until the
    /// next eviction).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The ring's capacity: [`TraceSampler::traces`] never returns more
    /// than this many.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The traces currently in the ring, oldest first.
    pub fn traces(&self) -> Vec<PacketTrace> {
        self.ring.lock().iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_takes_first_then_every_nth() {
        let s = TraceSampler::new(4, 8);
        let taken: Vec<bool> = (0..9).map(|i| s.maybe_start(i, 0).is_some()).collect();
        assert_eq!(
            taken,
            vec![true, false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn zero_disables_and_ring_is_bounded() {
        let s = TraceSampler::new(0, 2);
        assert!(s.maybe_start(1, 0).is_none());
        s.set_every(1);
        for i in 0..5 {
            let t = s.maybe_start(i, 0).unwrap();
            s.finish(t);
        }
        assert_eq!(s.sampled(), 5);
        let traces = s.traces();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].inport, 3); // oldest two evicted
        assert_eq!(traces[1].inport, 4);
    }
}
