//! # snap-session
//!
//! Long-lived incremental compilation sessions for the SNAP compiler — the
//! controller-facing layer of the paper's operational story (§6): a
//! controller recompiles the network program whenever the policy or the
//! traffic matrix changes, and almost everything between two consecutive
//! compilations is identical.
//!
//! A [`CompilerSession`] owns a persistent hash-consed [`snap_xfdd::Pool`]
//! across compilations and exploits that persistence four ways:
//!
//! * **Fingerprinted subtree reuse** — every translated policy subtree is
//!   cached under a structural fingerprint, so an edit to one branch of
//!   `p + q` re-translates only that branch while the compositions above it
//!   hit the pool's warm memo tables (~ns instead of ~hundreds of µs).
//! * **Parallel per-policy translation** — with
//!   [`SessionOptions::parallel`], the operands of parallel compositions
//!   translate on worker threads into private pools (no locking; memo
//!   tables are per-pool) and merge via structural pool-to-pool import.
//! * **Placement reuse** — when the packet-state mapping and the dependency
//!   relations come out unchanged, the previous placement/routing solution
//!   is provably still optimal for the same traffic, and P4/P5 are skipped.
//! * **Version cache** — a small LRU of fully compiled policy versions, so
//!   recompiling anything the session has built before (rollbacks,
//!   attack/calm toggles, A/B flips) runs no phase at all; traffic changes
//!   invalidate it, since placement was optimized for the old matrix.
//! * **Pool GC** — long-lived pools accumulate dead intermediate nodes;
//!   sessions bound memory with a mark-from-roots compactor
//!   ([`CompilerSession::compact_now`], automatic above
//!   [`SessionOptions::gc_threshold`]) that keeps recently used cached
//!   subtrees alive and rewrites their ids through the remap table.
//!
//! Results publish to a running [`snap_dataplane::Network`] as an atomic,
//! epoch-versioned configuration swap ([`CompilerSession::apply`], or
//! [`CompilerSession::publish`] against a shared `Arc<Network>` handle):
//! switch state survives, state tables migrate when a variable's placement
//! moves, and — because the swap is RCU-style — packet workers keep
//! injecting while the new configuration is installed.
//!
//! ```
//! use snap_session::CompilerSession;
//! use snap_core::SolverChoice;
//! use snap_lang::prelude::*;
//! use snap_topology::{generators, TrafficMatrix};
//!
//! let topo = generators::campus();
//! let tm = TrafficMatrix::uniform(&topo, 10.0);
//! let mut session = CompilerSession::new(topo, tm).with_solver(SolverChoice::Heuristic);
//!
//! let count = |limit: i64| {
//!     ite(
//!         state_test("count", vec![field(Field::InPort)], int(limit)),
//!         drop(),
//!         state_incr("count", vec![field(Field::InPort)]),
//!     )
//!     .seq(modify(Field::OutPort, Value::Int(6)))
//! };
//! session.compile(&count(10)).unwrap();
//! let cold_pool = session.pool_len();
//!
//! // A policy edit recompiles incrementally: same mapping, placement reused.
//! let updated = session.update_policy(&count(20)).unwrap();
//! assert!(session.stats().subtree_hits > 0);
//! assert_eq!(session.stats().placement_reuses, 1);
//! assert!(session.pool_len() >= cold_pool);
//! assert_eq!(session.epoch(), 2);
//!
//! // Publish to a (possibly shared, concurrently injecting) data plane.
//! let network = session.build_shared_network().unwrap();
//! assert_eq!(session.publish(&network), Some(1));
//! # let _ = updated;
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod session;

pub use cache::{fingerprint, TranslationCache};
pub use session::{
    CompilerSession, GcReport, SessionOptions, SessionStats, SessionUpdate, SwitchChanges,
    SwitchMeta,
};
