//! The long-lived compiler session.

use crate::cache::TranslationCache;
use snap_core::{
    generate_rules, place_and_route_timed, reroute_timed, Compiled, OptimizeInput, OptimizeTimings,
    PacketStateMap, PhaseTimings, SolverChoice,
};
use snap_dataplane::Network;
use snap_lang::{Policy, Pred, StateVar};
use snap_telemetry::{Counter, Gauge, Telemetry};
use snap_topology::{NodeId as SwitchId, PortId, Topology, TrafficMatrix};
use snap_xfdd::{
    pred_to_xfdd, to_xfdd, Action, CompileError, Leaf, NodeId, Pool, StateClass, StateDependencies,
    VarOrder, Xfdd,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

/// Options controlling a [`CompilerSession`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionOptions {
    /// Which placement/routing engine to use.
    pub solver: SolverChoice,
    /// Translate the operands of parallel compositions (`p + q + ...`) on
    /// worker threads, each into a private pool, and merge the results via
    /// pool-to-pool import. Off by default: it pays off for wide parallel
    /// compositions of substantial policies, not for small programs.
    pub parallel: bool,
    /// Pool size (in nodes) above which a compilation triggers an automatic
    /// [`CompilerSession::compact_now`]. Composition interns intermediates
    /// well beyond the final diagram size, so this should sit comfortably
    /// above one compilation's churn — compacting on every compile would
    /// clear the warm memo entries the session exists to keep.
    pub gc_threshold: usize,
    /// How many compile generations a cached subtree survives without being
    /// used before GC evicts it (minimum 1 = only subtrees of the current
    /// compilation are kept).
    pub cache_generations: u64,
    /// How many fully compiled policy versions to keep. Recompiling a
    /// version the session has already built — rollbacks, attack/calm
    /// toggles, A/B flips — is then answered from the version cache without
    /// re-running any phase. `0` disables the cache.
    pub version_cache: usize,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            solver: SolverChoice::Auto,
            parallel: false,
            gc_threshold: 500_000,
            cache_generations: 2,
            version_cache: 8,
        }
    }
}

/// A point-in-time reading of the session's counters (the counters
/// themselves live on the session's `snap-telemetry` registry as the
/// `session.*` metrics; this is the value [`CompilerSession::stats`]
/// assembles from them).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Policy compilations (initial compile + policy updates).
    pub compiles: u64,
    /// Traffic-matrix updates (reroutes).
    pub reroutes: u64,
    /// Policy subtrees answered from the fingerprint cache.
    pub subtree_hits: u64,
    /// Policy subtrees that had to be translated.
    pub subtree_misses: u64,
    /// Subtrees translated on worker threads and merged by import.
    pub parallel_translations: u64,
    /// Compilations that reused the previous placement because mapping and
    /// dependencies were unchanged.
    pub placement_reuses: u64,
    /// Compilations answered whole from the version cache (previously seen
    /// policy, unchanged traffic).
    pub version_hits: u64,
    /// Automatic + explicit pool compactions.
    pub gc_runs: u64,
    /// Total nodes reclaimed by compaction.
    pub nodes_reclaimed: u64,
    /// Pool rebuilds forced by a changed state-variable order.
    pub order_resets: u64,
    /// Distribution updates handed out by [`CompilerSession::take_update`].
    pub updates_taken: u64,
}

/// The registry-backed counters behind [`SessionStats`], pre-registered as
/// the `session.*` metrics so increments are handle writes, never name
/// lookups. [`CompilerSession::set_telemetry`] swaps the backing registry
/// and carries the accumulated counts over.
struct SessionCounters {
    telemetry: Telemetry,
    compiles: Counter,
    reroutes: Counter,
    subtree_hits: Counter,
    subtree_misses: Counter,
    parallel_translations: Counter,
    placement_reuses: Counter,
    version_hits: Counter,
    gc_runs: Counter,
    nodes_reclaimed: Counter,
    order_resets: Counter,
    updates_taken: Counter,
    /// `pool.live_nodes` — nodes interned in the session pool, set after
    /// every compile and compaction so bounded-memory monitors read a live
    /// number instead of re-deriving it.
    pool_nodes: Gauge,
}

impl SessionCounters {
    fn new(telemetry: Telemetry) -> SessionCounters {
        let r = telemetry.registry();
        SessionCounters {
            compiles: r.counter("session.compiles"),
            reroutes: r.counter("session.reroutes"),
            subtree_hits: r.counter("session.subtree_hits"),
            subtree_misses: r.counter("session.subtree_misses"),
            parallel_translations: r.counter("session.parallel_translations"),
            placement_reuses: r.counter("session.placement_reuses"),
            version_hits: r.counter("session.version_hits"),
            gc_runs: r.counter("session.gc_runs"),
            nodes_reclaimed: r.counter("session.nodes_reclaimed"),
            order_resets: r.counter("session.order_resets"),
            updates_taken: r.counter("session.updates_taken"),
            pool_nodes: r.gauge("pool.live_nodes"),
            telemetry,
        }
    }

    fn read(&self) -> SessionStats {
        SessionStats {
            compiles: self.compiles.get(),
            reroutes: self.reroutes.get(),
            subtree_hits: self.subtree_hits.get(),
            subtree_misses: self.subtree_misses.get(),
            parallel_translations: self.parallel_translations.get(),
            placement_reuses: self.placement_reuses.get(),
            version_hits: self.version_hits.get(),
            gc_runs: self.gc_runs.get(),
            nodes_reclaimed: self.nodes_reclaimed.get(),
            order_resets: self.order_resets.get(),
            updates_taken: self.updates_taken.get(),
        }
    }
}

/// What one pool compaction did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GcReport {
    /// Pool size before compaction.
    pub nodes_before: usize,
    /// Pool size after compaction.
    pub nodes_after: usize,
    /// Stale cache entries evicted before marking.
    pub entries_evicted: usize,
}

impl GcReport {
    /// Nodes reclaimed by this compaction.
    pub fn reclaimed(&self) -> usize {
        self.nodes_before - self.nodes_after
    }
}

/// A long-lived compilation session: the controller-facing layer that owns a
/// persistent [`Pool`] across compilations.
///
/// Where [`snap_core::Compiler::compile`] builds a fresh arena per call and
/// throws its memo tables away, a session keeps them warm: recompiling after
/// an edit to one subtree of the policy re-translates only that subtree
/// (fingerprint cache), re-derives every untouched composition from the memo
/// tables, and — when the packet-state mapping and state dependencies are
/// unchanged — reuses the previous placement instead of re-optimizing.
/// Results are published to a running [`Network`] as an epoch-versioned
/// configuration swap.
pub struct CompilerSession {
    topology: Topology,
    traffic: TrafficMatrix,
    options: SessionOptions,
    pool: Pool,
    cache: TranslationCache,
    /// Fully compiled policy versions, newest-used last (a tiny LRU). The
    /// entries are self-contained (their diagrams live in extracted pools),
    /// so pool GC and order resets never invalidate them; traffic changes
    /// do, because placement and routing were optimized for the old matrix.
    versions: Vec<VersionEntry>,
    current: Option<Arc<Compiled>>,
    /// What the last [`Self::take_update`] shipped, for change tracking.
    shipped: Option<ShippedState>,
    epoch: u64,
    stats: SessionCounters,
}

struct VersionEntry {
    fingerprint: u64,
    compiled: Arc<Compiled>,
}

/// Per-switch distribution metadata: the pieces of a switch's configuration
/// that are *not* the (globally shared) program — what it owns (`.0`) and
/// where its external ports are (`.1`).
pub type SwitchMeta = (BTreeSet<StateVar>, BTreeSet<PortId>);

/// What the session last handed to a distribution consumer via
/// [`CompilerSession::take_update`].
struct ShippedState {
    session_epoch: u64,
    compiled: Arc<Compiled>,
    meta: BTreeMap<SwitchId, SwitchMeta>,
    placement: BTreeMap<StateVar, SwitchId>,
}

/// What changed since the previous [`CompilerSession::take_update`] — the
/// per-switch change tracking a distribution plane uses to ship only the
/// entries that moved instead of every switch's full configuration.
#[derive(Clone, Debug)]
pub struct SwitchChanges {
    /// No previous update was taken: everything must be shipped.
    pub first: bool,
    /// The compiled program object changed (a version-cache hit that
    /// returns the previously shipped compilation reports `false`).
    pub program_changed: bool,
    /// Switches whose local variables or external ports changed.
    pub meta_changed: BTreeSet<SwitchId>,
    /// The global state-variable placement changed (some variable's owner
    /// moved, appeared or disappeared).
    pub placement_changed: bool,
}

impl SwitchChanges {
    /// Is there anything to distribute at all?
    pub fn is_empty(&self) -> bool {
        !self.first
            && !self.program_changed
            && !self.placement_changed
            && self.meta_changed.is_empty()
    }
}

/// One distributable compilation result, as consumed by a controller's
/// distribution plane: the compiled program plus what changed since the
/// update before it.
#[derive(Clone)]
pub struct SessionUpdate {
    /// The session epoch this update corresponds to.
    pub session_epoch: u64,
    /// The full compilation result (program, placement, per-switch configs).
    pub compiled: Arc<Compiled>,
    /// Change tracking relative to the previously taken update.
    pub changes: SwitchChanges,
    /// Per-switch distribution metadata (owned variables, external ports)
    /// — the exact map [`SwitchChanges::meta_changed`] was computed from,
    /// so consumers ship the same data the change tracking compared.
    pub switch_meta: BTreeMap<SwitchId, SwitchMeta>,
}

impl CompilerSession {
    /// A session for a topology and traffic matrix, with default options.
    pub fn new(topology: Topology, traffic: TrafficMatrix) -> Self {
        CompilerSession {
            topology,
            traffic,
            options: SessionOptions::default(),
            pool: Pool::new(VarOrder::empty()),
            cache: TranslationCache::default(),
            versions: Vec::new(),
            current: None,
            shipped: None,
            epoch: 0,
            stats: SessionCounters::new(Telemetry::new()),
        }
    }

    /// Move the session's counters onto `telemetry`'s registry — a
    /// deployment shares one registry between session, controller and data
    /// plane this way. Counts accumulated so far carry over.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        let old = self.stats.read();
        let fresh = SessionCounters::new(telemetry);
        fresh.compiles.add(old.compiles);
        fresh.reroutes.add(old.reroutes);
        fresh.subtree_hits.add(old.subtree_hits);
        fresh.subtree_misses.add(old.subtree_misses);
        fresh.parallel_translations.add(old.parallel_translations);
        fresh.placement_reuses.add(old.placement_reuses);
        fresh.version_hits.add(old.version_hits);
        fresh.gc_runs.add(old.gc_runs);
        fresh.nodes_reclaimed.add(old.nodes_reclaimed);
        fresh.order_resets.add(old.order_resets);
        fresh.updates_taken.add(old.updates_taken);
        fresh.pool_nodes.set(self.pool.len() as i64);
        self.stats = fresh;
    }

    /// The telemetry instance the session's counters are registered on.
    pub fn telemetry(&self) -> &Telemetry {
        &self.stats.telemetry
    }

    /// Use specific session options.
    pub fn with_options(mut self, options: SessionOptions) -> Self {
        self.options = options;
        self
    }

    /// Use a specific placement/routing engine.
    pub fn with_solver(mut self, solver: SolverChoice) -> Self {
        self.options.solver = solver;
        self
    }

    /// The most recent compilation result, if any.
    pub fn current(&self) -> Option<&Compiled> {
        self.current.as_deref()
    }

    /// The session epoch: bumped by every successful compile, policy update
    /// and traffic update.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of nodes currently interned in the session pool.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Number of policy subtrees in the fingerprint cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// A point-in-time reading of the session counters.
    pub fn stats(&self) -> SessionStats {
        self.stats.read()
    }

    /// The session's target topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    // -----------------------------------------------------------------------
    // Compilation
    // -----------------------------------------------------------------------

    /// Compile a policy, reusing everything the session has accumulated.
    /// The first call behaves like a cold [`snap_core::Compiler::compile`];
    /// subsequent calls are incremental.
    pub fn compile(&mut self, policy: &Policy) -> Result<Compiled, CompileError> {
        self.stats.compiles.inc();
        self.cache.bump_generation();

        // Version cache: a policy the session has already fully compiled
        // (rollback, attack/calm toggle, A/B flip) under the current traffic
        // matrix needs no phase to run at all.
        if let Some(cached) = self.version_lookup(policy) {
            self.stats.version_hits.inc();
            self.epoch += 1;
            self.current = Some(Arc::clone(&cached));
            // One deep clone at the API boundary; zeroed timings record that
            // no phase ran for *this* compile.
            let mut compiled = (*cached).clone();
            compiled.timings = PhaseTimings::default();
            return Ok(compiled);
        }

        // P1 — state dependency analysis (always: it is cheap and decides
        // whether the warm pool is still sound).
        let t = Instant::now();
        let deps = StateDependencies::analyze(policy);
        let dependency_analysis = t.elapsed();
        let order = deps.var_order();
        if order != *self.pool.order() {
            // Every interned diagram was composed under the old test order;
            // reusing them would break the ordering invariant. Start over.
            // (Adopting the order on the very first compile is not counted:
            // there is nothing warm to lose yet.)
            if !self.cache.is_empty() {
                self.stats.order_resets.inc();
            }
            self.pool = Pool::new(order);
            self.cache.clear();
        }

        // P2 — translation through the fingerprint cache (and, if enabled,
        // worker threads for parallel compositions). Rejected policies have
        // interned nodes and cache entries by the time they fail, so the GC
        // threshold is enforced on the error paths too — a stream of racy
        // policies must not grow the pool without bound.
        let t = Instant::now();
        let root = match self.translate(policy) {
            Ok(root) => root,
            Err(e) => {
                self.maybe_gc();
                return Err(e);
            }
        };
        if let Some(var) = self.pool.find_race(root) {
            self.maybe_gc();
            return Err(CompileError::StateRace { var });
        }
        // Publish a minimal frozen copy — O(diagram), not O(arena) — so the
        // session's accumulated garbage never leaks into configs.
        let (frozen, frozen_root) = self.pool.extract(root);
        let xfdd = Xfdd::new(frozen, frozen_root);
        let xfdd_generation = t.elapsed();

        // P3 — packet-state mapping (depends on the diagram, so it reruns;
        // for a single-subtree edit it usually comes out *equal*, which is
        // what unlocks placement reuse below).
        let t = Instant::now();
        let ports: Vec<PortId> = self.topology.external_ports().map(|(p, _)| p).collect();
        let mapping = PacketStateMap::analyze(&xfdd, &ports);
        let packet_state_mapping = t.elapsed();

        // P4 + P5 — placement and routing, skipped entirely when its inputs
        // (mapping, dependency relations, traffic) are unchanged.
        let reusable = self.current.as_ref().and_then(|prev| {
            (prev.mapping == mapping
                && prev.deps.dep == deps.dep
                && prev.deps.tied == deps.tied
                && prev.deps.variables == deps.variables)
                .then(|| prev.placement.clone())
        });
        let (placement, opt_timings) = match reusable {
            Some(placement) => {
                self.stats.placement_reuses.inc();
                (placement, OptimizeTimings::default())
            }
            None => {
                let input = OptimizeInput {
                    topology: &self.topology,
                    traffic: &self.traffic,
                    mapping: &mapping,
                    deps: &deps,
                };
                place_and_route_timed(&input, self.options.solver)
            }
        };

        // P6 — rule generation.
        let t = Instant::now();
        let rules = generate_rules(&self.topology, &xfdd, &placement);
        let rule_generation = t.elapsed();

        let compiled = Arc::new(Compiled {
            policy: policy.clone(),
            deps,
            xfdd,
            mapping,
            placement,
            rules,
            timings: PhaseTimings {
                dependency_analysis,
                xfdd_generation,
                packet_state_mapping,
                milp_creation: opt_timings.model_creation,
                optimization: opt_timings.solving,
                rule_generation,
            },
        });
        self.epoch += 1;
        self.current = Some(Arc::clone(&compiled));
        self.version_insert(policy, Arc::clone(&compiled));
        self.maybe_gc();
        Ok((*compiled).clone())
    }

    fn maybe_gc(&mut self) {
        if self.pool.len() > self.options.gc_threshold {
            self.run_gc();
        }
        self.stats.pool_nodes.set(self.pool.len() as i64);
    }

    fn version_lookup(&mut self, policy: &Policy) -> Option<Arc<Compiled>> {
        let fp = crate::cache::fingerprint(policy);
        let at = self
            .versions
            .iter()
            .position(|v| v.fingerprint == fp && &v.compiled.policy == policy)?;
        // Move to the back: most recently used.
        let entry = self.versions.remove(at);
        let compiled = Arc::clone(&entry.compiled);
        self.versions.push(entry);
        Some(compiled)
    }

    fn version_insert(&mut self, policy: &Policy, compiled: Arc<Compiled>) {
        if self.options.version_cache == 0 {
            return;
        }
        let fingerprint = crate::cache::fingerprint(policy);
        self.versions
            .retain(|v| !(v.fingerprint == fingerprint && v.compiled.policy == compiled.policy));
        self.versions.push(VersionEntry {
            fingerprint,
            compiled,
        });
        while self.versions.len() > self.options.version_cache {
            self.versions.remove(0);
        }
    }

    /// Recompile after a policy edit. Identical to [`Self::compile`]; the
    /// separate name marks controller call sites that react to change
    /// events.
    pub fn update_policy(&mut self, policy: &Policy) -> Result<Compiled, CompileError> {
        self.compile(policy)
    }

    /// React to a traffic-matrix change: keep program, mapping and
    /// placement, re-optimize routing only and regenerate rules (the paper's
    /// "TE" scenario). Returns `None` when nothing has been compiled yet
    /// (the new matrix is still recorded for the next compile).
    pub fn update_traffic(&mut self, traffic: TrafficMatrix) -> Option<Compiled> {
        self.traffic = traffic;
        // Cached versions embed placement/routing for the old matrix.
        self.versions.clear();
        let prev = Arc::clone(self.current.as_ref()?);
        self.stats.reroutes.inc();
        let input = OptimizeInput {
            topology: &self.topology,
            traffic: &self.traffic,
            mapping: &prev.mapping,
            deps: &prev.deps,
        };
        let (placement, opt_timings) =
            reroute_timed(&input, &prev.placement.placement, self.options.solver);
        let t = Instant::now();
        let rules = generate_rules(&self.topology, &prev.xfdd, &placement);
        let rule_generation = t.elapsed();
        let updated = Arc::new(Compiled {
            policy: prev.policy.clone(),
            deps: prev.deps.clone(),
            xfdd: prev.xfdd.clone(),
            mapping: prev.mapping.clone(),
            placement,
            rules,
            timings: PhaseTimings {
                optimization: opt_timings.solving,
                rule_generation,
                ..PhaseTimings::default()
            },
        });
        self.epoch += 1;
        self.current = Some(Arc::clone(&updated));
        Some((*updated).clone())
    }

    // -----------------------------------------------------------------------
    // Publishing
    // -----------------------------------------------------------------------

    /// The most recent compilation result behind a shared handle (no deep
    /// clone) — what a distribution plane holds on to.
    pub fn current_shared(&self) -> Option<Arc<Compiled>> {
        self.current.clone()
    }

    /// Take the current compilation as a distributable update, with change
    /// tracking relative to the previous `take_update`: which switches'
    /// metadata (owned variables, external ports) changed, whether the
    /// program object changed, and whether the global placement moved.
    ///
    /// Returns `None` when nothing has been compiled yet or when the session
    /// epoch has not advanced since the last taken update — the
    /// publish-as-delta path a controller polls after each
    /// [`Self::update_policy`] / [`Self::update_traffic`].
    pub fn take_update(&mut self) -> Option<SessionUpdate> {
        let compiled = self.current.clone()?;
        if let Some(shipped) = &self.shipped {
            if shipped.session_epoch == self.epoch {
                return None;
            }
        }
        let meta: BTreeMap<SwitchId, SwitchMeta> = compiled
            .rules
            .configs
            .iter()
            .map(|c| (c.node, (c.local_vars.clone(), c.ports.clone())))
            .collect();
        let placement: BTreeMap<StateVar, SwitchId> = compiled.placement.placement.clone();
        let changes = match &self.shipped {
            None => SwitchChanges {
                first: true,
                program_changed: true,
                meta_changed: meta.keys().copied().collect(),
                placement_changed: true,
            },
            Some(prev) => SwitchChanges {
                first: false,
                program_changed: !Arc::ptr_eq(&prev.compiled, &compiled),
                meta_changed: meta
                    .iter()
                    .filter(|(n, m)| prev.meta.get(n) != Some(m))
                    .map(|(n, _)| *n)
                    .chain(prev.meta.keys().filter(|n| !meta.contains_key(n)).copied())
                    .collect(),
                placement_changed: prev.placement != placement,
            },
        };
        self.shipped = Some(ShippedState {
            session_epoch: self.epoch,
            compiled: Arc::clone(&compiled),
            meta: meta.clone(),
            placement,
        });
        self.stats.updates_taken.inc();
        Some(SessionUpdate {
            session_epoch: self.epoch,
            compiled,
            changes,
            switch_meta: meta,
        })
    }

    /// Classify every state variable of the current compilation by its
    /// update structure (see [`snap_xfdd::StateClass`]): `Counter` and
    /// `IdempotentSet` variables take the data plane's lock-free replica
    /// path; `Exact` variables pay a shard lock per access. Flattens the
    /// current diagram on demand — a control-plane query, not something to
    /// call per packet. Empty before the first compile.
    pub fn state_classes(&self) -> BTreeMap<StateVar, StateClass> {
        self.current
            .as_ref()
            .map(|c| c.xfdd.flatten().state_classes().clone())
            .unwrap_or_default()
    }

    /// Instantiate a fresh data plane for the current compilation.
    pub fn build_network(&self) -> Option<Network> {
        self.current
            .as_ref()
            .map(|c| Network::new(self.topology.clone(), c.rules.configs.clone()))
    }

    /// Instantiate a fresh data plane behind a shared handle, ready for
    /// packet workers and [`Self::publish`] to use concurrently.
    pub fn build_shared_network(&self) -> Option<Arc<Network>> {
        self.build_network().map(Arc::new)
    }

    /// Push the current compilation into a running network as an atomic,
    /// epoch-versioned configuration swap (state tables migrate with their
    /// variables). Returns the network's new epoch.
    ///
    /// Takes `&Network`: the swap is RCU-style, so traffic keeps flowing
    /// while the new configuration is installed — each in-flight packet
    /// finishes against the snapshot it started with.
    pub fn apply(&self, network: &Network) -> Option<u64> {
        self.current
            .as_ref()
            .map(|c| network.swap_configs(c.rules.configs.clone()))
    }

    /// Publish the current compilation to a *shared* network handle — the
    /// controller's recompile-and-swap step running concurrently with
    /// packet workers that hold clones of the same `Arc`. The epoch read on
    /// each packet guarantees a packet never mixes two configurations.
    pub fn publish(&self, network: &Arc<Network>) -> Option<u64> {
        self.apply(network)
    }

    // -----------------------------------------------------------------------
    // Garbage collection
    // -----------------------------------------------------------------------

    /// Compact the session pool now: evict stale cache entries, mark from
    /// the surviving cached diagrams, drop everything else and clear stale
    /// memo entries.
    pub fn compact_now(&mut self) -> GcReport {
        self.run_gc()
    }

    fn run_gc(&mut self) -> GcReport {
        let entries_evicted = self.cache.evict_stale(self.options.cache_generations);
        let roots = self.cache.roots();
        let nodes_before = self.pool.len();
        let remap = self.pool.compact(&roots);
        let dropped = self.cache.remap(&remap);
        debug_assert_eq!(dropped, 0, "a GC root was collected");
        let nodes_after = self.pool.len();
        self.stats.gc_runs.inc();
        self.stats
            .nodes_reclaimed
            .add((nodes_before - nodes_after) as u64);
        self.stats.pool_nodes.set(nodes_after as i64);
        GcReport {
            nodes_before,
            nodes_after,
            entries_evicted,
        }
    }

    // -----------------------------------------------------------------------
    // Translation
    // -----------------------------------------------------------------------

    fn lookup_counted(&mut self, policy: &Policy) -> Option<NodeId> {
        match self.cache.lookup(policy) {
            Some(id) => {
                self.stats.subtree_hits.inc();
                Some(id)
            }
            None => {
                self.stats.subtree_misses.inc();
                None
            }
        }
    }

    /// Translate a policy into the session pool, caching every subtree by
    /// structural fingerprint. Mirrors `snap_xfdd::to_xfdd`'s recursion, but
    /// bottoms out early at cached subtrees and can fan parallel
    /// compositions out to worker threads.
    fn translate(&mut self, policy: &Policy) -> Result<NodeId, CompileError> {
        if let Some(id) = self.lookup_counted(policy) {
            return Ok(id);
        }
        self.translate_uncached(policy)
    }

    /// [`Self::translate`] after a cache miss has already been established
    /// (and counted) for `policy` — the parallel fan-out's sequential
    /// fallback calls this directly so the miss is not counted twice.
    fn translate_uncached(&mut self, policy: &Policy) -> Result<NodeId, CompileError> {
        let id = match policy {
            Policy::Filter(x) => self.translate_pred(x)?,
            Policy::Modify(f, v) => self
                .pool
                .leaf(Leaf::single(Action::Modify(f.clone(), v.clone()))),
            Policy::StateSet { var, index, value } => {
                self.pool.leaf(Leaf::single(Action::StateSet {
                    var: var.clone(),
                    index: index.clone(),
                    value: value.clone(),
                }))
            }
            Policy::StateIncr { var, index } => self.pool.leaf(Leaf::single(Action::StateIncr {
                var: var.clone(),
                index: index.clone(),
            })),
            Policy::StateDecr { var, index } => self.pool.leaf(Leaf::single(Action::StateDecr {
                var: var.clone(),
                index: index.clone(),
            })),
            Policy::Par(_, _) if self.options.parallel => self.translate_par_spine(policy)?,
            Policy::Par(p, q) => {
                let dp = self.translate(p)?;
                let dq = self.translate(q)?;
                self.pool.union(dp, dq)
            }
            Policy::Seq(p, q) => {
                let dp = self.translate(p)?;
                let dq = self.translate(q)?;
                self.pool.seq(dp, dq)?
            }
            Policy::If(a, p, q) => {
                let da = self.translate_pred(a)?;
                let dp = self.translate(p)?;
                let dq = self.translate(q)?;
                let then_side = self.pool.seq(da, dp)?;
                let not_a = self.pool.negate(da);
                let else_side = self.pool.seq(not_a, dq)?;
                self.pool.union(then_side, else_side)
            }
            Policy::Atomic(p) => self.translate(p)?,
        };
        self.cache.insert(policy, id);
        Ok(id)
    }

    fn translate_pred(&mut self, pred: &Pred) -> Result<NodeId, CompileError> {
        pred_to_xfdd(pred, &mut self.pool)
    }

    /// Fan the operands of a (possibly nested) parallel composition out to
    /// worker threads. Each uncached operand is translated into a *private*
    /// pool — per-thread memo tables, no locking — then structurally
    /// re-interned into the session pool and united left to right, exactly
    /// as the sequential recursion would.
    fn translate_par_spine(&mut self, policy: &Policy) -> Result<NodeId, CompileError> {
        let ops = par_spine(policy);
        let mut results: Vec<Option<NodeId>> = ops.iter().map(|q| self.lookup_counted(q)).collect();
        let uncached: Vec<usize> = (0..ops.len()).filter(|i| results[*i].is_none()).collect();

        if uncached.len() >= 2 {
            let order = self.pool.order().clone();
            // Bound concurrency at the machine's parallelism: a very wide
            // composition is translated in waves rather than spawning one OS
            // thread per operand.
            let max_workers = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4);
            for wave in uncached.chunks(max_workers) {
                let translated: Vec<(usize, WorkerResult)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = wave
                        .iter()
                        .map(|&i| {
                            let op = ops[i];
                            let order = order.clone();
                            let handle = scope.spawn(move || {
                                let mut pool = Pool::new(order);
                                let root = to_xfdd(op, &mut pool)?;
                                Ok((pool, root))
                            });
                            (i, handle)
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|(i, h)| (i, h.join().expect("translation worker panicked")))
                        .collect()
                });
                for (i, result) in translated {
                    let (worker_pool, worker_root) = result?;
                    let imported = self.pool.import(&worker_pool, worker_root);
                    self.cache.insert(ops[i], imported);
                    results[i] = Some(imported);
                    self.stats.parallel_translations.inc();
                }
            }
        } else {
            for i in uncached {
                // The miss was already counted by the spine lookup above.
                let id = self.translate_uncached(ops[i])?;
                results[i] = Some(id);
            }
        }

        let mut ids = results.into_iter().map(|r| r.expect("operand translated"));
        let mut acc = ids.next().expect("parallel composition has operands");
        for id in ids {
            acc = self.pool.union(acc, id);
        }
        Ok(acc)
    }
}

/// What a translation worker returns: its private pool and the root it
/// translated, ready for import into the session pool.
type WorkerResult = Result<(Pool, NodeId), CompileError>;

/// The operands of a (possibly nested) parallel composition, left to right.
fn par_spine(policy: &Policy) -> Vec<&Policy> {
    fn walk<'a>(p: &'a Policy, out: &mut Vec<&'a Policy>) {
        match p {
            Policy::Par(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            other => out.push(other),
        }
    }
    let mut out = Vec::new();
    walk(policy, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_apps as apps;
    use snap_core::Compiler;
    use snap_lang::builder::*;
    use snap_lang::{Field, Packet, Store, Value};
    use snap_topology::generators::campus;

    fn campus_session() -> CompilerSession {
        let topo = campus();
        let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
        CompilerSession::new(topo, tm).with_solver(SolverChoice::Heuristic)
    }

    fn campus_compiler() -> Compiler {
        let topo = campus();
        let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
        Compiler::new(topo, tm).with_solver(SolverChoice::Heuristic)
    }

    /// The running example with a tweakable threshold — a "single-subtree
    /// edit" away from itself.
    fn running_example(threshold: i64) -> Policy {
        apps::dns_tunnel_detect(threshold).seq(apps::assign_egress(6))
    }

    fn probe_packets() -> Vec<Packet> {
        // Fully populated headers so every application policy can evaluate.
        let base = |src: Value, dst: Value, sport: i64| {
            Packet::new()
                .with(Field::SrcIp, src)
                .with(Field::DstIp, dst)
                .with(Field::SrcPort, sport)
                .with(Field::DstPort, 443)
                .with(Field::Proto, 6)
                .with(Field::InPort, 1)
                .with(Field::TcpFlags, Value::sym("SYN"))
                .with(Field::DnsRdata, Value::ip(1, 2, 3, 4))
        };
        vec![
            base(Value::ip(8, 8, 8, 8), Value::ip(10, 0, 6, 9), 53),
            base(Value::ip(10, 0, 6, 9), Value::ip(8, 8, 8, 8), 4000),
            base(Value::ip(10, 0, 1, 1), Value::ip(10, 0, 2, 2), 80),
        ]
    }

    fn assert_equivalent(a: &Compiled, b: &Compiled) {
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.placement.placement, b.placement.placement);
        let store = Store::new();
        for pkt in probe_packets() {
            assert_eq!(
                a.xfdd.evaluate(&pkt, &store).unwrap(),
                b.xfdd.evaluate(&pkt, &store).unwrap(),
                "diagrams disagree on {pkt:?}"
            );
        }
    }

    #[test]
    fn incremental_recompile_matches_cold_compile() {
        let mut session = campus_session();
        let compiler = campus_compiler();
        session.compile(&running_example(3)).unwrap();
        // Edit one subtree (the detection threshold) and recompile.
        let incremental = session.update_policy(&running_example(5)).unwrap();
        let cold = compiler.compile(&running_example(5)).unwrap();
        assert_equivalent(&incremental, &cold);
        assert!(
            session.stats().subtree_hits > 0,
            "no warm subtrees were hit"
        );
        assert_eq!(session.stats().placement_reuses, 1);
    }

    #[test]
    fn recompiling_the_same_policy_adds_no_nodes() {
        let mut session = campus_session();
        session.compile(&running_example(3)).unwrap();
        let len = session.pool_len();
        session.update_policy(&running_example(3)).unwrap();
        assert_eq!(session.pool_len(), len, "identical recompile grew the pool");
        assert_eq!(session.epoch(), 2);
    }

    #[test]
    fn parallel_translation_matches_sequential() {
        let policy = Policy::par_all(vec![
            apps::stateful_firewall(),
            apps::port_monitoring(),
            apps::heavy_hitter_detection(100),
        ])
        .seq(apps::assign_egress(6));

        let mut sequential = campus_session();
        let seq_result = sequential.compile(&policy).unwrap();

        let mut parallel = campus_session().with_options(SessionOptions {
            parallel: true,
            solver: SolverChoice::Heuristic,
            ..SessionOptions::default()
        });
        let par_result = parallel.compile(&policy).unwrap();

        assert!(parallel.stats().parallel_translations >= 2);
        assert_equivalent(&par_result, &seq_result);
        assert!(par_result.xfdd.is_well_formed());
    }

    #[test]
    fn compact_shrinks_a_session_pool_after_repeated_updates() {
        let mut session = campus_session();
        // Many distinct policy versions: each leaves a superseded diagram
        // (plus composition intermediates) behind in the pool.
        for threshold in 1..=12 {
            session.update_policy(&running_example(threshold)).unwrap();
        }
        let before = session.pool_len();
        let report = session.compact_now();
        assert!(
            session.pool_len() < before,
            "compaction did not shrink the pool ({before} -> {})",
            session.pool_len()
        );
        assert_eq!(report.nodes_before, before);
        assert_eq!(report.nodes_after, session.pool_len());
        assert!(report.reclaimed() > 0);
        assert!(session.stats().nodes_reclaimed > 0);

        // The session stays fully functional after GC: warm recompile of the
        // surviving generation, fresh compile of a new version, both correct.
        let len = session.pool_len();
        session.update_policy(&running_example(12)).unwrap();
        assert_eq!(
            session.pool_len(),
            len,
            "post-GC warm recompile grew the pool"
        );
        let after_gc = session.update_policy(&running_example(99)).unwrap();
        let cold = campus_compiler().compile(&running_example(99)).unwrap();
        assert_equivalent(&after_gc, &cold);
    }

    #[test]
    fn auto_gc_triggers_above_the_threshold() {
        let mut session = campus_session().with_options(SessionOptions {
            solver: SolverChoice::Heuristic,
            gc_threshold: 200,
            cache_generations: 1,
            ..SessionOptions::default()
        });
        for threshold in 1..=8 {
            session.update_policy(&running_example(threshold)).unwrap();
        }
        assert!(session.stats().gc_runs > 0, "auto-GC never ran");
        assert!(session.stats().nodes_reclaimed > 0);
    }

    #[test]
    fn update_traffic_keeps_placement_and_bumps_epoch() {
        let mut session = campus_session();
        let first = session.compile(&running_example(3)).unwrap();
        let topo = session.topology().clone();
        let rerouted = session
            .update_traffic(TrafficMatrix::gravity(&topo, 900.0, 7))
            .unwrap();
        assert_eq!(rerouted.placement.placement, first.placement.placement);
        assert_eq!(session.epoch(), 2);
        assert_eq!(session.stats().reroutes, 1);
        assert!(!rerouted.placement.paths.is_empty());
    }

    #[test]
    fn changing_the_variable_order_resets_the_pool() {
        let mut session = campus_session();
        session.compile(&running_example(3)).unwrap();
        assert_eq!(session.stats().order_resets, 0);
        // A policy over different state variables derives a different order.
        let other = apps::stateful_firewall().seq(apps::assign_egress(6));
        let compiled = session.update_policy(&other).unwrap();
        assert_eq!(session.stats().order_resets, 1);
        let cold = campus_compiler().compile(&other).unwrap();
        assert_eq!(compiled.mapping, cold.mapping);
        assert_eq!(compiled.placement.placement, cold.placement.placement);
    }

    #[test]
    fn apply_swaps_configs_into_a_running_network() {
        let mut session = campus_session();
        session.compile(&running_example(2)).unwrap();
        let network = session.build_network().unwrap();
        assert_eq!(network.current_epoch(), 0);

        // Drive some state into the network.
        let client = Value::ip(10, 0, 6, 77);
        let dns = Packet::new()
            .with(Field::SrcIp, Value::ip(8, 8, 8, 8))
            .with(Field::DstIp, client.clone())
            .with(Field::SrcPort, 53)
            .with(Field::DnsRdata, Value::ip(1, 2, 3, 4));
        network.inject(PortId(1), &dns).unwrap();
        let counted = network
            .aggregate_store()
            .get(&"susp-client".into(), std::slice::from_ref(&client));
        assert_eq!(counted, Value::Int(1));

        // Recompile with a new threshold and swap it in: epoch bumps, state
        // survives.
        session.update_policy(&running_example(5)).unwrap();
        assert_eq!(session.apply(&network), Some(1));
        assert_eq!(network.current_epoch(), 1);
        assert_eq!(
            network
                .aggregate_store()
                .get(&"susp-client".into(), &[client]),
            Value::Int(1)
        );
        network.inject(PortId(1), &dns).unwrap();
    }

    #[test]
    fn version_flip_is_served_from_the_version_cache() {
        let mut session = campus_session();
        session.compile(&running_example(3)).unwrap(); // calm
        session.update_policy(&running_example(8)).unwrap(); // attack
        let flip = session.update_policy(&running_example(3)).unwrap(); // calm again
        assert_eq!(session.stats().version_hits, 1);
        assert_eq!(session.epoch(), 3);
        let cold = campus_compiler().compile(&running_example(3)).unwrap();
        assert_equivalent(&flip, &cold);

        // A traffic change invalidates cached versions: placement/routing
        // were optimized for the old matrix.
        let topo = session.topology().clone();
        session
            .update_traffic(TrafficMatrix::gravity(&topo, 900.0, 7))
            .unwrap();
        session.update_policy(&running_example(8)).unwrap();
        assert_eq!(session.stats().version_hits, 1, "stale version served");
    }

    #[test]
    fn version_cache_is_bounded_and_can_be_disabled() {
        let mut session = campus_session().with_options(SessionOptions {
            solver: SolverChoice::Heuristic,
            version_cache: 2,
            ..SessionOptions::default()
        });
        for t in 1..=4 {
            session.update_policy(&running_example(t)).unwrap();
        }
        // Capacity 2: version 1 was evicted, 3 and 4 are resident.
        session.update_policy(&running_example(1)).unwrap();
        assert_eq!(session.stats().version_hits, 0);
        session.update_policy(&running_example(4)).unwrap();
        assert_eq!(session.stats().version_hits, 1);

        let mut off = campus_session().with_options(SessionOptions {
            solver: SolverChoice::Heuristic,
            version_cache: 0,
            ..SessionOptions::default()
        });
        off.compile(&running_example(1)).unwrap();
        off.update_policy(&running_example(1)).unwrap();
        assert_eq!(off.stats().version_hits, 0);
    }

    #[test]
    fn take_update_tracks_per_switch_changes() {
        let mut session = campus_session();
        assert!(session.take_update().is_none(), "nothing compiled yet");

        session.compile(&running_example(3)).unwrap();
        let first = session.take_update().unwrap();
        assert!(first.changes.first);
        assert!(first.changes.program_changed);
        assert!(first.changes.placement_changed);
        assert_eq!(
            first.changes.meta_changed.len(),
            session.topology().num_nodes(),
            "first update ships every switch"
        );
        assert_eq!(first.session_epoch, 1);

        // Nothing recompiled since: no update to take.
        assert!(session.take_update().is_none());

        // A working-set edit keeps mapping and placement: the program
        // changes, no switch's metadata does.
        session.update_policy(&running_example(5)).unwrap();
        let edit = session.take_update().unwrap();
        assert!(!edit.changes.first);
        assert!(edit.changes.program_changed);
        assert!(!edit.changes.placement_changed);
        assert!(edit.changes.meta_changed.is_empty());
        assert!(!edit.changes.is_empty());

        // A version-cache flip back to the first compilation returns the
        // same compiled object, and it still counts as a program change —
        // the *running* program is the edit, not the rollback target.
        session.update_policy(&running_example(3)).unwrap();
        let flip = session.take_update().unwrap();
        assert!(Arc::ptr_eq(&flip.compiled, &first.compiled));
        assert!(flip.changes.program_changed);
        assert!(flip.changes.meta_changed.is_empty());

        // Recompiling the same policy again (same object re-shipped) is the
        // case where nothing at all changed.
        session.update_policy(&running_example(3)).unwrap();
        let same = session.take_update().unwrap();
        assert!(Arc::ptr_eq(&same.compiled, &flip.compiled));
        assert!(!same.changes.program_changed);
        assert!(same.changes.is_empty());
        assert_eq!(session.stats().updates_taken, 4);
    }

    #[test]
    fn racy_policy_is_rejected() {
        let mut session = campus_session();
        let racy = state_set("s", vec![int(0)], int(1)).par(state_set("s", vec![int(0)], int(2)));
        let err = session.compile(&racy).unwrap_err();
        assert!(matches!(err, CompileError::StateRace { .. }));
        // The session survives a failed compile.
        assert!(session.compile(&running_example(3)).is_ok());
    }

    #[test]
    fn racy_policy_is_rejected_in_parallel_mode_too() {
        let mut session = campus_session().with_options(SessionOptions {
            parallel: true,
            solver: SolverChoice::Heuristic,
            ..SessionOptions::default()
        });
        let racy = state_set("s", vec![int(0)], int(1)).par(state_set("s", vec![int(0)], int(2)));
        assert!(session.compile(&racy).is_err());
    }
}
