//! The fingerprinted translation cache: policy subtree → interned diagram.
//!
//! A session survives many recompilations, and most of a policy is unchanged
//! between consecutive versions. The cache maps *structural fingerprints* of
//! policy subtrees to the `NodeId` their translation produced in the session
//! pool, so an edit to one branch of `p + q` re-translates only that branch:
//! every untouched subtree is a cache hit, and the compositions above it hit
//! the pool's warm memo tables.
//!
//! Fingerprints are 64-bit structural hashes; because hashes can collide,
//! each bucket stores the policies themselves and hits are confirmed by
//! structural equality. Entries remember the last compile generation that
//! used them, which is what the GC's eviction policy keys on.

use snap_lang::Policy;
use snap_xfdd::{NodeId, RemapTable};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// The structural fingerprint of a policy subtree.
pub fn fingerprint(policy: &Policy) -> u64 {
    let mut h = DefaultHasher::new();
    policy.hash(&mut h);
    h.finish()
}

struct CacheEntry {
    policy: Policy,
    root: NodeId,
    last_used: u64,
}

/// Fingerprint → translated-diagram cache with generation-based eviction.
#[derive(Default)]
pub struct TranslationCache {
    buckets: HashMap<u64, Vec<CacheEntry>>,
    generation: u64,
    len: usize,
}

impl TranslationCache {
    /// The current compile generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Start a new compile generation (called once per policy compilation).
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Number of cached subtrees.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Look a policy subtree up, marking the entry as used by the current
    /// generation.
    pub fn lookup(&mut self, policy: &Policy) -> Option<NodeId> {
        let generation = self.generation;
        let bucket = self.buckets.get_mut(&fingerprint(policy))?;
        let entry = bucket.iter_mut().find(|e| &e.policy == policy)?;
        entry.last_used = generation;
        Some(entry.root)
    }

    /// Record a freshly translated subtree.
    pub fn insert(&mut self, policy: &Policy, root: NodeId) {
        let bucket = self.buckets.entry(fingerprint(policy)).or_default();
        if let Some(entry) = bucket.iter_mut().find(|e| &e.policy == policy) {
            entry.root = root;
            entry.last_used = self.generation;
            return;
        }
        bucket.push(CacheEntry {
            policy: policy.clone(),
            root,
            last_used: self.generation,
        });
        self.len += 1;
    }

    /// Evict entries not used within the last `keep_generations` compiles
    /// (an entry used by the current generation has age 0). Returns how many
    /// entries were evicted.
    pub fn evict_stale(&mut self, keep_generations: u64) -> usize {
        let cutoff = self.generation.saturating_sub(keep_generations.max(1) - 1);
        let mut evicted = 0;
        self.buckets.retain(|_, bucket| {
            bucket.retain(|e| {
                let keep = e.last_used >= cutoff;
                if !keep {
                    evicted += 1;
                }
                keep
            });
            !bucket.is_empty()
        });
        self.len -= evicted;
        evicted
    }

    /// The diagram roots of every cached subtree — the GC's live roots.
    pub fn roots(&self) -> Vec<NodeId> {
        self.buckets
            .values()
            .flat_map(|b| b.iter().map(|e| e.root))
            .collect()
    }

    /// Rewrite every cached root through a compaction remap table, dropping
    /// entries whose diagram was collected. Returns how many were dropped.
    pub fn remap(&mut self, table: &RemapTable) -> usize {
        let mut dropped = 0;
        self.buckets.retain(|_, bucket| {
            bucket.retain_mut(|e| match table.node(e.root) {
                Some(new) => {
                    e.root = new;
                    true
                }
                None => {
                    dropped += 1;
                    false
                }
            });
            !bucket.is_empty()
        });
        self.len -= dropped;
        dropped
    }

    /// Forget everything (used when the variable order changes and the pool
    /// is rebuilt).
    pub fn clear(&mut self) {
        self.buckets.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_lang::builder::*;
    use snap_lang::{Field, Value};

    fn p1() -> Policy {
        modify(Field::OutPort, Value::Int(1))
    }

    fn p2() -> Policy {
        modify(Field::OutPort, Value::Int(2))
    }

    #[test]
    fn lookup_confirms_structural_equality() {
        let mut c = TranslationCache::default();
        c.insert(&p1(), NodeId(7));
        assert_eq!(c.lookup(&p1()), Some(NodeId(7)));
        assert_eq!(c.lookup(&p2()), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_keeps_recently_used_entries() {
        let mut c = TranslationCache::default();
        c.bump_generation(); // gen 1
        c.insert(&p1(), NodeId(7));
        c.bump_generation(); // gen 2
        c.insert(&p2(), NodeId(8));
        c.lookup(&p2());
        // Keep only entries used in the current generation.
        let evicted = c.evict_stale(1);
        assert_eq!(evicted, 1);
        assert_eq!(c.lookup(&p1()), None);
        assert_eq!(c.lookup(&p2()), Some(NodeId(8)));
    }

    #[test]
    fn generation_refresh_on_hit_prevents_eviction() {
        let mut c = TranslationCache::default();
        c.bump_generation();
        c.insert(&p1(), NodeId(7));
        for _ in 0..5 {
            c.bump_generation();
            assert_eq!(c.lookup(&p1()), Some(NodeId(7)));
        }
        assert_eq!(c.evict_stale(2), 0);
        assert_eq!(c.len(), 1);
    }
}
