//! Rule generation (§4.5): per-switch configurations and data-plane programs.
//!
//! Rule generation combines the xFDD with the placement/routing decision:
//! every switch receives (i) a handle on the interned program — the arena's
//! stable node ids are the SNAP-header tags, so resuming processing needs no
//! separate node-addressable flattening, and distributing the "full diagram"
//! to every switch is an `Arc` clone — (ii) the set of state variables it
//! owns, and (iii) the forwarding paths chosen for each OBS port pair. The
//! program is also lowered once to the NetASM-like instruction set for
//! rule-count statistics.

use crate::optimize::PlacementResult;
use serde::{Deserialize, Serialize};
use snap_dataplane::{NetAsmProgram, SwitchConfig};
use snap_lang::StateVar;
use snap_topology::{NodeId, PortId, Topology};
use snap_xfdd::Xfdd;
use std::collections::{BTreeMap, BTreeSet};

/// The output of rule generation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RuleGenOutput {
    /// Per-switch configuration for the data-plane simulator.
    pub configs: Vec<SwitchConfig>,
    /// The forwarding path chosen for each OBS port pair.
    pub forwarding: BTreeMap<(PortId, PortId), Vec<NodeId>>,
    /// The lowered instruction program per switch that owns state or hosts
    /// external ports (other switches only forward).
    pub programs: BTreeMap<NodeId, NetAsmProgram>,
    /// Total number of data-plane instructions across all switches.
    pub total_instructions: usize,
    /// Total number of stateful instructions across all switches.
    pub total_state_ops: usize,
}

/// Generate per-switch configurations.
pub fn generate_rules(
    topology: &Topology,
    xfdd: &Xfdd,
    placement: &PlacementResult,
) -> RuleGenOutput {
    // The lowered instruction program is identical on every switch; flatten
    // the diagram once (the same dense representation the dataplane
    // executes), lower once and clone.
    let flat = xfdd.flatten();
    let lowered = NetAsmProgram::lower_flat(&flat);

    // Which variables live on which switch.
    let mut vars_per_switch: BTreeMap<NodeId, BTreeSet<StateVar>> = BTreeMap::new();
    for (var, node) in &placement.placement {
        vars_per_switch
            .entry(*node)
            .or_default()
            .insert(var.clone());
    }
    let configs = SwitchConfig::for_topology(topology, xfdd, &vars_per_switch);

    let mut programs = BTreeMap::new();
    let mut total_instructions = 0;
    let mut total_state_ops = 0;
    for config in &configs {
        // Switches that neither hold state nor host ports only forward; they
        // still receive the program (they may become relevant after a TE
        // re-route) but are not counted towards the rule statistics.
        let relevant = !config.local_vars.is_empty() || !config.ports.is_empty();
        if relevant {
            total_instructions += lowered.len();
            total_state_ops += lowered.num_state_ops();
            programs.insert(config.node, lowered.clone());
        }
    }

    RuleGenOutput {
        configs,
        forwarding: placement.paths.clone(),
        programs,
        total_instructions,
        total_state_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::PacketStateMap;
    use crate::optimize::{place_and_route, OptimizeInput, SolverChoice};
    use snap_lang::builder::*;
    use snap_lang::{Field, Policy, Value};
    use snap_topology::{generators::campus, TrafficMatrix};
    use snap_xfdd::StateDependencies;

    fn compile_small() -> (snap_topology::Topology, Xfdd, PlacementResult) {
        let policy: Policy = state_incr("count", vec![field(Field::InPort)]).seq(ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24),
            modify(Field::OutPort, Value::Int(6)),
            modify(Field::OutPort, Value::Int(1)),
        ));
        let topo = campus();
        let tm = TrafficMatrix::uniform(&topo, 1.0);
        let deps = StateDependencies::analyze(&policy);
        let d = snap_xfdd::compile(&policy).unwrap();
        let ports: Vec<PortId> = topo.external_ports().map(|(p, _)| p).collect();
        let psm = PacketStateMap::analyze(&d, &ports);
        let input = OptimizeInput {
            topology: &topo,
            traffic: &tm,
            mapping: &psm,
            deps: &deps,
        };
        let placement = place_and_route(&input, SolverChoice::Heuristic);
        (topo, d, placement)
    }

    #[test]
    fn every_switch_gets_a_config_and_state_owners_get_their_vars() {
        let (topo, d, placement) = compile_small();
        let out = generate_rules(&topo, &d, &placement);
        assert_eq!(out.configs.len(), topo.num_nodes());
        let owner = placement.placement[&StateVar::new("count")];
        let owner_config = out.configs.iter().find(|c| c.node == owner).unwrap();
        assert!(owner_config.local_vars.contains(&StateVar::new("count")));
        // Exactly one switch owns the variable.
        let owners = out
            .configs
            .iter()
            .filter(|c| c.local_vars.contains(&StateVar::new("count")))
            .count();
        assert_eq!(owners, 1);
    }

    #[test]
    fn rule_statistics_are_positive_and_paths_are_copied() {
        let (topo, d, placement) = compile_small();
        let out = generate_rules(&topo, &d, &placement);
        assert!(out.total_instructions > 0);
        assert!(out.total_state_ops > 0);
        assert_eq!(out.forwarding, placement.paths);
        // Edge switches (with ports) have lowered programs.
        let edge = topo.port_switch(PortId(1)).unwrap();
        assert!(out.programs.contains_key(&edge));
        let _ = d;
    }
}
