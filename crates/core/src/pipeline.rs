//! The end-to-end SNAP compiler (Figure 5): state dependency analysis, xFDD
//! generation, packet-state mapping, placement/routing optimization and rule
//! generation — with per-phase timings matching Table 4 of the paper.

use crate::mapping::PacketStateMap;
use crate::optimize::{
    place_and_route_timed, reroute_timed, OptimizeInput, PlacementResult, SolverChoice,
};
use crate::rulegen::{generate_rules, RuleGenOutput};
use serde::{Deserialize, Serialize};
use snap_dataplane::Network;
use snap_lang::Policy;
use snap_topology::{PortId, Topology, TrafficMatrix};
use snap_xfdd::{to_xfdd, CompileError, Pool, StateDependencies, Xfdd};
use std::time::{Duration, Instant};

/// Options controlling compilation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Which placement/routing engine to use.
    pub solver: SolverChoice,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            solver: SolverChoice::Auto,
        }
    }
}

/// Wall-clock time spent in each compiler phase (the paper's P1–P6).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// P1 — state dependency analysis.
    pub dependency_analysis: Duration,
    /// P2 — xFDD generation.
    pub xfdd_generation: Duration,
    /// P3 — packet-state mapping.
    pub packet_state_mapping: Duration,
    /// P4 — MILP model creation (zero for the heuristic engine).
    pub milp_creation: Duration,
    /// P5 — placement and routing (ST or TE).
    pub optimization: Duration,
    /// P6 — rule generation.
    pub rule_generation: Duration,
}

impl PhaseTimings {
    /// Total compilation time.
    pub fn total(&self) -> Duration {
        self.dependency_analysis
            + self.xfdd_generation
            + self.packet_state_mapping
            + self.milp_creation
            + self.optimization
            + self.rule_generation
    }

    /// The program-analysis share (P1+P2+P3), as reported in Table 6.
    pub fn analysis(&self) -> Duration {
        self.dependency_analysis + self.xfdd_generation + self.packet_state_mapping
    }
}

/// A fully compiled program.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The source policy.
    pub policy: Policy,
    /// State dependency analysis results.
    pub deps: StateDependencies,
    /// The program's xFDD.
    pub xfdd: Xfdd,
    /// Packet-state mapping.
    pub mapping: PacketStateMap,
    /// Placement and routing decision.
    pub placement: PlacementResult,
    /// Per-switch rules and statistics.
    pub rules: RuleGenOutput,
    /// Per-phase timings for this compilation.
    pub timings: PhaseTimings,
}

/// The SNAP compiler for a particular topology and traffic matrix.
#[derive(Clone, Debug)]
pub struct Compiler {
    /// The target physical topology.
    pub topology: Topology,
    /// The expected traffic matrix.
    pub traffic: TrafficMatrix,
    /// Compilation options.
    pub options: CompileOptions,
}

impl Compiler {
    /// A compiler with default options.
    pub fn new(topology: Topology, traffic: TrafficMatrix) -> Self {
        Compiler {
            topology,
            traffic,
            options: CompileOptions::default(),
        }
    }

    /// Use a specific placement/routing engine.
    pub fn with_solver(mut self, solver: SolverChoice) -> Self {
        self.options.solver = solver;
        self
    }

    /// The OBS external ports of the target topology.
    pub fn ports(&self) -> Vec<PortId> {
        self.topology.external_ports().map(|(p, _)| p).collect()
    }

    /// Compile a policy end to end (the "cold start" / "policy change"
    /// scenario: all phases run).
    pub fn compile(&self, policy: &Policy) -> Result<Compiled, CompileError> {
        // P1 — state dependency analysis.
        let t = Instant::now();
        let deps = StateDependencies::analyze(policy);
        let dependency_analysis = t.elapsed();

        // P2 — xFDD generation, into a fresh hash-consed pool that is frozen
        // into a shareable handle once translation finishes.
        let t = Instant::now();
        let mut pool = Pool::new(deps.var_order());
        let root = to_xfdd(policy, &mut pool)?;
        let xfdd = Xfdd::new(pool, root);
        let xfdd_generation = t.elapsed();

        // P3 — packet-state mapping.
        let t = Instant::now();
        let mapping = PacketStateMap::analyze(&xfdd, &self.ports());
        let packet_state_mapping = t.elapsed();

        // P4 + P5 — placement and routing.
        let input = OptimizeInput {
            topology: &self.topology,
            traffic: &self.traffic,
            mapping: &mapping,
            deps: &deps,
        };
        let (placement, opt_timings) = place_and_route_timed(&input, self.options.solver);

        // P6 — rule generation.
        let t = Instant::now();
        let rules = generate_rules(&self.topology, &xfdd, &placement);
        let rule_generation = t.elapsed();

        Ok(Compiled {
            policy: policy.clone(),
            deps,
            xfdd,
            mapping,
            placement,
            rules,
            timings: PhaseTimings {
                dependency_analysis,
                xfdd_generation,
                packet_state_mapping,
                milp_creation: opt_timings.model_creation,
                optimization: opt_timings.solving,
                rule_generation,
            },
        })
    }

    /// React to a topology/traffic-matrix change: keep the program and the
    /// placement, re-optimize routing only and regenerate rules (the paper's
    /// "TE" scenario). Returns the updated compilation artifacts.
    pub fn reroute(
        &self,
        compiled: &Compiled,
        new_traffic: &TrafficMatrix,
    ) -> (Compiled, PhaseTimings) {
        let input = OptimizeInput {
            topology: &self.topology,
            traffic: new_traffic,
            mapping: &compiled.mapping,
            deps: &compiled.deps,
        };
        let (placement, opt_timings) =
            reroute_timed(&input, &compiled.placement.placement, self.options.solver);
        let t = Instant::now();
        let rules = generate_rules(&self.topology, &compiled.xfdd, &placement);
        let rule_generation = t.elapsed();
        let timings = PhaseTimings {
            optimization: opt_timings.solving,
            rule_generation,
            ..Default::default()
        };
        let updated = Compiled {
            policy: compiled.policy.clone(),
            deps: compiled.deps.clone(),
            xfdd: compiled.xfdd.clone(),
            mapping: compiled.mapping.clone(),
            placement,
            rules,
            timings,
        };
        (updated, timings)
    }

    /// Instantiate the distributed data plane for a compiled program.
    pub fn build_network(&self, compiled: &Compiled) -> Network {
        Network::new(self.topology.clone(), compiled.rules.configs.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_lang::builder::*;
    use snap_lang::{eval, Field, Packet, StateVar, Store, Value};
    use snap_topology::generators::campus;
    use std::collections::BTreeSet;

    fn assign_egress() -> Policy {
        let mut p = drop();
        for i in (1..=6u8).rev() {
            p = ite(
                test_prefix(Field::DstIp, 10, 0, i, 0, 24),
                modify(Field::OutPort, Value::Int(i64::from(i))),
                p,
            );
        }
        p
    }

    fn dns_tunnel_detect(threshold: i64) -> Policy {
        ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24).and(test(Field::SrcPort, Value::Int(53))),
            Policy::seq_all(vec![
                state_set(
                    "orphan",
                    vec![field(Field::DstIp), field(Field::DnsRdata)],
                    Value::Bool(true),
                ),
                state_incr("susp-client", vec![field(Field::DstIp)]),
                ite(
                    state_test("susp-client", vec![field(Field::DstIp)], int(threshold)),
                    state_set("blacklist", vec![field(Field::DstIp)], Value::Bool(true)),
                    id(),
                ),
            ]),
            ite(
                test_prefix(Field::SrcIp, 10, 0, 6, 0, 24).and(state_truthy(
                    "orphan",
                    vec![field(Field::SrcIp), field(Field::DstIp)],
                )),
                state_set(
                    "orphan",
                    vec![field(Field::SrcIp), field(Field::DstIp)],
                    Value::Bool(false),
                )
                .seq(state_decr("susp-client", vec![field(Field::SrcIp)])),
                id(),
            ),
        )
    }

    /// The operator's `assumption` policy from §4.3: traffic with source IP
    /// `10.0.i.0/24` enters the network at port `i`.
    fn assumption() -> Policy {
        Policy::par_all((1..=6u8).map(|i| {
            filter(
                test_prefix(Field::SrcIp, 10, 0, i, 0, 24)
                    .and(test(Field::InPort, Value::Int(i64::from(i)))),
            )
        }))
    }

    fn campus_compiler() -> Compiler {
        let topo = campus();
        let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
        Compiler::new(topo, tm).with_solver(SolverChoice::Heuristic)
    }

    #[test]
    fn running_example_compiles_and_places_state_on_d4() {
        let compiler = campus_compiler();
        let program = assumption().seq(dns_tunnel_detect(3).seq(assign_egress()));
        let compiled = compiler.compile(&program).unwrap();
        assert_eq!(compiled.deps.variables.len(), 3);
        assert!(compiled.timings.total() > Duration::ZERO);
        // All three variables are co-placed (they share the same traffic) and
        // the chosen switch is D4, the paper's optimal location: every packet
        // to or from the protected subnet passes through it.
        let d4 = compiler.topology.node_by_name("D4").unwrap();
        for var in ["orphan", "susp-client", "blacklist"] {
            assert_eq!(
                compiled.placement.placement[&StateVar::new(var)],
                d4,
                "{var} should be placed on D4"
            );
        }
        // Paths for DNS flows respect the dependency order.
        let order = [
            StateVar::new("orphan"),
            StateVar::new("susp-client"),
            StateVar::new("blacklist"),
        ];
        for u in 1..=5 {
            assert!(compiled
                .placement
                .path_respects_order(PortId(u), PortId(6), &order));
        }
    }

    #[test]
    fn compiled_network_matches_obs_semantics_on_a_trace() {
        let compiler = campus_compiler();
        let program = dns_tunnel_detect(2).seq(assign_egress());
        let compiled = compiler.compile(&program).unwrap();
        let network = compiler.build_network(&compiled);

        let client = Value::ip(10, 0, 6, 77);
        let attacker_dns = Packet::new()
            .with(Field::SrcIp, Value::ip(8, 8, 8, 8))
            .with(Field::DstIp, client.clone())
            .with(Field::SrcPort, 53)
            .with(Field::DnsRdata, Value::ip(1, 2, 3, 4));
        let trace = vec![
            (PortId(1), attacker_dns.clone()),
            (
                PortId(1),
                attacker_dns.updated(Field::DnsRdata, Value::ip(1, 2, 3, 5)),
            ),
        ];

        // Reference OBS execution.
        let mut store = Store::new();
        let mut obs_outputs = Vec::new();
        for (_, pkt) in &trace {
            let r = eval(&program, &store, pkt).unwrap();
            store = r.store;
            obs_outputs.push(r.packets);
        }

        let dist = network.inject_trace(&trace).unwrap();
        for (d, o) in dist.iter().zip(obs_outputs.iter()) {
            let pkts: BTreeSet<Packet> = d.iter().map(|(_, p)| p.clone()).collect();
            assert_eq!(&pkts, o);
        }
        assert_eq!(network.aggregate_store(), store);
        // After two unanswered DNS responses the client is blacklisted.
        assert_eq!(
            network
                .aggregate_store()
                .get(&StateVar::new("blacklist"), &[client]),
            Value::Bool(true)
        );
    }

    #[test]
    fn reroute_is_faster_than_full_compilation_and_keeps_placement() {
        let compiler = campus_compiler();
        let program = dns_tunnel_detect(3).seq(assign_egress());
        let compiled = compiler.compile(&program).unwrap();
        let new_tm = TrafficMatrix::gravity(&compiler.topology, 900.0, 7);
        let (updated, te_timings) = compiler.reroute(&compiled, &new_tm);
        assert_eq!(updated.placement.placement, compiled.placement.placement);
        assert!(te_timings.dependency_analysis == Duration::ZERO);
        assert!(!updated.placement.paths.is_empty());
    }

    #[test]
    fn stateless_policy_compiles_with_empty_placement() {
        let compiler = campus_compiler();
        let compiled = compiler.compile(&assign_egress()).unwrap();
        assert!(compiled.placement.placement.is_empty());
        assert_eq!(compiled.mapping.num_stateful_flows(), 0);
        assert!(compiled.rules.total_instructions > 0);
    }

    #[test]
    fn racy_policy_is_rejected_at_compile_time() {
        let compiler = campus_compiler();
        let racy = state_set("s", vec![int(0)], int(1)).par(state_set("s", vec![int(0)], int(2)));
        let err = compiler.compile(&racy).unwrap_err();
        assert!(matches!(err, CompileError::StateRace { .. }));
    }
}
