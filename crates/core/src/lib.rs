//! # snap-core
//!
//! The SNAP compiler: everything needed to take a one-big-switch SNAP policy
//! (from `snap-lang`) and realize it on a physical topology
//! (from `snap-topology`), following §4 of the paper:
//!
//! 1. state dependency analysis (re-exported from `snap-xfdd`),
//! 2. translation to xFDDs (re-exported from `snap-xfdd`),
//! 3. packet-state mapping ([`PacketStateMap`]),
//! 4. joint state placement and routing ([`optimize`]) — the Table 2 MILP
//!    solved with the built-in simplex/branch-and-bound, or a heuristic
//!    placer for large instances,
//! 5. rule generation ([`rulegen`]) producing per-switch configurations for
//!    the `snap-dataplane` simulator.
//!
//! The [`Compiler`] type ties the phases together and reports per-phase
//! timings (the paper's P1–P6), which the benchmark harness uses to
//! regenerate Table 6 and Figures 9–11.
//!
//! ```
//! use snap_core::{Compiler, SolverChoice};
//! use snap_lang::prelude::*;
//! use snap_topology::{generators, TrafficMatrix};
//!
//! // Count packets per ingress port and send everything to port 6.
//! let policy = state_incr("count", vec![field(Field::InPort)])
//!     .seq(modify(Field::OutPort, Value::Int(6)));
//! let topo = generators::campus();
//! let tm = TrafficMatrix::uniform(&topo, 10.0);
//! let compiler = Compiler::new(topo, tm).with_solver(SolverChoice::Heuristic);
//! let compiled = compiler.compile(&policy).unwrap();
//! assert_eq!(compiled.placement.placement.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod mapping;
pub mod optimize;
pub mod pipeline;
pub mod rulegen;

pub use mapping::PacketStateMap;
pub use optimize::{
    place_and_route, place_and_route_timed, reroute, reroute_timed, OptimizeInput, OptimizeTimings,
    PlacementResult, SolverChoice,
};
pub use pipeline::{CompileOptions, Compiled, Compiler, PhaseTimings};
pub use rulegen::{generate_rules, RuleGenOutput};

// Re-export the analysis passes that live with the xFDD crate so that users
// of the compiler see one coherent API.
pub use snap_xfdd::{to_xfdd, CompileError, StateDependencies, Xfdd};
