//! Joint state placement and routing (§4.4).
//!
//! Two engines are provided:
//!
//! * **Exact**: the mixed-integer linear program of Table 2 — binary
//!   placement variables `P_{s,n}`, per-flow routing fractions `R_{uv,ij}`
//!   and "has passed s" flows `PS_{s,uv,ij}` — built with `snap-milp` and
//!   solved with simplex + branch and bound. The paper solves this with
//!   Gurobi; our from-scratch solver handles the small/medium instances used
//!   in tests and the campus-scale experiments.
//! * **Heuristic**: a traffic-weighted placement (each co-location group goes
//!   to the switch minimizing demand-weighted detour) plus
//!   ordered-waypoint shortest-path routing. Used for the large Table 5 /
//!   Figure 10 topologies where an exact MILP without a commercial solver is
//!   impractical.
//!
//! Both produce a [`PlacementResult`]: a switch per state variable, a path
//! per OBS flow that visits the needed variables in dependency order, and
//! link-utilization statistics.

use crate::mapping::PacketStateMap;
use serde::{Deserialize, Serialize};
use snap_lang::StateVar;
use snap_milp::{solve_lp, solve_milp, LinExpr, Model, Sense, SolveResult, VarId};
use snap_topology::{NodeId, PortId, Topology, TrafficMatrix};
use snap_xfdd::StateDependencies;
use std::collections::{BTreeMap, BTreeSet};

/// Which engine to use for placement and routing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverChoice {
    /// Always build and solve the exact MILP.
    Exact,
    /// Always use the heuristic placer.
    Heuristic,
    /// Exact when the instance is small enough, heuristic otherwise.
    Auto,
}

/// The inputs of the optimization phase.
pub struct OptimizeInput<'a> {
    /// The physical topology.
    pub topology: &'a Topology,
    /// Expected traffic between OBS ports.
    pub traffic: &'a TrafficMatrix,
    /// Which flows need which state variables.
    pub mapping: &'a PacketStateMap,
    /// State dependency analysis (order, `dep`, `tied`).
    pub deps: &'a StateDependencies,
}

/// The result of placement and routing.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PlacementResult {
    /// The switch chosen for each state variable.
    pub placement: BTreeMap<StateVar, NodeId>,
    /// The switch-level path chosen for each OBS flow with demand.
    pub paths: BTreeMap<(PortId, PortId), Vec<NodeId>>,
    /// Sum over links of `load / capacity` (the MILP objective).
    pub total_utilization: f64,
    /// The most utilized link's `load / capacity`.
    pub max_utilization: f64,
    /// Which engine produced the result (`"milp"` or `"heuristic"`).
    pub method: String,
}

impl PlacementResult {
    /// Does the path chosen for `(u, v)` visit the switches holding all the
    /// variables in `vars`, in the given order?
    pub fn path_respects_order(&self, u: PortId, v: PortId, vars: &[StateVar]) -> bool {
        let Some(path) = self.paths.get(&(u, v)) else {
            return vars.is_empty();
        };
        let mut position = 0usize;
        for var in vars {
            let Some(&node) = self.placement.get(var) else {
                return false;
            };
            match path[position..].iter().position(|&n| n == node) {
                Some(offset) => position += offset,
                None => return false,
            }
        }
        true
    }
}

/// Wall-clock timings of the optimization phase, split the way Table 4/6 of
/// the paper report them: model (MILP) creation versus solving.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OptimizeTimings {
    /// Time spent building the MILP/LP model (the paper's P4). Zero when the
    /// heuristic engine is used.
    pub model_creation: std::time::Duration,
    /// Time spent solving (the paper's P5).
    pub solving: std::time::Duration,
}

/// [`place_and_route`] with per-sub-phase timings.
pub fn place_and_route_timed(
    input: &OptimizeInput<'_>,
    choice: SolverChoice,
) -> (PlacementResult, OptimizeTimings) {
    let use_exact = matches!(choice, SolverChoice::Exact)
        || (matches!(choice, SolverChoice::Auto) && exact_is_tractable(input));
    if use_exact {
        let t0 = std::time::Instant::now();
        let instance = build_model(input, None);
        let model_creation = t0.elapsed();
        let t1 = std::time::Instant::now();
        let result = match solve_milp(&instance.model) {
            SolveResult::Optimal(solution) => {
                let variables = all_variables(input);
                let mut placement = BTreeMap::new();
                for s in &variables {
                    for n in input.topology.nodes() {
                        if let Some(&pv) = instance.vars.placement.get(&(s.clone(), n)) {
                            if solution.is_set(pv) {
                                placement.insert(s.clone(), n);
                            }
                        }
                    }
                }
                finish_exact(input, &instance, &solution.values, placement)
            }
            _ => heuristic_place_and_route(input, None),
        };
        let solving = t1.elapsed();
        (
            result,
            OptimizeTimings {
                model_creation,
                solving,
            },
        )
    } else {
        let t1 = std::time::Instant::now();
        let result = heuristic_place_and_route(input, None);
        let solving = t1.elapsed();
        (
            result,
            OptimizeTimings {
                model_creation: std::time::Duration::ZERO,
                solving,
            },
        )
    }
}

/// [`reroute`] with timings (the "TE" variant never rebuilds the placement).
pub fn reroute_timed(
    input: &OptimizeInput<'_>,
    placement: &BTreeMap<StateVar, NodeId>,
    choice: SolverChoice,
) -> (PlacementResult, OptimizeTimings) {
    let t1 = std::time::Instant::now();
    let result = reroute(input, placement, choice);
    let solving = t1.elapsed();
    (
        result,
        OptimizeTimings {
            model_creation: std::time::Duration::ZERO,
            solving,
        },
    )
}

/// Decide placement and routing.
pub fn place_and_route(input: &OptimizeInput<'_>, choice: SolverChoice) -> PlacementResult {
    match choice {
        SolverChoice::Heuristic => heuristic_place_and_route(input, None),
        SolverChoice::Exact => exact_place_and_route(input),
        SolverChoice::Auto => {
            if exact_is_tractable(input) {
                exact_place_and_route(input)
            } else {
                heuristic_place_and_route(input, None)
            }
        }
    }
}

/// Re-optimize routing only, keeping an existing placement (the paper's "TE"
/// variant, run on topology or traffic-matrix changes).
pub fn reroute(
    input: &OptimizeInput<'_>,
    placement: &BTreeMap<StateVar, NodeId>,
    choice: SolverChoice,
) -> PlacementResult {
    match choice {
        SolverChoice::Heuristic => heuristic_place_and_route(input, Some(placement.clone())),
        SolverChoice::Exact => exact_route_fixed_placement(input, placement)
            .unwrap_or_else(|| heuristic_place_and_route(input, Some(placement.clone()))),
        SolverChoice::Auto => {
            if exact_is_tractable(input) {
                exact_route_fixed_placement(input, placement)
                    .unwrap_or_else(|| heuristic_place_and_route(input, Some(placement.clone())))
            } else {
                heuristic_place_and_route(input, Some(placement.clone()))
            }
        }
    }
}

/// A rough tractability bound for the exact MILP with the built-in solver.
fn exact_is_tractable(input: &OptimizeInput<'_>) -> bool {
    let demands = input.traffic.num_demands();
    let links = input.topology.num_links();
    let vars = all_variables(input).len();
    // R variables plus PS variables; keep the dense tableau modest.
    demands * links <= 4_000 && vars * input.topology.num_nodes() <= 600
}

fn all_variables(input: &OptimizeInput<'_>) -> BTreeSet<StateVar> {
    let mut vars = input.deps.variables.clone();
    vars.extend(input.mapping.all_vars());
    vars
}

// ---------------------------------------------------------------------------
// Heuristic engine
// ---------------------------------------------------------------------------

fn heuristic_place_and_route(
    input: &OptimizeInput<'_>,
    fixed: Option<BTreeMap<StateVar, NodeId>>,
) -> PlacementResult {
    let topo = input.topology;
    let variables = all_variables(input);
    let order = input.deps.var_order();

    let placement = match fixed {
        Some(p) => p,
        None => {
            // Group variables that must be co-located.
            let groups = colocation_groups(&variables, input.deps);
            let mut placement = BTreeMap::new();
            for group in groups {
                let node = best_node_for_group(input, &group);
                for var in group {
                    placement.insert(var, node);
                }
            }
            placement
        }
    };

    // Route every demand through its needed variables in dependency order.
    let mut paths = BTreeMap::new();
    for (u, v, demand) in input.traffic.iter() {
        if demand <= 0.0 {
            continue;
        }
        let (Some(src), Some(dst)) = (topo.port_switch(u), topo.port_switch(v)) else {
            continue;
        };
        let mut needed: Vec<StateVar> = input.mapping.vars_for(u, v).into_iter().collect();
        needed.sort_by_key(|s| order.rank(s));
        let mut waypoints: Vec<NodeId> = Vec::new();
        for var in &needed {
            if let Some(&n) = placement.get(var) {
                if waypoints.last() != Some(&n) {
                    waypoints.push(n);
                }
            }
        }
        if let Some(path) = topo.path_through(src, &waypoints, dst) {
            paths.insert((u, v), path);
        }
    }

    let (total, max) = utilization(topo, input.traffic, &paths);
    PlacementResult {
        placement,
        paths,
        total_utilization: total,
        max_utilization: max,
        method: "heuristic".to_string(),
    }
}

/// Union-find-free co-location grouping: connected components of the `tied`
/// relation, plus singletons for everything else, ordered by variable order.
fn colocation_groups(
    variables: &BTreeSet<StateVar>,
    deps: &StateDependencies,
) -> Vec<Vec<StateVar>> {
    let mut assigned: BTreeSet<StateVar> = BTreeSet::new();
    let mut groups = Vec::new();
    let order = deps.var_order();
    let mut sorted: Vec<StateVar> = variables.iter().cloned().collect();
    sorted.sort_by_key(|v| order.rank(v));
    for var in sorted {
        if assigned.contains(&var) {
            continue;
        }
        // Grow the component of `var` under `tied`.
        let mut group = vec![var.clone()];
        assigned.insert(var.clone());
        let mut frontier = vec![var];
        while let Some(cur) = frontier.pop() {
            for (a, b) in &deps.tied {
                if *a == cur && !assigned.contains(b) {
                    assigned.insert(b.clone());
                    group.push(b.clone());
                    frontier.push(b.clone());
                }
            }
        }
        groups.push(group);
    }
    groups
}

/// The switch minimizing the demand-weighted detour for all flows that need
/// any variable of the group.
fn best_node_for_group(input: &OptimizeInput<'_>, group: &[StateVar]) -> NodeId {
    let topo = input.topology;
    // Flows needing the group, with their demand.
    let mut flows: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for (u, v, vars) in input.mapping.iter() {
        if group.iter().any(|g| vars.contains(g)) {
            let demand = input.traffic.get(u, v);
            if demand <= 0.0 {
                continue;
            }
            if let (Some(src), Some(dst)) = (topo.port_switch(u), topo.port_switch(v)) {
                flows.push((src, dst, demand));
            }
        }
    }
    let candidates: Vec<NodeId> = topo.nodes().collect();
    if flows.is_empty() {
        // Nothing constrains the group; put it on the most central switch.
        return candidates
            .iter()
            .copied()
            .min_by_key(|&n| {
                topo.nodes()
                    .map(|m| topo.distance(n, m).unwrap_or(usize::MAX / 2))
                    .sum::<usize>()
            })
            .unwrap_or(NodeId(0));
    }
    let mut best = candidates[0];
    let mut best_cost = f64::INFINITY;
    for &n in &candidates {
        let mut cost = 0.0;
        for &(src, dst, demand) in &flows {
            let d1 = topo.distance(src, n).unwrap_or(usize::MAX / 4) as f64;
            let d2 = topo.distance(n, dst).unwrap_or(usize::MAX / 4) as f64;
            cost += demand * (d1 + d2);
        }
        if cost < best_cost {
            best_cost = cost;
            best = n;
        }
    }
    best
}

/// Link-utilization statistics for a set of single-path routes.
fn utilization(
    topo: &Topology,
    traffic: &TrafficMatrix,
    paths: &BTreeMap<(PortId, PortId), Vec<NodeId>>,
) -> (f64, f64) {
    let mut load: BTreeMap<(NodeId, NodeId), f64> = BTreeMap::new();
    for (&(u, v), path) in paths {
        let demand = traffic.get(u, v);
        for hop in path.windows(2) {
            *load.entry((hop[0], hop[1])).or_insert(0.0) += demand;
        }
    }
    let mut total = 0.0;
    let mut max = 0.0f64;
    for (&(a, b), &l) in &load {
        let cap = topo.link_capacity(a, b).unwrap_or(f64::INFINITY);
        let u = if cap.is_finite() && cap > 0.0 {
            l / cap
        } else {
            0.0
        };
        total += u;
        max = max.max(u);
    }
    (total, max)
}

// ---------------------------------------------------------------------------
// Exact engine (Table 2)
// ---------------------------------------------------------------------------

struct MilpVars {
    /// `R_{uv,ij}` per (demand index, link index).
    routing: BTreeMap<(usize, usize), VarId>,
    /// `P_{s,n}` per (variable, node).
    placement: BTreeMap<(StateVar, NodeId), VarId>,
    /// `PS_{s,uv,ij}` per (variable, demand index, link index).
    passed: BTreeMap<(StateVar, usize, usize), VarId>,
}

struct MilpInstance {
    model: Model,
    vars: MilpVars,
    demands: Vec<(PortId, PortId, f64, NodeId, NodeId)>,
}

/// Build the Table 2 model. When `fixed_placement` is given, the placement
/// variables are replaced by constants and the model becomes the routing-only
/// "TE" LP.
fn build_model(
    input: &OptimizeInput<'_>,
    fixed_placement: Option<&BTreeMap<StateVar, NodeId>>,
) -> MilpInstance {
    let topo = input.topology;
    let links: Vec<(NodeId, NodeId, f64)> = topo
        .links()
        .iter()
        .map(|l| (l.from, l.to, l.capacity))
        .collect();
    let variables = all_variables(input);
    let order = input.deps.var_order();

    // Demands with positive volume and distinct endpoint switches.
    let mut demands = Vec::new();
    for (u, v, d) in input.traffic.iter() {
        if d <= 0.0 {
            continue;
        }
        let (Some(src), Some(dst)) = (topo.port_switch(u), topo.port_switch(v)) else {
            continue;
        };
        if src == dst {
            continue;
        }
        demands.push((u, v, d, src, dst));
    }

    let mut model = Model::new();
    let mut vars = MilpVars {
        routing: BTreeMap::new(),
        placement: BTreeMap::new(),
        passed: BTreeMap::new(),
    };

    // Routing variables and objective (sum of link utilization).
    for (di, &(_, _, demand, _, _)) in demands.iter().enumerate() {
        for (li, &(i, j, cap)) in links.iter().enumerate() {
            let r = model.add_var(format!("R_{di}_{}_{}", i.0, j.0), 0.0, f64::INFINITY);
            model.set_objective(r, demand / cap.max(1e-9));
            vars.routing.insert((di, li), r);
        }
    }

    // Placement variables (binary) unless fixed.
    let placement_value = |s: &StateVar, n: NodeId| -> Option<f64> {
        fixed_placement.map(|p| if p.get(s) == Some(&n) { 1.0 } else { 0.0 })
    };
    if fixed_placement.is_none() {
        for s in &variables {
            for n in topo.nodes() {
                let p = model.add_binary(format!("P_{s}_{}", n.0));
                vars.placement.insert((s.clone(), n), p);
            }
        }
    }

    // PS variables for (s, demand) pairs where the flow needs s.
    for (di, &(u, v, _, _, _)) in demands.iter().enumerate() {
        for s in input.mapping.vars_for(u, v) {
            for li in 0..links.len() {
                let ps = model.add_var(format!("PS_{s}_{di}_{li}"), 0.0, f64::INFINITY);
                vars.passed.insert((s.clone(), di, li), ps);
            }
        }
    }

    // Helper closures for link indexing.
    let out_links = |n: NodeId| -> Vec<usize> {
        links
            .iter()
            .enumerate()
            .filter(|(_, (i, _, _))| *i == n)
            .map(|(li, _)| li)
            .collect()
    };
    let in_links = |n: NodeId| -> Vec<usize> {
        links
            .iter()
            .enumerate()
            .filter(|(_, (_, j, _))| *j == n)
            .map(|(li, _)| li)
            .collect()
    };

    // Routing constraints.
    for (di, &(_, _, _, src, dst)) in demands.iter().enumerate() {
        // Leave the source, arrive at the destination.
        let mut leave = LinExpr::new();
        for li in out_links(src) {
            leave.add(vars.routing[&(di, li)], 1.0);
        }
        model.add_constraint(format!("leave_src_{di}"), leave, Sense::Eq, 1.0);
        let mut arrive = LinExpr::new();
        for li in in_links(dst) {
            arrive.add(vars.routing[&(di, li)], 1.0);
        }
        model.add_constraint(format!("arrive_dst_{di}"), arrive, Sense::Eq, 1.0);
        // Conservation and no-loop constraints at intermediate switches.
        for n in topo.nodes() {
            if n == src || n == dst {
                continue;
            }
            let mut conserve = LinExpr::new();
            let mut incoming = LinExpr::new();
            for li in in_links(n) {
                conserve.add(vars.routing[&(di, li)], 1.0);
                incoming.add(vars.routing[&(di, li)], 1.0);
            }
            for li in out_links(n) {
                conserve.add(vars.routing[&(di, li)], -1.0);
            }
            model.add_constraint(format!("conserve_{di}_{}", n.0), conserve, Sense::Eq, 0.0);
            model.add_constraint(format!("noloop_{di}_{}", n.0), incoming, Sense::Le, 1.0);
        }
    }
    // Capacity constraints.
    for (li, &(i, j, cap)) in links.iter().enumerate() {
        let mut c = LinExpr::new();
        for (di, &(_, _, demand, _, _)) in demands.iter().enumerate() {
            c.add(vars.routing[&(di, li)], demand);
        }
        model.add_constraint(format!("cap_{}_{}", i.0, j.0), c, Sense::Le, cap);
    }

    // State constraints.
    if fixed_placement.is_none() {
        for s in &variables {
            // Exactly one location.
            let mut one = LinExpr::new();
            for n in topo.nodes() {
                one.add(vars.placement[&(s.clone(), n)], 1.0);
            }
            model.add_constraint(format!("place_{s}"), one, Sense::Eq, 1.0);
        }
        // Co-location of tied variables.
        for (s, t) in &input.deps.tied {
            if !variables.contains(s) || !variables.contains(t) {
                continue;
            }
            for n in topo.nodes() {
                let expr = LinExpr::new()
                    .with(vars.placement[&(s.clone(), n)], 1.0)
                    .with(vars.placement[&(t.clone(), n)], -1.0);
                model.add_constraint(format!("tied_{s}_{t}_{}", n.0), expr, Sense::Eq, 0.0);
            }
        }
    }

    // Per-flow state traversal, "passed" flow conservation and ordering.
    for (di, &(u, v, _, src, dst)) in demands.iter().enumerate() {
        let needed = input.mapping.vars_for(u, v);
        for s in &needed {
            // The flow must pass the switch where s is placed.
            for n in topo.nodes() {
                if n == src || n == dst {
                    continue;
                }
                let mut expr = LinExpr::new();
                for li in in_links(n) {
                    expr.add(vars.routing[&(di, li)], 1.0);
                }
                match placement_value(s, n) {
                    Some(pv) => {
                        if pv > 0.5 {
                            model.add_constraint(
                                format!("visit_{s}_{di}_{}", n.0),
                                expr,
                                Sense::Ge,
                                1.0,
                            );
                        }
                    }
                    None => {
                        expr.add(vars.placement[&(s.clone(), n)], -1.0);
                        model.add_constraint(
                            format!("visit_{s}_{di}_{}", n.0),
                            expr,
                            Sense::Ge,
                            0.0,
                        );
                    }
                }
            }
            // PS ≤ R.
            for li in 0..links.len() {
                let expr = LinExpr::new()
                    .with(vars.passed[&(s.clone(), di, li)], 1.0)
                    .with(vars.routing[&(di, li)], -1.0);
                model.add_constraint(format!("psr_{s}_{di}_{li}"), expr, Sense::Le, 0.0);
            }
            // PS conservation: the "passed s" flow is created at s's switch.
            for n in topo.nodes() {
                if n == dst {
                    continue;
                }
                let mut expr = LinExpr::new();
                for li in in_links(n) {
                    expr.add(vars.passed[&(s.clone(), di, li)], 1.0);
                }
                for li in out_links(n) {
                    expr.add(vars.passed[&(s.clone(), di, li)], -1.0);
                }
                let mut rhs = 0.0;
                match placement_value(s, n) {
                    Some(pv) => rhs = -pv,
                    None => {
                        expr.add(vars.placement[&(s.clone(), n)], 1.0);
                    }
                }
                model.add_constraint(format!("psflow_{s}_{di}_{}", n.0), expr, Sense::Eq, rhs);
            }
            // By the destination, the flow has passed s.
            let mut at_dst = LinExpr::new();
            for li in in_links(dst) {
                at_dst.add(vars.passed[&(s.clone(), di, li)], 1.0);
            }
            let rhs = match placement_value(s, dst) {
                Some(pv) => 1.0 - pv,
                None => {
                    at_dst.add(vars.placement[&(s.clone(), dst)], 1.0);
                    1.0
                }
            };
            model.add_constraint(format!("psdst_{s}_{di}"), at_dst, Sense::Eq, rhs);
        }
        // Ordering: s before t on this flow.
        for (s, t) in &input.deps.dep {
            if !needed.contains(s) || !needed.contains(t) {
                continue;
            }
            for n in topo.nodes() {
                let mut expr = LinExpr::new();
                for li in in_links(n) {
                    expr.add(vars.passed[&(s.clone(), di, li)], 1.0);
                }
                let mut rhs = 0.0;
                match (placement_value(s, n), placement_value(t, n)) {
                    (Some(ps), Some(pt)) => rhs = pt - ps,
                    _ => {
                        expr.add(vars.placement[&(s.clone(), n)], 1.0);
                        expr.add(vars.placement[&(t.clone(), n)], -1.0);
                    }
                }
                model.add_constraint(format!("order_{s}_{t}_{di}_{}", n.0), expr, Sense::Ge, rhs);
            }
        }
        let _ = order;
    }

    MilpInstance {
        model,
        vars,
        demands,
    }
}

fn exact_place_and_route(input: &OptimizeInput<'_>) -> PlacementResult {
    let instance = build_model(input, None);
    match solve_milp(&instance.model) {
        SolveResult::Optimal(solution) => {
            let variables = all_variables(input);
            let mut placement = BTreeMap::new();
            for s in &variables {
                for n in input.topology.nodes() {
                    if let Some(&pv) = instance.vars.placement.get(&(s.clone(), n)) {
                        if solution.is_set(pv) {
                            placement.insert(s.clone(), n);
                        }
                    }
                }
            }
            finish_exact(input, &instance, &solution.values, placement)
        }
        // Infeasible or unbounded exact model (e.g. capacity too tight):
        // fall back to the heuristic so compilation still succeeds.
        _ => heuristic_place_and_route(input, None),
    }
}

fn exact_route_fixed_placement(
    input: &OptimizeInput<'_>,
    placement: &BTreeMap<StateVar, NodeId>,
) -> Option<PlacementResult> {
    let instance = build_model(input, Some(placement));
    match solve_lp(&instance.model) {
        SolveResult::Optimal(solution) => Some(finish_exact(
            input,
            &instance,
            &solution.values,
            placement.clone(),
        )),
        _ => None,
    }
}

/// Turn a solved model into concrete per-flow paths (largest-fraction walk,
/// with a heuristic fallback when decoding fails) and utilization statistics.
fn finish_exact(
    input: &OptimizeInput<'_>,
    instance: &MilpInstance,
    values: &[f64],
    placement: BTreeMap<StateVar, NodeId>,
) -> PlacementResult {
    let topo = input.topology;
    let links: Vec<(NodeId, NodeId)> = topo.links().iter().map(|l| (l.from, l.to)).collect();
    let order = input.deps.var_order();
    let mut paths = BTreeMap::new();
    for (di, &(u, v, _, src, dst)) in instance.demands.iter().enumerate() {
        let mut path = vec![src];
        let mut current = src;
        let mut visited = BTreeSet::from([src]);
        let mut ok = false;
        for _ in 0..topo.num_nodes() * 2 {
            if current == dst {
                ok = true;
                break;
            }
            // Follow the outgoing link with the largest routing fraction.
            let mut best: Option<(NodeId, f64)> = None;
            for (li, &(i, j)) in links.iter().enumerate() {
                if i != current || visited.contains(&j) {
                    continue;
                }
                let r = instance
                    .vars
                    .routing
                    .get(&(di, li))
                    .map(|id| values[id.0])
                    .unwrap_or(0.0);
                if r > 1e-4 && best.map(|(_, b)| r > b).unwrap_or(true) {
                    best = Some((j, r));
                }
            }
            match best {
                Some((next, _)) => {
                    path.push(next);
                    visited.insert(next);
                    current = next;
                }
                None => break,
            }
        }
        if !ok {
            // Fallback: deterministic waypoint path honouring the placement.
            let mut needed: Vec<StateVar> = input.mapping.vars_for(u, v).into_iter().collect();
            needed.sort_by_key(|s| order.rank(s));
            let waypoints: Vec<NodeId> = needed
                .iter()
                .filter_map(|s| placement.get(s).copied())
                .collect();
            if let Some(p) = topo.path_through(src, &waypoints, dst) {
                path = p;
            }
        }
        paths.insert((u, v), path);
    }
    let (total, max) = utilization(topo, input.traffic, &paths);
    PlacementResult {
        placement,
        paths,
        total_utilization: total,
        max_utilization: max,
        method: "milp".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::PacketStateMap;
    use snap_lang::builder::*;
    use snap_lang::{Field, Policy, Value};
    use snap_topology::generators::campus;

    /// A small program: count DNS responses heading to port 6.
    fn small_policy() -> Policy {
        ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24).and(test(Field::SrcPort, Value::Int(53))),
            state_incr("dns-count", vec![field(Field::DstIp)]),
            id(),
        )
        .seq(ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24),
            modify(Field::OutPort, Value::Int(6)),
            ite(
                test_prefix(Field::DstIp, 10, 0, 1, 0, 24),
                modify(Field::OutPort, Value::Int(1)),
                drop(),
            ),
        ))
    }

    fn setup(
        policy: &Policy,
    ) -> (
        snap_topology::Topology,
        TrafficMatrix,
        PacketStateMap,
        StateDependencies,
    ) {
        let topo = campus();
        let tm = TrafficMatrix::uniform(&topo, 10.0);
        let deps = StateDependencies::analyze(policy);
        let d = snap_xfdd::compile(policy).unwrap();
        let ports: Vec<PortId> = topo.external_ports().map(|(p, _)| p).collect();
        let psm = PacketStateMap::analyze(&d, &ports);
        (topo, tm, psm, deps)
    }

    #[test]
    fn heuristic_places_state_and_routes_through_it() {
        let policy = small_policy();
        let (topo, tm, psm, deps) = setup(&policy);
        let input = OptimizeInput {
            topology: &topo,
            traffic: &tm,
            mapping: &psm,
            deps: &deps,
        };
        let result = place_and_route(&input, SolverChoice::Heuristic);
        assert_eq!(result.method, "heuristic");
        let node = result.placement.get(&"dns-count".into()).copied().unwrap();
        // Every flow that needs the variable passes its switch.
        for (u, v, vars) in psm.iter() {
            if vars.contains(&"dns-count".into()) && tm.get(u, v) > 0.0 {
                let path = result.paths.get(&(u, v)).expect("path exists");
                assert!(
                    path.contains(&node),
                    "flow {u:?}->{v:?} must pass the state switch"
                );
            }
        }
        assert!(result.total_utilization > 0.0);
        assert!(result.max_utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn heuristic_prefers_d4_for_port6_centric_state() {
        // All flows needing the variable either enter or leave at port 6,
        // which sits behind D4 — the weighted-detour minimizer must be D4
        // (the same location the paper reports for the running example).
        let policy = small_policy();
        let (topo, tm, psm, deps) = setup(&policy);
        let input = OptimizeInput {
            topology: &topo,
            traffic: &tm,
            mapping: &psm,
            deps: &deps,
        };
        let result = place_and_route(&input, SolverChoice::Heuristic);
        let node = result.placement[&StateVar::new("dns-count")];
        assert_eq!(topo.node_name(node), "D4");
    }

    #[test]
    fn exact_milp_on_a_tiny_instance_matches_expectations() {
        // Line topology a - b - c with ports 1 (at a) and 2 (at c); a single
        // state variable needed by both directions must sit on the a-c path,
        // and with traffic in both directions the middle switch minimizes
        // nothing in particular but every choice on the path is feasible.
        let mut topo = snap_topology::Topology::new("line");
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let c = topo.add_node("c");
        topo.add_bidi_link(a, b, 100.0);
        topo.add_bidi_link(b, c, 100.0);
        topo.add_external_port(PortId(1), a);
        topo.add_external_port(PortId(2), c);

        let policy = state_incr("cnt", vec![field(Field::SrcIp)]).seq(ite(
            test(Field::InPort, Value::Int(1)),
            modify(Field::OutPort, Value::Int(2)),
            modify(Field::OutPort, Value::Int(1)),
        ));
        let deps = StateDependencies::analyze(&policy);
        let d = snap_xfdd::compile(&policy).unwrap();
        let psm = PacketStateMap::analyze(&d, &[PortId(1), PortId(2)]);
        let mut tm = TrafficMatrix::new();
        tm.set(PortId(1), PortId(2), 5.0);
        tm.set(PortId(2), PortId(1), 5.0);
        let input = OptimizeInput {
            topology: &topo,
            traffic: &tm,
            mapping: &psm,
            deps: &deps,
        };
        let result = place_and_route(&input, SolverChoice::Exact);
        assert_eq!(result.method, "milp");
        let node = result.placement[&StateVar::new("cnt")];
        // Both directions pass through whichever switch was chosen (they all
        // lie on the only path), and the paths are the direct line.
        assert_eq!(result.paths[&(PortId(1), PortId(2))], vec![a, b, c]);
        assert_eq!(result.paths[&(PortId(2), PortId(1))], vec![c, b, a]);
        assert!([a, b, c].contains(&node));
    }

    #[test]
    fn exact_milp_respects_state_ordering_on_campus() {
        // Two dependent variables: `first` must be visited before `second`.
        let policy = ite(
            state_truthy("first", vec![field(Field::SrcIp)]),
            state_set("second", vec![field(Field::SrcIp)], Value::Bool(true)),
            id(),
        )
        .seq(ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24),
            modify(Field::OutPort, Value::Int(6)),
            drop(),
        ));
        let topo = campus();
        // Keep the instance tiny: only two demands.
        let mut tm = TrafficMatrix::new();
        tm.set(PortId(1), PortId(6), 3.0);
        tm.set(PortId(2), PortId(6), 3.0);
        let deps = StateDependencies::analyze(&policy);
        let d = snap_xfdd::compile(&policy).unwrap();
        let ports: Vec<PortId> = topo.external_ports().map(|(p, _)| p).collect();
        let psm = PacketStateMap::analyze(&d, &ports);
        let input = OptimizeInput {
            topology: &topo,
            traffic: &tm,
            mapping: &psm,
            deps: &deps,
        };
        let result = place_and_route(&input, SolverChoice::Exact);
        for &(u, v) in &[(PortId(1), PortId(6)), (PortId(2), PortId(6))] {
            assert!(result.path_respects_order(
                u,
                v,
                &[StateVar::new("first"), StateVar::new("second")]
            ));
        }
    }

    #[test]
    fn reroute_keeps_placement_fixed() {
        let policy = small_policy();
        let (topo, tm, psm, deps) = setup(&policy);
        let input = OptimizeInput {
            topology: &topo,
            traffic: &tm,
            mapping: &psm,
            deps: &deps,
        };
        let first = place_and_route(&input, SolverChoice::Heuristic);
        // New traffic matrix (shifted volumes) but the same placement.
        let tm2 = TrafficMatrix::gravity(&topo, 500.0, 3);
        let input2 = OptimizeInput {
            topology: &topo,
            traffic: &tm2,
            mapping: &psm,
            deps: &deps,
        };
        let rerouted = reroute(&input2, &first.placement, SolverChoice::Heuristic);
        assert_eq!(rerouted.placement, first.placement);
        assert!(!rerouted.paths.is_empty());
    }

    #[test]
    fn path_respects_order_helper() {
        let mut result = PlacementResult::default();
        result.placement.insert(StateVar::new("a"), NodeId(1));
        result.placement.insert(StateVar::new("b"), NodeId(3));
        result.paths.insert(
            (PortId(1), PortId(2)),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
        );
        assert!(result.path_respects_order(
            PortId(1),
            PortId(2),
            &[StateVar::new("a"), StateVar::new("b")]
        ));
        assert!(!result.path_respects_order(
            PortId(1),
            PortId(2),
            &[StateVar::new("b"), StateVar::new("a")]
        ));
        // Missing path with no required vars is fine.
        assert!(result.path_respects_order(PortId(5), PortId(6), &[]));
    }
}
