//! Packet-state mapping (§4.3): which OBS flows need which state variables.
//!
//! The xFDD gives a complete, explicit description of how the program handles
//! packets. Walking every root-to-leaf path, we collect the state variables
//! read (tests) or written (leaf actions) along the path, the ingress ports
//! consistent with the path's tests on `inport`, and the egress ports the
//! path's leaf can assign. Aggregating over paths gives `S_{uv}` — the set of
//! state variables the flow from OBS port `u` to OBS port `v` must traverse —
//! which feeds the placement/routing optimization.

use serde::{Deserialize, Serialize};
use snap_lang::{Field, StateVar, Value};
use snap_topology::PortId;
use snap_xfdd::{Action, Leaf, Test, Xfdd};
use std::collections::{BTreeMap, BTreeSet};

/// The packet-state mapping: state variables needed per (ingress, egress)
/// OBS port pair.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PacketStateMap {
    per_pair: BTreeMap<(PortId, PortId), BTreeSet<StateVar>>,
}

impl PacketStateMap {
    /// Compute the mapping for a program xFDD over the given OBS ports.
    pub fn analyze(xfdd: &Xfdd, ports: &[PortId]) -> PacketStateMap {
        let mut map = PacketStateMap::default();
        for (path, leaf) in xfdd.paths() {
            let mut vars: BTreeSet<StateVar> = BTreeSet::new();
            for (test, _) in &path {
                if let Some(v) = test.state_var() {
                    vars.insert(v.clone());
                }
            }
            vars.extend(leaf.written_vars());
            if vars.is_empty() {
                continue;
            }
            let inports = consistent_inports(&path, ports);
            let outports = leaf_outports(leaf, &path, ports);
            for &u in &inports {
                for &v in &outports {
                    if u == v {
                        continue;
                    }
                    map.per_pair
                        .entry((u, v))
                        .or_default()
                        .extend(vars.iter().cloned());
                }
            }
        }
        map
    }

    /// The state variables needed by the flow from `u` to `v`.
    pub fn vars_for(&self, u: PortId, v: PortId) -> BTreeSet<StateVar> {
        self.per_pair.get(&(u, v)).cloned().unwrap_or_default()
    }

    /// Iterate over `(u, v, vars)` entries with a non-empty variable set.
    pub fn iter(&self) -> impl Iterator<Item = (PortId, PortId, &BTreeSet<StateVar>)> {
        self.per_pair.iter().map(|(&(u, v), s)| (u, v, s))
    }

    /// Number of flows that need at least one state variable.
    pub fn num_stateful_flows(&self) -> usize {
        self.per_pair.len()
    }

    /// All state variables mentioned anywhere in the mapping.
    pub fn all_vars(&self) -> BTreeSet<StateVar> {
        self.per_pair.values().flatten().cloned().collect()
    }

    /// The flows (port pairs) that need a given variable.
    pub fn flows_needing(&self, var: &StateVar) -> Vec<(PortId, PortId)> {
        self.per_pair
            .iter()
            .filter(|(_, vars)| vars.contains(var))
            .map(|(&pair, _)| pair)
            .collect()
    }
}

/// Which ingress ports are consistent with the path's tests on `inport`?
fn consistent_inports(path: &[(Test, bool)], ports: &[PortId]) -> Vec<PortId> {
    ports
        .iter()
        .copied()
        .filter(|p| {
            path.iter().all(|(test, outcome)| match test {
                Test::FieldValue(Field::InPort, v) => {
                    let matches = v.matches(&Value::Int(p.0 as i64));
                    matches == *outcome
                }
                _ => true,
            })
        })
        .collect()
}

/// Which egress ports can this leaf assign, given the path?
///
/// Priority: explicit `outport ←` assignments in the leaf's action sequences;
/// otherwise positive `outport = v` tests along the path; otherwise the flow
/// could exit anywhere (conservatively, all ports).
fn leaf_outports(leaf: &Leaf, path: &[(Test, bool)], ports: &[PortId]) -> Vec<PortId> {
    let mut assigned: BTreeSet<PortId> = BTreeSet::new();
    let mut any_passing_seq = false;
    for seq in &leaf.0 {
        if seq.drops {
            continue;
        }
        any_passing_seq = true;
        let last_assignment = seq.actions.iter().rev().find_map(|a| match a {
            Action::Modify(Field::OutPort, Value::Int(p)) if *p >= 0 => Some(PortId(*p as usize)),
            _ => None,
        });
        if let Some(p) = last_assignment {
            assigned.insert(p);
        }
    }
    if !assigned.is_empty() {
        return assigned.into_iter().collect();
    }
    // Tests on outport along the path.
    let tested: Vec<PortId> = ports
        .iter()
        .copied()
        .filter(|p| {
            path.iter().any(|(test, outcome)| {
                matches!(test, Test::FieldValue(Field::OutPort, v)
                    if *outcome && v.matches(&Value::Int(p.0 as i64)))
            })
        })
        .collect();
    if !tested.is_empty() {
        return tested;
    }
    if any_passing_seq {
        // Unknown egress: conservatively, the flow may leave anywhere.
        ports.to_vec()
    } else {
        // The path drops every packet; it contributes no (u, v) demand.
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_lang::builder::*;
    use snap_lang::Policy;

    fn ports(n: usize) -> Vec<PortId> {
        (1..=n).map(PortId).collect()
    }

    fn analyze(p: &Policy, nports: usize) -> PacketStateMap {
        let d = snap_xfdd::compile(p).unwrap();
        PacketStateMap::analyze(&d, &ports(nports))
    }

    fn assign_egress() -> Policy {
        // Port i serves prefix 10.0.i.0/24, as in the running example.
        let mut p = drop();
        for i in (1..=6u8).rev() {
            p = ite(
                test_prefix(Field::DstIp, 10, 0, i, 0, 24),
                modify(Field::OutPort, Value::Int(i64::from(i))),
                p,
            );
        }
        p
    }

    fn dns_tunnel_detect() -> Policy {
        ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24).and(test(Field::SrcPort, Value::Int(53))),
            Policy::seq_all(vec![
                state_set(
                    "orphan",
                    vec![field(Field::DstIp), field(Field::DnsRdata)],
                    Value::Bool(true),
                ),
                state_incr("susp-client", vec![field(Field::DstIp)]),
                ite(
                    state_test("susp-client", vec![field(Field::DstIp)], int(5)),
                    state_set("blacklist", vec![field(Field::DstIp)], Value::Bool(true)),
                    id(),
                ),
            ]),
            ite(
                test_prefix(Field::SrcIp, 10, 0, 6, 0, 24).and(state_truthy(
                    "orphan",
                    vec![field(Field::SrcIp), field(Field::DstIp)],
                )),
                state_set(
                    "orphan",
                    vec![field(Field::SrcIp), field(Field::DstIp)],
                    Value::Bool(false),
                )
                .seq(state_decr("susp-client", vec![field(Field::SrcIp)])),
                id(),
            ),
        )
    }

    #[test]
    fn stateless_program_has_empty_mapping() {
        let m = analyze(&assign_egress(), 6);
        assert_eq!(m.num_stateful_flows(), 0);
        assert!(m.all_vars().is_empty());
    }

    #[test]
    fn dns_tunnel_flows_to_port6_need_all_three_vars() {
        let p = dns_tunnel_detect().seq(assign_egress());
        let m = analyze(&p, 6);
        // DNS responses (dstip in subnet 6) exit at port 6 and need all vars.
        for u in 1..=5 {
            let vars = m.vars_for(PortId(u), PortId(6));
            assert!(
                vars.contains(&"orphan".into())
                    && vars.contains(&"susp-client".into())
                    && vars.contains(&"blacklist".into()),
                "flow {u}->6 should need all three variables, got {vars:?}"
            );
        }
        // Traffic from the protected subnet (srcip in subnet 6) exiting at
        // other ports needs orphan and susp-client but not blacklist.
        let vars = m.vars_for(PortId(6), PortId(1));
        assert!(vars.contains(&"orphan".into()));
        assert!(vars.contains(&"susp-client".into()));
        assert!(!vars.contains(&"blacklist".into()));
    }

    #[test]
    fn inport_tests_limit_the_ingress_side() {
        // Count only packets entering at port 2, forwarded to port 1.
        let p = ite(
            test(Field::InPort, Value::Int(2)),
            state_incr("count", vec![field(Field::InPort)]),
            id(),
        )
        .seq(modify(Field::OutPort, Value::Int(1)));
        let m = analyze(&p, 3);
        assert!(m.vars_for(PortId(2), PortId(1)).contains(&"count".into()));
        assert!(m.vars_for(PortId(3), PortId(1)).is_empty());
        assert_eq!(
            m.flows_needing(&"count".into()),
            vec![(PortId(2), PortId(1))]
        );
    }

    #[test]
    fn unknown_egress_is_conservatively_all_ports() {
        // State is read but the outport is never assigned.
        let p = ite(
            state_truthy("blacklist", vec![field(Field::SrcIp)]),
            drop(),
            id(),
        );
        let m = analyze(&p, 3);
        // The passing branch exits somewhere unknown: every distinct pair is
        // conservatively included.
        assert_eq!(m.num_stateful_flows(), 3 * 2);
    }

    #[test]
    fn monitoring_counts_all_ingress_ports() {
        let p = state_incr("count", vec![field(Field::InPort)]).seq(assign_egress());
        let m = analyze(&p, 6);
        // Every (u, v) pair needs `count`.
        assert_eq!(m.num_stateful_flows(), 6 * 5);
        assert_eq!(m.all_vars().len(), 1);
    }
}
