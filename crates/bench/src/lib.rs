//! # snap-bench
//!
//! The benchmark harness that regenerates every table and figure of the SNAP
//! paper's evaluation (§6). Each table/figure has a dedicated binary (run
//! them with `cargo run --release -p snap-bench --bin <name>`):
//!
//! | artifact | binary |
//! |----------|--------|
//! | Figure 3 (xFDD of the running example) | `fig3_xfdd` |
//! | Table 3 (applications) | `table3_apps` |
//! | Table 5 (topologies) | `table5_topologies` |
//! | Table 6 (per-phase compile times) | `table6_phase_times` |
//! | Figure 9 (scenarios on enterprise/ISP topologies) | `fig9_scenarios` |
//! | Figure 10 (scaling with topology size) | `fig10_topology_scaling` |
//! | Figure 11 (scaling with number of policies) | `fig11_policy_scaling` |
//!
//! Criterion micro-benchmarks for the xFDD algebra, the MILP solver and the
//! compiler phases live under `benches/`.
//!
//! The original evaluation used Gurobi on the full Table 5 demand matrices;
//! without a commercial solver the harness defaults to one OBS port per edge
//! switch (aggregated demands) and the heuristic placement engine, which
//! preserves the qualitative shape of the results (see `EXPERIMENTS.md`).

use snap_apps as apps;
use snap_core::{Compiled, Compiler, SolverChoice};
use snap_lang::Policy;
use snap_topology::{generators, RandomTopologySpec, Topology, TrafficMatrix};
use std::time::Duration;

/// The policy compiled in the Table 6 / Figure 9 / Figure 10 experiments:
/// the operator assumption, DNS tunnel detection and egress assignment for a
/// network with `ports` external ports.
pub fn dns_tunnel_with_routing(ports: usize) -> Policy {
    apps::assumption(ports.min(200))
        .seq(apps::dns_tunnel_detect(10))
        .seq(apps::assign_egress(ports.min(200)))
}

/// Build a Table 5 preset topology with one OBS port per edge switch
/// (aggregated demands) and a gravity traffic matrix.
pub fn scaled_preset(spec: &RandomTopologySpec, volume: f64) -> (Topology, TrafficMatrix) {
    let mut spec = spec.clone();
    spec.external_ports = None; // one port per edge switch
    let topo = generators::random_topology(&spec);
    let tm = TrafficMatrix::gravity(&topo, volume, spec.seed);
    (topo, tm)
}

/// Build an IGen-like topology of `switches` switches with a gravity matrix.
pub fn scaled_igen(switches: usize, volume: f64, seed: u64) -> (Topology, TrafficMatrix) {
    let topo = generators::igen_topology(switches, seed);
    let tm = TrafficMatrix::gravity(&topo, volume, seed);
    (topo, tm)
}

/// Compile times for the three scenarios of Table 4 / Figure 9.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScenarioTimes {
    /// All phases, including MILP model creation.
    pub cold_start: Duration,
    /// Program analysis + placement/routing + rule generation (no P4).
    pub policy_change: Duration,
    /// Routing-only re-optimization + rule generation.
    pub topology_change: Duration,
}

/// Compile `policy` on the given topology/traffic and measure the three
/// scenarios. Returns the compiled program alongside the timings so callers
/// can inspect per-phase numbers too.
pub fn run_scenarios(
    topology: &Topology,
    traffic: &TrafficMatrix,
    policy: &Policy,
    solver: SolverChoice,
) -> (Compiled, ScenarioTimes) {
    let compiler = Compiler::new(topology.clone(), traffic.clone()).with_solver(solver);
    let compiled = compiler
        .compile(policy)
        .expect("benchmark policies must compile");
    let cold_start = compiled.timings.total();
    let policy_change = cold_start - compiled.timings.milp_creation;

    // Topology/TM change: shift the traffic matrix and re-route.
    let shifted = TrafficMatrix::gravity(topology, traffic.total() * 1.2, 97);
    let (_, te) = compiler.reroute(&compiled, &shifted);
    let topology_change = te.total();

    (
        compiled,
        ScenarioTimes {
            cold_start,
            policy_change,
            topology_change,
        },
    )
}

/// Milliseconds with two decimals, for table output.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Seconds with three decimals, for table output.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// The incrementally-composed policies of the Figure 11 experiment: the first
/// `n` Table 3 applications, each guarded so that it only affects traffic
/// destined to "its" egress port, parallel-composed and followed by egress
/// assignment — mirroring §6.2.1.
pub fn composed_policies(n: usize, ports: usize) -> Policy {
    use snap_lang::builder::*;
    use snap_lang::Field;
    let catalogue = apps::catalogue();
    let n = n.min(catalogue.len());
    let components: Vec<Policy> = catalogue
        .into_iter()
        .take(n)
        .enumerate()
        .map(|(i, (_, policy))| {
            let port = (i % ports.max(1)) + 1;
            ite(
                test_prefix(Field::DstIp, 10, 0, port as u8, 0, 24),
                policy,
                id(),
            )
        })
        .collect();
    Policy::par_all(components).seq(apps::assign_egress(ports.min(200)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_run_on_the_campus_topology() {
        let topo = generators::campus();
        let tm = TrafficMatrix::gravity(&topo, 100.0, 1);
        let policy = dns_tunnel_with_routing(6);
        let (compiled, times) = run_scenarios(&topo, &tm, &policy, SolverChoice::Heuristic);
        assert!(times.cold_start >= times.policy_change);
        assert!(compiled.xfdd.size() > 1);
        assert!(times.topology_change > Duration::ZERO);
    }

    #[test]
    fn scaled_presets_have_aggregated_ports() {
        let (topo, tm) = scaled_preset(&generators::presets::stanford(), 100.0);
        assert_eq!(topo.num_nodes(), 26);
        // One port per edge switch rather than 144 ports.
        assert!(topo.num_external_ports() < 30);
        assert!(tm.num_demands() > 0);
    }

    #[test]
    fn composed_policies_grow_with_n() {
        let p1 = composed_policies(1, 6);
        let p5 = composed_policies(5, 6);
        assert!(p5.size() > p1.size());
        assert!(p5.state_vars().len() >= p1.state_vars().len());
    }
}
