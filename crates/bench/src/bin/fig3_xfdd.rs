//! Figure 3: the xFDD of `DNS-tunnel-detect; assign-egress` on the Figure 2
//! campus network.

use snap_apps as apps;
use snap_xfdd::StateDependencies;

fn main() {
    let policy = apps::dns_tunnel_detect(10).seq(apps::assign_egress(6));
    let deps = StateDependencies::analyze(&policy);
    let xfdd = snap_xfdd::compile(&policy).expect("running example compiles");
    println!("Figure 3: xFDD of DNS-tunnel-detect; assign-egress");
    println!("state variable order: {:?}", deps.var_order().variables());
    println!(
        "interned nodes: {}  (tree baseline: {})  tests: {}  depth: {}",
        xfdd.size(),
        xfdd.tree_size(),
        xfdd.num_tests(),
        xfdd.depth()
    );
    println!("{}", xfdd.render());
}
