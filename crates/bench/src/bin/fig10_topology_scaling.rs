//! Figure 10: compilation time of DNS-tunnel-detect with routing on IGen-like
//! topologies of 10-180 switches, per scenario.

use snap_bench::{dns_tunnel_with_routing, run_scenarios, scaled_igen, secs};
use snap_core::SolverChoice;

fn main() {
    println!("Figure 10: compilation time vs. topology size (seconds)");
    println!(
        "{:>8} {:>12} {:>16} {:>16} {:>12}",
        "switches", "ports", "topo/TM change", "policy change", "cold start"
    );
    for switches in (10..=180).step_by(34) {
        let (topo, tm) = scaled_igen(switches, 1_000.0, 5);
        let policy = dns_tunnel_with_routing(topo.num_external_ports());
        let (_, times) = run_scenarios(&topo, &tm, &policy, SolverChoice::Heuristic);
        println!(
            "{:>8} {:>12} {:>16} {:>16} {:>12}",
            switches,
            topo.num_external_ports(),
            secs(times.topology_change),
            secs(times.policy_change),
            secs(times.cold_start),
        );
    }
}
