//! Table 3: the stateful applications expressible in SNAP. Each is compiled
//! end-to-end on the campus topology; the table reports the xFDD size, the
//! number of state variables and the compile time.

use snap_apps as apps;
use snap_bench::secs;
use snap_core::{Compiler, SolverChoice};
use snap_topology::{generators, TrafficMatrix};
use std::time::Instant;

fn main() {
    let topo = generators::campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 3);
    let compiler = Compiler::new(topo, tm).with_solver(SolverChoice::Heuristic);
    println!("Table 3: applications written in SNAP (compiled on the campus topology)");
    println!(
        "{:<30} {:>10} {:>12} {:>12} {:>12}",
        "application", "xFDD nodes", "state vars", "instrs", "compile (s)"
    );
    for (name, policy) in apps::catalogue() {
        let program = policy.seq(apps::assign_egress(6));
        let start = Instant::now();
        match compiler.compile(&program) {
            Ok(compiled) => {
                println!(
                    "{:<30} {:>10} {:>12} {:>12} {:>12}",
                    name,
                    compiled.xfdd.size(),
                    compiled.deps.variables.len(),
                    compiled.rules.total_instructions,
                    secs(start.elapsed()),
                );
            }
            Err(e) => println!("{name:<30} failed: {e}"),
        }
    }
}
