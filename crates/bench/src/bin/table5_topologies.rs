//! Table 5: statistics of the evaluated enterprise/ISP topologies (synthetic
//! equivalents with the same switch/edge/demand counts).

use snap_topology::generators::{presets, random_topology};

fn main() {
    println!("Table 5: enterprise/ISP topologies (synthetic equivalents)");
    println!(
        "{:<16} {:>10} {:>8} {:>10}",
        "topology", "switches", "edges", "demands"
    );
    for spec in presets::table5() {
        let topo = random_topology(&spec);
        let ports = topo.num_external_ports();
        println!(
            "{:<16} {:>10} {:>8} {:>10}",
            topo.name,
            topo.num_nodes(),
            topo.num_links(),
            ports * ports
        );
    }
}
