//! Figure 9: compilation time of DNS-tunnel-detect with routing on the
//! enterprise/ISP topologies, for the three scenarios of Table 4
//! (topology/TM change, policy change, cold start).

use snap_bench::{dns_tunnel_with_routing, run_scenarios, scaled_preset, secs};
use snap_core::SolverChoice;
use snap_topology::generators::presets;

fn main() {
    println!("Figure 9: compilation time per scenario (seconds)");
    println!(
        "{:<16} {:>16} {:>16} {:>12}",
        "topology", "topo/TM change", "policy change", "cold start"
    );
    for spec in presets::table5() {
        let (topo, tm) = scaled_preset(&spec, 1_000.0);
        let policy = dns_tunnel_with_routing(topo.num_external_ports());
        let (_, times) = run_scenarios(&topo, &tm, &policy, SolverChoice::Heuristic);
        println!(
            "{:<16} {:>16} {:>16} {:>12}",
            topo.name,
            secs(times.topology_change),
            secs(times.policy_change),
            secs(times.cold_start),
        );
    }
}
