//! Table 6: runtime of the compiler phases when compiling DNS-tunnel-detect
//! (with assumption and routing) on the enterprise/ISP topologies.
//!
//! Columns follow the paper: program analysis (P1-P2-P3), placement+routing
//! (P5 ST), routing-only (P5 TE), rule generation (P6) and MILP model
//! creation (P4; zero when the heuristic engine is in use).

use snap_bench::{dns_tunnel_with_routing, run_scenarios, scaled_preset, secs};
use snap_core::SolverChoice;
use snap_topology::generators::presets;

fn main() {
    println!("Table 6: compiler phase runtimes (seconds), DNS-tunnel-detect with routing");
    println!(
        "{:<16} {:>14} {:>10} {:>10} {:>8} {:>8}",
        "topology", "P1-P2-P3 (s)", "P5 ST (s)", "P5 TE (s)", "P6 (s)", "P4 (s)"
    );
    for spec in presets::table5() {
        let (topo, tm) = scaled_preset(&spec, 1_000.0);
        let policy = dns_tunnel_with_routing(topo.num_external_ports());
        let compiler =
            snap_core::Compiler::new(topo.clone(), tm.clone()).with_solver(SolverChoice::Heuristic);
        let compiled = compiler.compile(&policy).expect("compiles");
        let te_tm = snap_topology::TrafficMatrix::gravity(&topo, 1_200.0, 99);
        let (_, te) = compiler.reroute(&compiled, &te_tm);
        println!(
            "{:<16} {:>14} {:>10} {:>10} {:>8} {:>8}",
            topo.name,
            secs(compiled.timings.analysis()),
            secs(compiled.timings.optimization),
            secs(te.optimization),
            secs(compiled.timings.rule_generation),
            secs(compiled.timings.milp_creation),
        );
        let _ = run_scenarios; // (scenario totals are reported by fig9_scenarios)
    }
}
