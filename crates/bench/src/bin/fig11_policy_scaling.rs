//! Figure 11: compilation time as Table 3 policies are incrementally composed
//! (in parallel) on a 50-switch network.

use snap_bench::{composed_policies, run_scenarios, scaled_igen, secs};
use snap_core::SolverChoice;

fn main() {
    println!("Figure 11: compilation time vs. number of composed policies (seconds)");
    println!(
        "{:>10} {:>12} {:>16} {:>16} {:>12}",
        "#policies", "state vars", "topo/TM change", "policy change", "cold start"
    );
    let (topo, tm) = scaled_igen(50, 1_000.0, 8);
    let ports = topo.num_external_ports();
    for n in (4..=20).step_by(2) {
        let policy = composed_policies(n, ports);
        let (compiled, times) = run_scenarios(&topo, &tm, &policy, SolverChoice::Heuristic);
        println!(
            "{:>10} {:>12} {:>16} {:>16} {:>12}",
            n,
            compiled.deps.variables.len(),
            secs(times.topology_change),
            secs(times.policy_change),
            secs(times.cold_start),
        );
    }
}
