//! Profiling harness: drive the campus workload through the network on one
//! thread, long enough for a sampling profiler to get a clean picture —
//! e.g. `gprofng collect app ./target/release/examples/profile_net`.
//!
//! Prints sustained pkts/s for the raw `drive_batch` loop and for a
//! 1-worker `TrafficEngine`; useful as a quick steady-state probe between
//! full `dataplane_throughput` bench runs (which add criterion groups and
//! cold-start effects on top).

use snap_dataplane::{Network, SwitchConfig, TrafficEngine, TrafficTarget};
use snap_lang::builder::*;
use snap_lang::{Field, Packet, Policy, Value};
use snap_topology::generators::campus;
use snap_topology::PortId;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

fn campus_policy() -> Policy {
    let mut egress = modify(Field::OutPort, Value::Int(1));
    for k in (2..=6).rev() {
        egress = ite(
            test_prefix(Field::DstIp, 10, 0, k, 0, 24),
            modify(Field::OutPort, Value::Int(k as i64)),
            egress,
        );
    }
    ite(
        test(Field::SrcPort, Value::Int(53)),
        state_incr("dns", vec![field(Field::SrcIp)]),
        id(),
    )
    .seq(egress)
}

fn campus_workload(n: usize) -> Vec<(PortId, Packet)> {
    (0..n)
        .map(|i| {
            let sport = if i % 4 == 0 {
                53
            } else {
                40_000 + (i % 101) as i64
            };
            (
                PortId(1 + i % 6),
                Packet::new()
                    .with(Field::SrcPort, sport)
                    .with(
                        Field::SrcIp,
                        Value::ip(10, 0, (1 + i % 6) as u8, (i % 251) as u8),
                    )
                    .with(Field::DstIp, Value::ip(10, 0, (1 + (i / 6) % 6) as u8, 1)),
            )
        })
        .collect()
}

fn main() {
    let topo = campus();
    let program = snap_xfdd::compile(&campus_policy()).unwrap();
    let owners = BTreeMap::from([(
        topo.node_by_name("C6").unwrap(),
        BTreeSet::from(["dns".into()]),
    )]);
    let configs = SwitchConfig::for_topology(&topo, &program, &owners);
    let net = Network::new(topo, configs);
    let load = campus_workload(20_000);
    let t = Instant::now();
    let rounds = 500;
    for _ in 0..rounds {
        let mut egress: Vec<(snap_topology::PortId, Packet)> = Vec::new();
        for chunk in load.chunks(64) {
            for r in net.drive_batch(chunk) {
                let (_, out) = r.unwrap();
                egress.extend(out);
            }
        }
        std::hint::black_box(&egress);
    }
    let dt = t.elapsed().as_secs_f64();
    println!(
        "inline: {} pkts in {dt:.2}s = {:.0} pkts/s",
        rounds * load.len(),
        (rounds * load.len()) as f64 / dt
    );

    let engine = TrafficEngine::new(1).with_batch_size(64);
    let t = Instant::now();
    for _ in 0..rounds {
        let report = engine.run(&net, &load);
        std::hint::black_box(report.processed);
    }
    let dt = t.elapsed().as_secs_f64();
    println!(
        "engine(1): {} pkts in {dt:.2}s = {:.0} pkts/s",
        rounds * load.len(),
        (rounds * load.len()) as f64 / dt
    );
}
