//! Criterion micro-benchmarks for the xFDD algebra: translation of the
//! running example, composition of Table 3 policies, and the effect of the
//! pool's memo tables on repeated composition.

use criterion::{criterion_group, criterion_main, Criterion};
use snap_apps as apps;
use snap_xfdd::{to_xfdd, Pool, StateDependencies};

fn bench_xfdd(c: &mut Criterion) {
    let mut group = c.benchmark_group("xfdd");
    group.sample_size(20);

    let dns = apps::dns_tunnel_detect(10).seq(apps::assign_egress(6));
    group.bench_function("translate_dns_tunnel_with_routing", |b| {
        b.iter(|| snap_xfdd::compile(&dns).unwrap())
    });

    let firewall = apps::stateful_firewall();
    let monitor = apps::port_monitoring();
    let composed = firewall
        .clone()
        .par(monitor.clone())
        .seq(apps::assign_egress(6));
    group.bench_function("translate_parallel_composition", |b| {
        b.iter(|| snap_xfdd::compile(&composed).unwrap())
    });

    // Sequential composition of two already-built diagrams. The operands
    // live in a base pool whose memo table has *not* seen this top-level
    // pair; the cold case clones that pool per iteration so only the `seq`
    // itself (plus the clone) is timed, never the policy translation.
    let deps = StateDependencies::analyze(&dns);
    let mut base_pool = Pool::new(deps.var_order());
    let d1 = to_xfdd(&apps::dns_tunnel_detect(10), &mut base_pool).unwrap();
    let d2 = to_xfdd(&apps::assign_egress(6), &mut base_pool).unwrap();
    group.bench_function("seq_compose_diagrams_cold", |b| {
        b.iter(|| {
            let mut pool = base_pool.clone();
            pool.seq(d1, d2).unwrap()
        })
    });

    // The same composition with a warm memo table: one long-lived pool, so
    // after the first call every `seq` of this pair is a hash lookup. This
    // is the repeat-composition pattern of incremental policy updates.
    let mut warm_pool = base_pool.clone();
    warm_pool.seq(d1, d2).unwrap();
    group.bench_function("seq_compose_diagrams_warm_memo", |b| {
        b.iter(|| warm_pool.seq(d1, d2).unwrap())
    });

    // End-to-end translation cost for the same composition, for scale: a
    // fresh pool plus both policy translations plus the composition.
    group.bench_function("translate_and_seq_fresh_pool", |b| {
        b.iter(|| {
            let mut pool = Pool::new(deps.var_order());
            let a = to_xfdd(&apps::dns_tunnel_detect(10), &mut pool).unwrap();
            let e = to_xfdd(&apps::assign_egress(6), &mut pool).unwrap();
            pool.seq(a, e).unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_xfdd);
criterion_main!(benches);
