//! Criterion micro-benchmarks for the xFDD algebra: translation of the
//! running example and composition of Table 3 policies.

use criterion::{criterion_group, criterion_main, Criterion};
use snap_apps as apps;
use snap_xfdd::{seq, to_xfdd, StateDependencies};

fn bench_xfdd(c: &mut Criterion) {
    let mut group = c.benchmark_group("xfdd");
    group.sample_size(20);

    let dns = apps::dns_tunnel_detect(10).seq(apps::assign_egress(6));
    group.bench_function("translate_dns_tunnel_with_routing", |b| {
        b.iter(|| {
            let deps = StateDependencies::analyze(&dns);
            to_xfdd(&dns, &deps.var_order()).unwrap()
        })
    });

    let firewall = apps::stateful_firewall();
    let monitor = apps::port_monitoring();
    let composed = firewall.clone().par(monitor.clone()).seq(apps::assign_egress(6));
    group.bench_function("translate_parallel_composition", |b| {
        b.iter(|| {
            let deps = StateDependencies::analyze(&composed);
            to_xfdd(&composed, &deps.var_order()).unwrap()
        })
    });

    // Sequential composition of two already-built diagrams.
    let deps = StateDependencies::analyze(&dns);
    let order = deps.var_order();
    let d1 = to_xfdd(&apps::dns_tunnel_detect(10), &order).unwrap();
    let d2 = to_xfdd(&apps::assign_egress(6), &order).unwrap();
    group.bench_function("seq_compose_diagrams", |b| {
        b.iter(|| seq(&d1, &d2, &order).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_xfdd);
criterion_main!(benches);
