//! Commit-path scaling: end-to-end two-phase commit latency as the agent
//! fleet grows from 50 to 1000 switches, over both transports.
//!
//! The interesting quantity is the *shape* of the latency curve. With the
//! old per-link ordered ack loops, commit latency was the **sum** of every
//! agent's ack time — linear in fleet size, ~20× from 50 to 1000 agents.
//! With the shared reply mux the fan-out is concurrent, so latency is
//! one control-RTT plus the controller's per-ack drain work — sublinear.
//! To make the distinction measurable on a single-core container (where a
//! loopback "RTT" is nanoseconds and per-agent CPU work would dominate
//! either way), every agent emulates a control-network RTT by sleeping
//! [`SNAP_BENCH_RTT_US`](rtt) (default 5 ms) before each reply: agents
//! sleep **concurrently**, so a concurrent fan-out pays the RTT once while
//! a sequential one would pay it per agent. Zero-RTT numbers are recorded
//! alongside as secondary data.
//!
//! Writes the machine-readable `BENCH_commit.json` at the repo root:
//! per-fleet-size prepare/commit latency for the in-process and TCP
//! backends, the large-vs-small fleet ratio (the ≤ 5× acceptance bar),
//! and the measured prepare(N+1)/commit(N) pipeline overlap.
//!
//! Set `SNAP_BENCH_SMOKE=1` (as CI does) for a reduced sweep (12/48
//! agents) that keeps every path exercised.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snap_apps as apps;
use snap_core::SolverChoice;
use snap_distrib::{
    deploy_in_process_custom, deploy_tcp, DeployOptions, DistribOptions, InProcessDeployment,
};
use snap_lang::Policy;
use snap_session::CompilerSession;
use snap_topology::generators::igen_topology;
use snap_topology::TrafficMatrix;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

fn smoke() -> bool {
    std::env::var_os("SNAP_BENCH_SMOKE").is_some()
}

/// The emulated control-network RTT (see the module docs).
fn rtt() -> Duration {
    let us = std::env::var("SNAP_BENCH_RTT_US")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(5_000);
    Duration::from_micros(us)
}

fn fleet_sizes() -> Vec<usize> {
    if smoke() {
        vec![12, 48]
    } else {
        vec![50, 200, 1000]
    }
}

/// The paper's running example with a tweakable threshold: flipping the
/// threshold between two already-shipped values is the working-set edit
/// whose delta is ~one root, so the measured latency is the 2PC protocol,
/// not delta size.
fn variant(threshold: i64) -> Policy {
    apps::dns_tunnel_detect(threshold).seq(apps::assign_egress(6))
}

fn session_for(switches: usize) -> CompilerSession {
    let topo = igen_topology(switches, 42);
    let tm = TrafficMatrix::gravity(&topo, 1_000.0, 42);
    CompilerSession::new(topo, tm).with_solver(SolverChoice::Heuristic)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Backend {
    InProcess,
    Tcp,
}

impl Backend {
    fn label(self) -> &'static str {
        match self {
            Backend::InProcess => "in_process",
            Backend::Tcp => "tcp",
        }
    }
}

fn deploy(switches: usize, backend: Backend, ack_delay: Option<Duration>) -> InProcessDeployment {
    let options = DeployOptions {
        distrib: DistribOptions::default(),
        ack_delay,
    };
    match backend {
        Backend::InProcess => deploy_in_process_custom(session_for(switches), 64, options),
        Backend::Tcp => {
            deploy_tcp(session_for(switches), 64, options).expect("loopback tcp deploy")
        }
    }
}

/// Best and median end-to-end commit latency (prepare + commit wall-clock
/// out of the [`snap_distrib::CommitReport`]) over `rounds` working-set
/// flips.
struct FlipStats {
    best_us: u64,
    median_us: u64,
    prepare_best_us: u64,
    commit_best_us: u64,
}

fn measure_flips(deployment: &mut InProcessDeployment, rounds: usize) -> FlipStats {
    // Warm both working-set versions so every timed round is a pure flip.
    deployment.controller.update_policy(&variant(3)).unwrap();
    deployment.controller.update_policy(&variant(8)).unwrap();
    let mut totals = Vec::with_capacity(rounds);
    let (mut prepare_best, mut commit_best) = (u64::MAX, u64::MAX);
    let mut calm = true;
    for _ in 0..rounds {
        let t = if calm { 3 } else { 8 };
        calm = !calm;
        let r = deployment.controller.update_policy(&variant(t)).unwrap();
        let prepare = r.prepare_time.as_micros() as u64;
        let commit = r.commit_time.as_micros() as u64;
        prepare_best = prepare_best.min(prepare);
        commit_best = commit_best.min(commit);
        totals.push(prepare + commit);
    }
    totals.sort_unstable();
    FlipStats {
        best_us: totals[0],
        median_us: totals[totals.len() / 2],
        prepare_best_us: prepare_best,
        commit_best_us: commit_best,
    }
}

/// Largest pipeline overlap observed over `rounds` back-to-back
/// `update_policy_async` flips — the wall-clock during which epoch N+1's
/// prepare ran while epoch N's commit acks were still draining.
fn measure_overlap(deployment: &mut InProcessDeployment, rounds: usize) -> u64 {
    deployment.controller.update_policy(&variant(3)).unwrap();
    deployment.controller.update_policy(&variant(8)).unwrap();
    let mut overlap = Duration::ZERO;
    let mut calm = true;
    let mut completed = Vec::new();
    for _ in 0..rounds {
        let t = if calm { 3 } else { 8 };
        calm = !calm;
        completed.extend(
            deployment
                .controller
                .update_policy_async(&variant(t))
                .unwrap(),
        );
    }
    completed.extend(deployment.controller.flush().unwrap());
    for r in &completed {
        overlap = overlap.max(r.pipeline_overlap);
    }
    overlap.as_micros() as u64
}

/// One fully measured configuration, rendered into the JSON artifact.
struct SweepRow {
    backend: &'static str,
    agents: usize,
    stats: FlipStats,
}

fn commit_scaling_summary(_c: &mut Criterion) {
    let rtt = rtt();
    let rounds = if smoke() { 3 } else { 9 };
    let sizes = fleet_sizes();
    println!(
        "\ncommit scaling summary (igen fleets {:?}, emulated RTT {:?}, best of {rounds} flips):",
        sizes, rtt
    );

    let mut sweep: Vec<SweepRow> = Vec::new();
    for &backend in &[Backend::InProcess, Backend::Tcp] {
        for &n in &sizes {
            let mut deployment = deploy(n, backend, Some(rtt));
            let stats = measure_flips(&mut deployment, rounds);
            println!(
                "  {:<10} {n:>5} agents: {:>8} µs best ({:>8} µs median; prepare {} µs + commit {} µs)",
                backend.label(),
                stats.best_us,
                stats.median_us,
                stats.prepare_best_us,
                stats.commit_best_us,
            );
            deployment.shutdown();
            sweep.push(SweepRow {
                backend: backend.label(),
                agents: n,
                stats,
            });
        }
    }

    // Zero-RTT (loopback-speed) secondary data, in-process only: shows the
    // controller's raw per-ack drain cost without the RTT floor.
    let mut zero_rtt: Vec<SweepRow> = Vec::new();
    for &n in &sizes {
        let mut deployment = deploy(n, Backend::InProcess, None);
        let stats = measure_flips(&mut deployment, rounds);
        println!(
            "  zero-rtt   {n:>5} agents: {:>8} µs best ({:>8} µs median)",
            stats.best_us, stats.median_us,
        );
        deployment.shutdown();
        zero_rtt.push(SweepRow {
            backend: "in_process_zero_rtt",
            agents: n,
            stats,
        });
    }

    // Pipeline overlap at the mid fleet size.
    let overlap_fleet = sizes[sizes.len() / 2];
    let mut deployment = deploy(overlap_fleet, Backend::InProcess, Some(rtt));
    let overlap_us = measure_overlap(&mut deployment, rounds.max(4));
    deployment.shutdown();
    println!(
        "  pipeline overlap at {overlap_fleet} agents: {overlap_us} µs of prepare(N+1) ran inside commit(N)"
    );

    // The acceptance ratio: largest fleet vs smallest, in-process, best-of.
    let ratio_of = |rows: &[SweepRow], backend: &str| -> f64 {
        let small = rows
            .iter()
            .find(|r| r.backend == backend && r.agents == sizes[0]);
        let large = rows
            .iter()
            .find(|r| r.backend == backend && r.agents == *sizes.last().unwrap());
        match (small, large) {
            (Some(s), Some(l)) => l.stats.best_us as f64 / s.stats.best_us.max(1) as f64,
            _ => f64::NAN,
        }
    };
    let in_process_ratio = ratio_of(&sweep, "in_process");
    let tcp_ratio = ratio_of(&sweep, "tcp");
    let zero_rtt_ratio = ratio_of(&zero_rtt, "in_process_zero_rtt");
    println!(
        "  {}-vs-{} agent latency ratio: {:.2}x in-process (bar: <= 5x), {:.2}x tcp, {:.2}x zero-rtt",
        sizes.last().unwrap(),
        sizes[0],
        in_process_ratio,
        tcp_ratio,
        zero_rtt_ratio,
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"smoke\": {},", smoke());
    let _ = writeln!(json, "  \"rtt_us\": {},", rtt.as_micros());
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"fleet_sizes\": {:?},", sizes);
    let _ = writeln!(json, "  \"sweep\": [");
    let all: Vec<&SweepRow> = sweep.iter().chain(zero_rtt.iter()).collect();
    for (i, row) in all.iter().enumerate() {
        let comma = if i + 1 == all.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{}\", \"agents\": {}, \"total_best_us\": {}, \
             \"total_median_us\": {}, \"prepare_best_us\": {}, \"commit_best_us\": {}}}{comma}",
            row.backend,
            row.agents,
            row.stats.best_us,
            row.stats.median_us,
            row.stats.prepare_best_us,
            row.stats.commit_best_us,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"scaling_ratio\": {{");
    let _ = writeln!(
        json,
        "    \"agents\": [{}, {}],",
        sizes[0],
        sizes.last().unwrap()
    );
    let _ = writeln!(json, "    \"in_process\": {in_process_ratio:.3},");
    let _ = writeln!(json, "    \"tcp\": {tcp_ratio:.3},");
    let _ = writeln!(json, "    \"in_process_zero_rtt\": {zero_rtt_ratio:.3},");
    let _ = writeln!(json, "    \"bar\": 5.0,");
    let _ = writeln!(
        json,
        "    \"pass\": {}",
        in_process_ratio.is_finite() && in_process_ratio <= 5.0
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"pipeline\": {{");
    let _ = writeln!(json, "    \"agents\": {overlap_fleet},");
    let _ = writeln!(json, "    \"overlap_best_us\": {overlap_us},");
    let _ = writeln!(json, "    \"overlap_positive\": {}", overlap_us > 0);
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_commit.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  could not write {}: {e}", path.display()),
    }
}

/// Criterion regression tracking of one working-set flip at the smallest
/// fleet size (zero RTT so the number is the protocol cost, not the
/// emulated network).
fn bench_commit_flip(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_scaling");
    group.sample_size(if smoke() { 3 } else { 20 });
    let n = fleet_sizes()[0];
    let mut deployment = deploy(n, Backend::InProcess, None);
    deployment.controller.update_policy(&variant(3)).unwrap();
    deployment.controller.update_policy(&variant(8)).unwrap();
    let mut calm = true;
    group.bench_function(&format!("flip_in_process_{n}_agents"), |b| {
        b.iter(|| {
            let t = if calm { 3 } else { 8 };
            calm = !calm;
            black_box(deployment.controller.update_policy(&variant(t)).unwrap())
        })
    });
    deployment.shutdown();
    group.finish();
}

criterion_group!(benches, commit_scaling_summary, bench_commit_flip);
criterion_main!(benches);
