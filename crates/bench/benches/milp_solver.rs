//! Criterion micro-benchmarks for the built-in LP/MILP solver.

use criterion::{criterion_group, criterion_main, Criterion};
use snap_milp::{solve_lp, solve_milp, LinExpr, Model, Sense};

/// A small multicommodity-flow style LP with `n` demands over `n` parallel
/// paths of shared capacity.
fn flow_lp(n: usize) -> Model {
    let mut m = Model::new();
    let mut vars = Vec::new();
    for d in 0..n {
        let direct = m.add_var(format!("direct_{d}"), 0.0, f64::INFINITY);
        let detour = m.add_var(format!("detour_{d}"), 0.0, f64::INFINITY);
        m.set_objective(direct, 1.0);
        m.set_objective(detour, 2.0);
        m.add_constraint(
            format!("demand_{d}"),
            LinExpr::new().with(direct, 1.0).with(detour, 1.0),
            Sense::Eq,
            1.0,
        );
        vars.push(direct);
    }
    // Shared bottleneck over the direct paths.
    let mut shared = LinExpr::new();
    for v in &vars {
        shared.add(*v, 1.0);
    }
    m.add_constraint("bottleneck", shared, Sense::Le, (n as f64) / 2.0);
    m
}

/// A placement-flavoured MILP: choose one of `k` locations per state variable.
fn placement_milp(vars: usize, nodes: usize) -> Model {
    let mut m = Model::new();
    for s in 0..vars {
        let mut one = LinExpr::new();
        for n in 0..nodes {
            let p = m.add_binary(format!("P_{s}_{n}"));
            m.set_objective(p, ((s + n) % 5) as f64 + 1.0);
            one.add(p, 1.0);
        }
        m.add_constraint(format!("place_{s}"), one, Sense::Eq, 1.0);
    }
    m
}

fn bench_milp(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp");
    group.sample_size(20);
    let lp = flow_lp(30);
    group.bench_function("simplex_flow_lp_30_demands", |b| b.iter(|| solve_lp(&lp)));
    let milp = placement_milp(4, 8);
    group.bench_function("branch_bound_placement_4x8", |b| {
        b.iter(|| solve_milp(&milp))
    });
    group.finish();
}

criterion_group!(benches, bench_milp);
criterion_main!(benches);
