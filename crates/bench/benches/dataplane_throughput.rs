//! Dataplane throughput: packets/sec through the distributed simulator.
//!
//! Two questions, both on the campus topology with a mixed
//! stateful/stateless workload:
//!
//! * **flat vs. interned evaluation** — per-packet one-big-switch
//!   evaluation through the dense `FlatProgram` arrays vs. the hash-consed
//!   arena walk (`Xfdd::evaluate`), plus the lowered NetASM interpreter for
//!   reference;
//! * **worker scaling** — aggregate throughput of the `TrafficEngine` at
//!   1/2/4/8 workers injecting concurrently into one shared `Network`
//!   (RCU snapshots, sharded state). Scaling beyond one worker requires
//!   hardware parallelism; the summary prints whatever the machine offers.
//!
//! Set `SNAP_BENCH_SMOKE=1` (as CI does) to run a reduced configuration
//! that just keeps the path compiling and non-regressing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snap_apps as apps;
use snap_dataplane::{NetAsmProgram, Network, SwitchConfig, TrafficEngine};
use snap_lang::builder::*;
use snap_lang::{Field, Packet, Policy, Store, Value};
use snap_topology::generators::campus;
use snap_topology::PortId;
use snap_xfdd::{Node, TableProgram};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("SNAP_BENCH_SMOKE").is_some()
}

/// The campus workload policy: count DNS-ish packets per source, then
/// assign the egress port from the destination prefix (subnet `10.0.k.0/24`
/// sits behind port `k`).
fn campus_policy() -> Policy {
    let mut egress = modify(Field::OutPort, Value::Int(1));
    for k in (2..=6).rev() {
        egress = ite(
            test_prefix(Field::DstIp, 10, 0, k, 0, 24),
            modify(Field::OutPort, Value::Int(k as i64)),
            egress,
        );
    }
    ite(
        test(Field::SrcPort, Value::Int(53)),
        state_incr("dns", vec![field(Field::SrcIp)]),
        id(),
    )
    .seq(egress)
}

/// A mixed workload: round-robin ingress ports, destinations across all six
/// subnets, a quarter of the packets DNS-flavoured (stateful).
fn campus_workload(n: usize) -> Vec<(PortId, Packet)> {
    (0..n)
        .map(|i| {
            let sport = if i % 4 == 0 {
                53
            } else {
                40_000 + (i % 101) as i64
            };
            (
                PortId(1 + i % 6),
                Packet::new()
                    .with(Field::SrcPort, sport)
                    .with(
                        Field::SrcIp,
                        Value::ip(10, 0, (1 + i % 6) as u8, (i % 251) as u8),
                    )
                    .with(Field::DstIp, Value::ip(10, 0, (1 + (i / 6) % 6) as u8, 1)),
            )
        })
        .collect()
}

fn campus_network() -> Network {
    let topo = campus();
    let program = snap_xfdd::compile(&campus_policy()).unwrap();
    let owners = BTreeMap::from([(
        topo.node_by_name("C6").unwrap(),
        BTreeSet::from(["dns".into()]),
    )]);
    let configs = SwitchConfig::for_topology(&topo, &program, &owners);
    Network::new(topo, configs)
}

/// A substantial program — parallel composition of three applications plus
/// egress assignment — so the per-packet walk is deep enough to expose the
/// representation difference (the campus counting policy alone is a
/// handful of nodes and the walk is noise next to leaf application).
fn heavy_policy() -> Policy {
    Policy::par_all(vec![
        apps::stateful_firewall(),
        apps::port_monitoring(),
        apps::heavy_hitter_detection(100),
    ])
    .seq(apps::assign_egress(6))
}

/// Fully populated headers so every application test can evaluate.
fn heavy_packets(n: usize) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            Packet::new()
                .with(
                    Field::SrcIp,
                    Value::ip(10, 0, (1 + i % 6) as u8, (i % 251) as u8),
                )
                .with(Field::DstIp, Value::ip(10, 0, (1 + (i / 6) % 6) as u8, 1))
                .with(
                    Field::SrcPort,
                    if i % 4 == 0 {
                        53
                    } else {
                        40_000 + (i % 101) as i64
                    },
                )
                .with(Field::DstPort, 443)
                .with(Field::Proto, 6)
                .with(Field::InPort, (1 + i % 6) as i64)
                .with(
                    Field::TcpFlags,
                    Value::sym(if i % 3 == 0 { "SYN" } else { "ACK" }),
                )
                .with(Field::DnsRdata, Value::ip(9, 9, (i % 7) as u8, 9))
        })
        .collect()
}

/// Per-packet one-big-switch evaluation on the campus workload: dense flat
/// arrays (with their precomputed stateless-leaf fast path) vs. the
/// interned arena walk, plus the NetASM interpreter lowered from the same
/// flat program.
fn bench_eval_representations(c: &mut Criterion) {
    let xfdd = snap_xfdd::compile(&campus_policy()).unwrap();
    let flat = xfdd.flatten();
    let asm = NetAsmProgram::lower_flat(&flat);
    let packets: Vec<Packet> = campus_workload(256).into_iter().map(|(_, p)| p).collect();
    let store = Store::new();

    let mut group = c.benchmark_group("obs_eval");
    group.sample_size(if smoke() { 5 } else { 60 });
    group.bench_function("interned_pool", |b| {
        b.iter(|| {
            for pkt in &packets {
                black_box(xfdd.evaluate(pkt, &store).unwrap());
            }
        })
    });
    group.bench_function("flat_program", |b| {
        b.iter(|| {
            for pkt in &packets {
                black_box(flat.evaluate(pkt, &store).unwrap());
            }
        })
    });
    let tables = TableProgram::compile(&flat);
    group.bench_function("table_program", |b| {
        b.iter(|| {
            for pkt in &packets {
                black_box(tables.evaluate(&flat, pkt, &store).unwrap());
            }
        })
    });
    group.bench_function("netasm_interp", |b| {
        b.iter(|| {
            for pkt in &packets {
                black_box(asm.execute(pkt, &store).unwrap());
            }
        })
    });
    group.finish();

    // Classification only, on a substantial program (parallel composition
    // of three applications) — walk tests to a leaf without applying it.
    // This is the per-hop hot loop of the distributed simulator (leaves
    // apply once per packet, tests evaluate at every switch the packet
    // crosses).
    let heavy = snap_xfdd::compile(&heavy_policy()).unwrap();
    let heavy_flat = heavy.flatten();
    let deep_packets = heavy_packets(256);
    let mut group = c.benchmark_group("classify");
    group.sample_size(if smoke() { 5 } else { 60 });
    group.bench_function("interned_pool", |b| {
        let pool = heavy.pool();
        b.iter(|| {
            for pkt in &deep_packets {
                let mut cur = heavy.root();
                loop {
                    match pool.node(cur) {
                        Node::Leaf(_) => break,
                        Node::Branch { test, tru, fls } => {
                            cur = if snap_xfdd::eval_test(test, pkt, &store).unwrap() {
                                *tru
                            } else {
                                *fls
                            };
                        }
                    }
                }
                black_box(cur);
            }
        })
    });
    group.bench_function("flat_program", |b| {
        b.iter(|| {
            for pkt in &deep_packets {
                black_box(heavy_flat.walk(heavy_flat.root(), pkt, &store).unwrap());
            }
        })
    });
    let heavy_tables = TableProgram::compile(&heavy_flat);
    group.bench_function("table_program", |b| {
        b.iter(|| {
            for pkt in &deep_packets {
                black_box(
                    heavy_tables
                        .walk(&heavy_flat, heavy_flat.root(), pkt, &store)
                        .unwrap(),
                );
            }
        })
    });
    group.finish();
}

/// Batched per-switch execution vs. the per-packet baseline: the same
/// workload through the same network, injected one packet at a time
/// (`inject`, a batch of one) vs. in driver batches (`inject_batch`), which
/// group in-flight packets by switch and take one store-lock acquisition
/// per (switch, table, batch-group) instead of one per packet visit.
fn bench_batched_execution(c: &mut Criterion) {
    let n = if smoke() { 256 } else { 4_096 };
    let load = campus_workload(n);
    let mut group = c.benchmark_group("batched_execution");
    group.sample_size(if smoke() { 5 } else { 30 });
    let net = campus_network();
    group.bench_function("per_packet", |b| {
        b.iter(|| {
            for (port, pkt) in &load {
                black_box(net.inject(*port, pkt).unwrap());
            }
        })
    });
    for batch in [64usize, 256] {
        let net = campus_network();
        group.bench_function(&format!("batch/{batch}"), |b| {
            b.iter(|| {
                for chunk in load.chunks(batch) {
                    let out = net.inject_batch(chunk);
                    for result in out.outputs {
                        black_box(result.unwrap());
                    }
                }
            })
        });
    }
    group.finish();

    // Store-lock accounting for one pass over the workload, per execution
    // style — the numbers quoted in EXPERIMENTS.md ("Batched execution").
    // Counted per network instance off its state shards' own counters
    // (the `store.shard.acquisitions` family, summed across switches and
    // shards), so the criterion warmup passes above cannot leak into the
    // figures.
    println!("\nstore-lock acquisitions for {n} campus packets (1/4 stateful):");
    let count_locks = |net: &Network, f: &dyn Fn()| {
        let total = |net: &Network| {
            net.metrics_snapshot()
                .families
                .get("store.shard.acquisitions")
                .map(|rows| rows.iter().map(|(_, v)| *v).sum::<u64>())
                .unwrap_or(0)
        };
        let before = total(net);
        f();
        total(net) - before
    };
    let net = campus_network();
    let per_packet = count_locks(&net, &|| {
        for (port, pkt) in &load {
            net.inject(*port, pkt).unwrap();
        }
    });
    println!("  per-packet inject:        {per_packet:>8} lock acquisitions");
    for batch in [64usize, 256] {
        let net = campus_network();
        let batched = count_locks(&net, &|| {
            for chunk in load.chunks(batch) {
                for result in net.inject_batch(chunk).outputs {
                    result.unwrap();
                }
            }
        });
        println!(
            "  inject_batch({batch:>3}):        {batched:>8} lock acquisitions ({:.1}x fewer)",
            per_packet as f64 / batched.max(1) as f64
        );
    }
}

/// Aggregate throughput of the multi-worker engine against one shared
/// network.
fn bench_worker_scaling(c: &mut Criterion) {
    let n = if smoke() { 300 } else { 6_000 };
    let load = campus_workload(n);
    let mut group = c.benchmark_group("dataplane_throughput");
    group.sample_size(if smoke() { 3 } else { 15 });
    for workers in [1usize, 2, 4, 8] {
        let net = campus_network();
        let engine = TrafficEngine::new(workers).with_batch_size(64);
        group.bench_function(&format!("workers/{workers}"), |b| {
            b.iter(|| {
                let report = engine.run(&net, &load);
                assert!(report.is_clean());
                black_box(report.processed)
            })
        });
    }
    group.finish();
}

/// Print a packets/sec summary (best of three runs per configuration) —
/// the numbers quoted in EXPERIMENTS.md — and write the machine-readable
/// `BENCH_dataplane.json` at the repo root (throughput per group, program
/// node/table counts, wave-prefix survivor rates).
fn throughput_summary(_c: &mut Criterion) {
    let n = if smoke() { 300 } else { 20_000 };
    let load = campus_workload(n);
    println!("\nthroughput summary ({n} packets, campus workload, sustained best of 5):");

    let xfdd = snap_xfdd::compile(&campus_policy()).unwrap();
    let flat = xfdd.flatten();
    let tables = TableProgram::compile(&flat);
    let store = Store::new();
    // Sustained throughput: one untimed warmup pass (page in the workload,
    // warm the caches and the allocator), then the best of 5 timed passes —
    // a cold single pass measures DRAM warmup, not the evaluation path.
    let best_of_5 = |f: &mut dyn FnMut()| {
        f();
        let mut best = f64::MAX;
        for _ in 0..5 {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64());
        }
        n as f64 / best
    };
    let obs_flat = best_of_5(&mut || {
        for (_, pkt) in &load {
            black_box(flat.evaluate(pkt, &store).unwrap());
        }
    });
    let obs_tables = best_of_5(&mut || {
        for (_, pkt) in &load {
            black_box(tables.evaluate(&flat, pkt, &store).unwrap());
        }
    });
    println!("  obs flat eval (no network):   {obs_flat:>12.0} pkts/s");
    println!(
        "  obs table eval (no network):  {obs_tables:>12.0} pkts/s  ({:.2}x vs flat)",
        obs_tables / obs_flat
    );

    let mut base = 0.0;
    let mut network_pps = Vec::new();
    let mut shard_contention = Vec::new();
    let (mut prefix_pkts, mut prefix_survivors) = (0u64, 0u64);
    for workers in [1usize, 2, 4, 8] {
        let net = campus_network();
        let engine = TrafficEngine::new(workers).with_batch_size(64);
        let pps = best_of_5(&mut || {
            let report = engine.run(&net, &load);
            assert!(report.is_clean());
            black_box(report.processed);
        });
        if workers == 1 {
            base = pps;
        }
        network_pps.push((workers, pps));
        // Per-instance counters: each configuration's network tallies only
        // its own runs (warmup + 5 timed passes).
        let (wp, ws) = net.telemetry().expect("telemetry on").wave_prefix_stats();
        prefix_pkts += wp;
        prefix_survivors += ws;
        let snap = net.metrics_snapshot();
        let fam_total = |name: &str| {
            snap.families
                .get(name)
                .map(|rows| rows.iter().map(|(_, v)| *v).sum::<u64>())
                .unwrap_or(0)
        };
        shard_contention.push((
            workers,
            fam_total("store.shard.acquisitions"),
            fam_total("store.shard.contended"),
        ));
        println!(
            "  network, {workers} worker(s):        {pps:>12.0} pkts/s  ({:.2}x vs 1 worker)",
            pps / base
        );
    }
    // Lock contention is the hardware-independent signal behind the worker
    // scaling: on a single-core container the pkts/s columns above cannot
    // scale, but a contended-acquisition count that stays flat as workers
    // grow shows the shard plane removed the serialization.
    println!("  store-shard contention across the scaling runs:");
    for (workers, acq, cont) in &shard_contention {
        println!("    {workers} worker(s): {acq:>9} shard-lock acquisitions, {cont:>7} contended");
    }
    let survivor_rate = prefix_survivors as f64 / (prefix_pkts.max(1)) as f64;
    println!(
        "  wave prefix: {prefix_pkts} packet-hops evaluated lock-free, \
         {prefix_survivors} needed the locked phase ({:.1}% survivors)",
        survivor_rate * 100.0
    );

    // Telemetry-overhead guard: the same sustained 1-worker run against a
    // network with telemetry enabled (the default, as above) and one with
    // it disabled entirely. EXPERIMENTS.md budgets the difference at <3%.
    // The passes of the two legs are *interleaved* (on, off, on, off, …):
    // a few percent is well below this container's minute-scale throughput
    // drift, so running one leg after the other would measure the drift,
    // not the overhead. Best-of within each leg then compares the two
    // configurations under the same machine conditions.
    let engine = TrafficEngine::new(1).with_batch_size(64);
    let net_on = campus_network();
    let net_off = campus_network().without_telemetry();
    let run = |net: &Network| {
        let t = Instant::now();
        let report = engine.run(net, &load);
        assert!(report.is_clean());
        black_box(report.processed);
        t.elapsed().as_secs_f64()
    };
    run(&net_on); // warmup
    run(&net_off);
    let (mut best_on, mut best_off) = (f64::MAX, f64::MAX);
    let mut ratios = Vec::new();
    for _ in 0..9 {
        let on = run(&net_on);
        let off = run(&net_off);
        best_on = best_on.min(on);
        best_off = best_off.min(off);
        ratios.push(on / off);
    }
    // Median of the per-pair ratios: a scheduler stall hitting one pass
    // skews that pair hard in either direction, but not the median.
    ratios.sort_by(f64::total_cmp);
    let telemetry_on_pps = n as f64 / best_on;
    let telemetry_off_pps = n as f64 / best_off;
    // The legs differ by less than this container's run-to-run noise, so
    // the median ratio can land on either side of 1.0. A negative reading
    // means "below the noise floor", not that telemetry sped the plane up:
    // record it clamped to zero and keep the raw reading alongside,
    // flagged whenever its magnitude is within the floor.
    const NOISE_FLOOR_PCT: f64 = 2.0;
    let overhead_raw_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    let below_noise_floor = overhead_raw_pct.abs() <= NOISE_FLOOR_PCT;
    let overhead_pct = overhead_raw_pct.max(0.0);
    println!(
        "  telemetry: {telemetry_on_pps:.0} pkts/s enabled vs {telemetry_off_pps:.0} disabled \
         ({overhead_pct:.2}% overhead, raw {overhead_raw_pct:+.2}%{})",
        if below_noise_floor {
            ", below noise floor"
        } else {
            ""
        }
    );

    // The enabled leg's full snapshot — per-switch counters, histograms,
    // sampled traces — doubles as the CI telemetry artifact.
    let snapshot_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../TELEMETRY_snapshot.json");
    match std::fs::write(&snapshot_path, net_on.metrics_snapshot().to_json()) {
        Ok(()) => println!("  wrote {}", snapshot_path.display()),
        Err(e) => eprintln!("  could not write {}: {e}", snapshot_path.display()),
    }

    // Machine-readable record for CI artifacts and EXPERIMENTS.md.
    let stats = tables.stats();
    let heavy_flat = snap_xfdd::compile(&heavy_policy()).unwrap().flatten();
    let heavy_stats = TableProgram::compile(&heavy_flat).stats();
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"packets\": {n},");
    let _ = writeln!(json, "  \"smoke\": {},", smoke());
    let _ = writeln!(json, "  \"pkts_per_sec\": {{");
    let _ = writeln!(json, "    \"obs_flat_eval\": {obs_flat:.0},");
    let _ = writeln!(json, "    \"obs_table_eval\": {obs_tables:.0},");
    for (i, (workers, pps)) in network_pps.iter().enumerate() {
        let comma = if i + 1 == network_pps.len() { "" } else { "," };
        let _ = writeln!(json, "    \"network_workers_{workers}\": {pps:.0}{comma}");
    }
    let _ = writeln!(json, "  }},");
    // Worker-scaling ratios (network_workers_N / network_workers_1): the
    // regression-trackable form of the scaling columns above.
    let _ = writeln!(json, "  \"scaling_vs_1_worker\": {{");
    for (i, (workers, pps)) in network_pps.iter().enumerate() {
        let comma = if i + 1 == network_pps.len() { "" } else { "," };
        let _ = writeln!(json, "    \"workers_{workers}\": {:.3}{comma}", pps / base);
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"store_shards\": {{");
    for (i, (workers, acq, cont)) in shard_contention.iter().enumerate() {
        let comma = if i + 1 == shard_contention.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(
            json,
            "    \"workers_{workers}\": {{ \"acquisitions\": {acq}, \"contended\": {cont} }}{comma}"
        );
    }
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"campus_program\": {{");
    let _ = writeln!(json, "    \"branches\": {},", flat.num_branches());
    let _ = writeln!(json, "    \"leaves\": {},", flat.num_leaves());
    let _ = writeln!(json, "    \"stages\": {},", stats.stages);
    let _ = writeln!(json, "    \"dense\": {},", stats.dense);
    let _ = writeln!(json, "    \"sorted\": {},", stats.sorted);
    let _ = writeln!(json, "    \"intervals\": {},", stats.intervals);
    let _ = writeln!(json, "    \"scans\": {},", stats.scans);
    let _ = writeln!(json, "    \"collapsed_tests\": {},", stats.collapsed_tests);
    let _ = writeln!(json, "    \"longest_chain\": {}", stats.longest_chain);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"heavy_program\": {{");
    let _ = writeln!(json, "    \"branches\": {},", heavy_flat.num_branches());
    let _ = writeln!(json, "    \"stages\": {},", heavy_stats.stages);
    let _ = writeln!(
        json,
        "    \"collapsed_tests\": {},",
        heavy_stats.collapsed_tests
    );
    let _ = writeln!(json, "    \"longest_chain\": {}", heavy_stats.longest_chain);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"wave_prefix\": {{");
    let _ = writeln!(json, "    \"packet_hops\": {prefix_pkts},");
    let _ = writeln!(json, "    \"survivors\": {prefix_survivors},");
    let _ = writeln!(json, "    \"survivor_rate\": {survivor_rate:.4}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"telemetry\": {{");
    let _ = writeln!(json, "    \"enabled_pps\": {telemetry_on_pps:.0},");
    let _ = writeln!(json, "    \"disabled_pps\": {telemetry_off_pps:.0},");
    let _ = writeln!(json, "    \"overhead_pct\": {overhead_pct:.2},");
    let _ = writeln!(json, "    \"overhead_raw_pct\": {overhead_raw_pct:.2},");
    let _ = writeln!(json, "    \"below_noise_floor\": {below_noise_floor}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_dataplane.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("  wrote {}", path.display()),
        Err(e) => eprintln!("  could not write {}: {e}", path.display()),
    }
}

// The summary runs first: it reports sustained pkts/s and feeds
// BENCH_dataplane.json, so it should see the process before the criterion
// groups have fragmented the heap and heated the machine.
criterion_group!(
    benches,
    throughput_summary,
    bench_eval_representations,
    bench_batched_execution,
    bench_worker_scaling
);
criterion_main!(benches);
