//! Distribution-plane update costs on the campus topology: how many bytes
//! the controller ships per update (suffix delta vs. what a full-program
//! payload would cost) and the end-to-end two-phase commit latency across
//! one agent per switch, over a realistic edit sequence (bootstrap → novel
//! threshold edits → working-set attack/calm flips → traffic reroute).
//!
//! Set `SNAP_BENCH_SMOKE=1` (as CI does) for a reduced configuration that
//! keeps the path compiling and non-regressing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snap_apps as apps;
use snap_core::SolverChoice;
use snap_distrib::{deploy_in_process, InProcessDeployment};
use snap_lang::Policy;
use snap_session::CompilerSession;
use snap_topology::generators::campus;
use snap_topology::TrafficMatrix;
use std::time::Instant;

fn smoke() -> bool {
    std::env::var_os("SNAP_BENCH_SMOKE").is_some()
}

fn campus_session() -> CompilerSession {
    let topo = campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
    CompilerSession::new(topo, tm).with_solver(SolverChoice::Heuristic)
}

/// The paper's running example with a tweakable detection threshold — one
/// working-set edit away from itself.
fn running_example(threshold: i64) -> Policy {
    apps::dns_tunnel_detect(threshold).seq(apps::assign_egress(6))
}

fn deploy() -> InProcessDeployment {
    deploy_in_process(campus_session(), 1024)
}

/// Latency of a full two-phase commit (compile + delta encode + prepare on
/// every agent + flip + acks), for the two interesting edit classes.
fn bench_commit_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("distrib_update");
    group.sample_size(if smoke() { 3 } else { 30 });

    // Working-set flip: both versions fully shipped, delta is ~a root.
    let mut deployment = deploy();
    deployment
        .controller
        .update_policy(&running_example(3))
        .unwrap();
    deployment
        .controller
        .update_policy(&running_example(8))
        .unwrap();
    let mut calm = true;
    group.bench_function("working_set_flip", |b| {
        b.iter(|| {
            let t = if calm { 3 } else { 8 };
            calm = !calm;
            black_box(
                deployment
                    .controller
                    .update_policy(&running_example(t))
                    .unwrap(),
            )
        })
    });
    deployment.shutdown();

    // Novel threshold edits: each iteration ships the changed subtree.
    let mut deployment = deploy();
    deployment
        .controller
        .update_policy(&running_example(1))
        .unwrap();
    let mut threshold = 1_000i64;
    group.bench_function("novel_edit", |b| {
        b.iter(|| {
            threshold += 1;
            black_box(
                deployment
                    .controller
                    .update_policy(&running_example(threshold))
                    .unwrap(),
            )
        })
    });
    deployment.shutdown();
    group.finish();
}

/// Print the delta-vs-full payload numbers quoted in EXPERIMENTS.md.
fn update_summary(_c: &mut Criterion) {
    let mut deployment = deploy();
    let fmt = |label: &str, r: &snap_distrib::CommitReport| {
        println!(
            "  {label:<28} {:>7} B delta vs {:>7} B full ({:>5.1}%), {:>4} new nodes, \
             prepare {:?}, commit {:?}",
            r.delta_bytes,
            r.full_bytes,
            100.0 * r.delta_ratio(),
            r.new_nodes,
            r.prepare_time,
            r.commit_time,
        );
    };
    println!("\ndistribution update summary (campus, one agent per switch):");
    let boot = deployment
        .controller
        .update_policy(&running_example(3))
        .unwrap();
    fmt("bootstrap (full resync)", &boot);
    let novel = deployment
        .controller
        .update_policy(&running_example(8))
        .unwrap();
    fmt("novel threshold edit", &novel);
    let flip = deployment
        .controller
        .update_policy(&running_example(3))
        .unwrap();
    fmt("working-set flip", &flip);
    let topo = deployment.controller.session().topology().clone();
    let reroute = deployment
        .controller
        .update_traffic(TrafficMatrix::gravity(&topo, 900.0, 7))
        .unwrap()
        .expect("compiled");
    fmt("traffic reroute", &reroute);

    // Best-of-N end-to-end commit latency for the working-set flip.
    let n = if smoke() { 5 } else { 200 };
    let mut best = f64::MAX;
    let mut calm = true;
    for _ in 0..n {
        let t = if calm { 3 } else { 8 };
        calm = !calm;
        let start = Instant::now();
        deployment
            .controller
            .update_policy(&running_example(t))
            .unwrap();
        best = best.min(start.elapsed().as_secs_f64());
    }
    println!(
        "  end-to-end flip commit, best of {n}: {:.1} µs",
        best * 1e6
    );
    deployment.shutdown();
}

criterion_group!(benches, bench_commit_latency, update_summary);
criterion_main!(benches);
