//! Benchmarks for the long-lived compiler session: cold full compiles vs
//! incremental recompiles of single-subtree policy edits vs parallel
//! per-policy translation, all on the campus topology.
//!
//! The workload is a parallel composition of four Table 3 applications
//! followed by egress assignment; the "edit" bumps the detection threshold
//! of one operand, leaving the other three subtrees (and all compositions
//! over them) warm in the session's caches. Two edit regimes matter:
//!
//! * **working-set edits** — the controller toggles between policy versions
//!   it has seen before (attack/calm thresholds, rollbacks). The session
//!   answers these from its version cache without running any phase.
//! * **novel edits** — every recompile carries a brand-new threshold. The
//!   edited subtree is re-translated and recomposed against cached
//!   neighbours; mapping and rule generation still run.
//!
//! A final report prints the measured cold/incremental speedups for both.

use criterion::{criterion_group, criterion_main, Criterion};
use snap_apps as apps;
use snap_core::{Compiler, SolverChoice};
use snap_lang::Policy;
use snap_session::{CompilerSession, SessionOptions};
use snap_topology::{generators::campus, TrafficMatrix};
use std::time::{Duration, Instant};

/// The benchmark policy; `threshold` parameterizes exactly one parallel
/// operand, so changing it is a single-subtree edit.
fn policy(threshold: i64) -> Policy {
    Policy::par_all(vec![
        apps::dns_tunnel_detect(10),
        apps::stateful_firewall(),
        apps::port_monitoring(),
        apps::heavy_hitter_detection(threshold),
    ])
    .seq(apps::assign_egress(6))
}

/// The calm/attack pair the working-set scenario flips between.
const CALM: i64 = 1000;
const ATTACK: i64 = 50;

fn compiler() -> Compiler {
    let topo = campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
    Compiler::new(topo, tm).with_solver(SolverChoice::Heuristic)
}

fn session(parallel: bool) -> CompilerSession {
    let topo = campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 42);
    CompilerSession::new(topo, tm).with_options(SessionOptions {
        solver: SolverChoice::Heuristic,
        parallel,
        ..SessionOptions::default()
    })
}

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_recompile");
    group.sample_size(10);

    // Cold: a fresh `Compiler::compile` per policy version — what a
    // controller without sessions pays on every change.
    let cold_compiler = compiler();
    let mut v = 0i64;
    group.bench_function("cold_full_compile", |b| {
        b.iter(|| {
            v += 1;
            cold_compiler.compile(&policy(10_000 + v)).unwrap()
        })
    });

    // Working-set edit: flip between two known versions; served from the
    // version cache. (The controller holds both policy objects, so AST
    // construction is not part of the flip.)
    let mut live = session(false);
    let calm = policy(CALM);
    let attack = policy(ATTACK);
    live.compile(&calm).unwrap();
    live.update_policy(&attack).unwrap();
    let mut flips = 0u64;
    group.bench_function("session_working_set_edit", |b| {
        b.iter(|| {
            flips += 1;
            live.update_policy(if flips.is_multiple_of(2) {
                &calm
            } else {
                &attack
            })
            .unwrap()
        })
    });

    // Novel edit: a brand-new threshold every iteration; the edited subtree
    // re-translates, its neighbours come from the fingerprint cache, the
    // unchanged mapping lets the session skip placement.
    let mut t = 0i64;
    group.bench_function("session_novel_edit", |b| {
        b.iter(|| {
            t += 1;
            live.update_policy(&policy(t)).unwrap()
        })
    });

    // Traffic-matrix update on the session (the paper's TE scenario).
    let topo = live.topology().clone();
    let mut seed = 0u64;
    group.bench_function("session_update_traffic", |b| {
        b.iter(|| {
            seed += 1;
            live.update_traffic(TrafficMatrix::gravity(&topo, 700.0, seed))
                .unwrap()
        })
    });

    // Cold compiles through a fresh session, sequential vs parallel
    // translation of the four-way parallel composition.
    let mut w = 0i64;
    group.bench_function("session_cold_sequential", |b| {
        b.iter(|| {
            w += 1;
            session(false).compile(&policy(20_000 + w)).unwrap()
        })
    });
    group.bench_function("session_cold_parallel_translate", |b| {
        b.iter(|| {
            w += 1;
            session(true).compile(&policy(20_000 + w)).unwrap()
        })
    });

    group.finish();
}

fn median_secs(samples: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Measure and print the headline ratios: incremental recompiles of a
/// single-subtree edit vs a cold `Compiler::compile` of the same version.
fn report_speedup(_c: &mut Criterion) {
    let cold_compiler = compiler();
    let mut v = 0i64;
    let cold = median_secs(15, || {
        v += 1;
        cold_compiler.compile(&policy(10_000 + v)).unwrap();
    });

    let mut live = session(false);
    let calm = policy(CALM);
    let attack = policy(ATTACK);
    live.compile(&calm).unwrap();
    live.update_policy(&attack).unwrap();
    let mut flips = 0u64;
    let working_set = median_secs(15, || {
        flips += 1;
        live.update_policy(if flips.is_multiple_of(2) {
            &calm
        } else {
            &attack
        })
        .unwrap();
    });

    let mut t = 0i64;
    let novel = median_secs(15, || {
        t += 1;
        live.update_policy(&policy(t)).unwrap();
    });

    let stats = live.stats();
    println!(
        "\nsession_recompile summary (campus, {} pool nodes, {} cached subtrees):",
        live.pool_len(),
        live.cache_len(),
    );
    println!("  cold Compiler::compile          median {cold:?}");
    println!(
        "  session working-set edit        median {working_set:?}  ({:.1}x faster than cold)",
        cold.as_secs_f64() / working_set.as_secs_f64()
    );
    println!(
        "  session novel edit              median {novel:?}  ({:.1}x faster than cold)",
        cold.as_secs_f64() / novel.as_secs_f64()
    );
    println!(
        "  session counters: subtree hits {}, misses {}, version hits {}, placement reuses {}",
        stats.subtree_hits, stats.subtree_misses, stats.version_hits, stats.placement_reuses,
    );
}

criterion_group!(benches, bench_session);
criterion_group!(report, report_speedup);
criterion_main!(benches, report);
