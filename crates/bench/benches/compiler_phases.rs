//! Criterion benchmarks for the end-to-end compiler on the campus topology
//! (the per-table harness binaries cover the large topologies).

use criterion::{criterion_group, criterion_main, Criterion};
use snap_bench::dns_tunnel_with_routing;
use snap_core::{Compiler, SolverChoice};
use snap_topology::{generators, TrafficMatrix};

fn bench_compiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiler");
    group.sample_size(10);

    let topo = generators::campus();
    let tm = TrafficMatrix::gravity(&topo, 600.0, 2);
    let policy = dns_tunnel_with_routing(6);

    let heuristic = Compiler::new(topo.clone(), tm.clone()).with_solver(SolverChoice::Heuristic);
    group.bench_function("campus_cold_start_heuristic", |b| {
        b.iter(|| heuristic.compile(&policy).unwrap())
    });

    let compiled = heuristic.compile(&policy).unwrap();
    let shifted = TrafficMatrix::gravity(&topo, 900.0, 9);
    group.bench_function("campus_te_reroute", |b| {
        b.iter(|| heuristic.reroute(&compiled, &shifted))
    });

    group.finish();
}

criterion_group!(benches, bench_compiler);
criterion_main!(benches);
