//! The finished, shareable xFDD: a root [`NodeId`] plus its [`Pool`].
//!
//! During compilation, diagrams are plain [`NodeId`]s into a mutable [`Pool`]
//! (see [`crate::pool`]); once composition finishes, the pool is frozen into
//! an [`Xfdd`] — an `Arc`-shared, immutable view. Cloning an [`Xfdd`] is an
//! `Arc` bump, which is how every switch in the data plane can "carry the
//! full diagram" (§4.5) without duplicating a single node: the interned ids
//! *are* the packet-tag node identifiers, so distributed execution resumes
//! processing at a [`NodeId`] directly.

use crate::action::Leaf;
use crate::flat::FlatProgram;
use crate::pool::{Node, NodeId, Pool};
use crate::test::Test;
use snap_lang::{EvalError, Packet, StateVar, Store};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

pub use crate::pool::eval_test;

/// A finished extended forwarding decision diagram: an immutable, cheaply
/// clonable handle on a root node inside a frozen [`Pool`].
#[derive(Clone)]
pub struct Xfdd {
    pool: Arc<Pool>,
    root: NodeId,
}

impl Xfdd {
    /// Freeze a pool around a root node.
    pub fn new(pool: Pool, root: NodeId) -> Xfdd {
        Xfdd {
            pool: Arc::new(pool),
            root,
        }
    }

    /// A handle on another root of the same (already frozen) pool.
    pub fn with_root(&self, root: NodeId) -> Xfdd {
        Xfdd {
            pool: Arc::clone(&self.pool),
            root,
        }
    }

    /// The diagram's root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Access a node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        self.pool.node(id)
    }

    /// The root node's leaf, if the whole diagram is a single leaf.
    pub fn as_leaf(&self) -> Option<&Leaf> {
        match self.node(self.root) {
            Node::Leaf(l) => Some(l),
            Node::Branch { .. } => None,
        }
    }

    /// Number of distinct nodes reachable from the root (what sharing
    /// actually stores).
    pub fn size(&self) -> usize {
        self.pool.size(self.root)
    }

    /// Number of nodes the diagram would occupy as an unshared tree — the
    /// pre-hash-consing baseline (saturating).
    pub fn tree_size(&self) -> u64 {
        self.pool.tree_size(self.root)
    }

    /// Number of distinct branch (test) nodes.
    pub fn num_tests(&self) -> usize {
        self.pool.num_tests(self.root)
    }

    /// Depth of the diagram (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        self.pool.depth(self.root)
    }

    /// The distinct nodes reachable from the root, in preorder.
    pub fn reachable(&self) -> Vec<NodeId> {
        self.pool.reachable(self.root)
    }

    /// All state variables referenced anywhere in the diagram (tests and
    /// leaf actions).
    pub fn state_vars(&self) -> BTreeSet<StateVar> {
        self.pool.state_vars(self.root)
    }

    /// Check the ordering invariant against the pool's variable order.
    pub fn is_well_formed(&self) -> bool {
        self.pool.is_well_formed(self.root)
    }

    /// If any leaf encodes a parallel race, return that variable.
    pub fn find_race(&self) -> Option<StateVar> {
        self.pool.find_race(self.root)
    }

    /// Run the diagram on a packet and store: walk tests to a leaf, then
    /// apply the leaf's action sequences.
    pub fn evaluate(
        &self,
        pkt: &Packet,
        store: &Store,
    ) -> Result<(BTreeSet<Packet>, Store), EvalError> {
        self.pool.evaluate(self.root, pkt, store)
    }

    /// Enumerate all root-to-leaf paths as `(tests-with-outcomes, leaf)`.
    pub fn paths(&self) -> Vec<(Vec<(Test, bool)>, &Leaf)> {
        self.pool.paths(self.root)
    }

    /// Compile the reachable subgraph into a dense struct-of-arrays
    /// [`FlatProgram`] — the representation the dataplane executes and
    /// NetASM lowering consumes (see [`crate::flat`]).
    pub fn flatten(&self) -> FlatProgram {
        FlatProgram::from_pool(&self.pool, self.root)
    }

    /// Render the diagram as an indented tree (for debugging, examples and
    /// the Figure 3 reproduction binary).
    pub fn render(&self) -> String {
        self.pool.render(self.root)
    }
}

impl fmt::Debug for Xfdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pool.debug(self.root))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, ActionSeq};
    use crate::test::VarOrder;
    use snap_lang::builder::field;
    use snap_lang::{Field, Value};

    fn sv(s: &str) -> StateVar {
        StateVar::new(s)
    }

    fn simple_branch() -> Xfdd {
        let mut p = Pool::new(VarOrder::empty());
        let out = p.leaf(Leaf::single(Action::Modify(Field::OutPort, Value::Int(6))));
        let drop = p.drop();
        let root = p.branch(Test::FieldValue(Field::SrcPort, Value::Int(53)), out, drop);
        Xfdd::new(p, root)
    }

    #[test]
    fn size_depth_and_tests() {
        let d = simple_branch();
        assert_eq!(d.size(), 3);
        assert_eq!(d.tree_size(), 3);
        assert_eq!(d.num_tests(), 1);
        assert_eq!(d.depth(), 2);
        assert!(d.as_leaf().is_none());
        let id = d.with_root(d.pool().id());
        assert_eq!(id.depth(), 1);
        assert!(id.as_leaf().is_some());
    }

    #[test]
    fn evaluate_walks_to_the_right_leaf() {
        let d = simple_branch();
        let dns = Packet::new().with(Field::SrcPort, 53);
        let other = Packet::new().with(Field::SrcPort, 80);
        let (pkts, _) = d.evaluate(&dns, &Store::new()).unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(
            pkts.iter().next().unwrap().get(&Field::OutPort),
            Some(&Value::Int(6))
        );
        let (pkts, _) = d.evaluate(&other, &Store::new()).unwrap();
        assert!(pkts.is_empty());
    }

    #[test]
    fn evaluate_state_test() {
        let mut p = Pool::new(VarOrder::empty());
        let id = p.id();
        let drop = p.drop();
        let root = p.branch(
            Test::State {
                var: sv("blacklist"),
                index: vec![field(Field::SrcIp)],
                value: snap_lang::Expr::Value(Value::Bool(true)),
            },
            drop,
            id,
        );
        let d = Xfdd::new(p, root);
        let pkt = Packet::new().with(Field::SrcIp, Value::ip(10, 0, 6, 5));
        let (pkts, _) = d.evaluate(&pkt, &Store::new()).unwrap();
        assert_eq!(pkts.len(), 1);
        let mut store = Store::new();
        store.set(
            &sv("blacklist"),
            vec![Value::ip(10, 0, 6, 5)],
            Value::Bool(true),
        );
        let (pkts, _) = d.evaluate(&pkt, &store).unwrap();
        assert!(pkts.is_empty());
    }

    #[test]
    fn field_field_test_requires_both_fields() {
        let t = Test::FieldField(Field::SrcIp, Field::DstIp);
        let both_equal = Packet::new()
            .with(Field::SrcIp, Value::ip(1, 1, 1, 1))
            .with(Field::DstIp, Value::ip(1, 1, 1, 1));
        let different = Packet::new()
            .with(Field::SrcIp, Value::ip(1, 1, 1, 1))
            .with(Field::DstIp, Value::ip(2, 2, 2, 2));
        let missing = Packet::new().with(Field::SrcIp, Value::ip(1, 1, 1, 1));
        let store = Store::new();
        assert!(eval_test(&t, &both_equal, &store).unwrap());
        assert!(!eval_test(&t, &different, &store).unwrap());
        assert!(!eval_test(&t, &missing, &store).unwrap());
    }

    #[test]
    fn well_formedness_checks_ordering() {
        let mut p = Pool::new(VarOrder::empty());
        let id = p.id();
        let drop = p.drop();
        let inner_good = p.branch(Test::FieldField(Field::SrcIp, Field::DstIp), id, drop);
        let good = p.branch(
            Test::FieldValue(Field::DstIp, Value::ip(1, 1, 1, 1)),
            inner_good,
            drop,
        );
        assert!(p.is_well_formed(good));
        let inner_bad = p.branch(
            Test::FieldValue(Field::DstIp, Value::ip(1, 1, 1, 1)),
            id,
            drop,
        );
        let bad = p.branch(
            Test::FieldField(Field::SrcIp, Field::DstIp),
            inner_bad,
            drop,
        );
        assert!(!p.is_well_formed(bad));
        // A repeated test along a path is also ill-formed.
        let dup = p.branch(
            Test::FieldValue(Field::DstIp, Value::ip(1, 1, 1, 1)),
            inner_bad,
            drop,
        );
        assert!(!p.is_well_formed(dup));
    }

    #[test]
    fn paths_enumeration() {
        let d = simple_branch();
        let paths = d.paths();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].0.len(), 1);
        assert!(paths[0].0[0].1);
        assert!(!paths[1].0[0].1);
        assert!(paths[1].1.is_drop());
    }

    #[test]
    fn race_detection_walks_all_leaves() {
        let mut p = Pool::new(VarOrder::empty());
        let mut racy = Leaf::drop();
        racy.0.insert(ActionSeq::single(Action::StateSet {
            var: sv("s"),
            index: vec![],
            value: snap_lang::Expr::Value(Value::Int(1)),
        }));
        racy.0.insert(ActionSeq::single(Action::StateSet {
            var: sv("s"),
            index: vec![],
            value: snap_lang::Expr::Value(Value::Int(2)),
        }));
        let racy_leaf = p.leaf(racy);
        let id = p.id();
        let root = p.branch(
            Test::FieldValue(Field::SrcPort, Value::Int(1)),
            id,
            racy_leaf,
        );
        let d = Xfdd::new(p, root);
        assert_eq!(d.find_race(), Some(sv("s")));
        assert_eq!(simple_branch().find_race(), None);
    }

    #[test]
    fn render_contains_tests_and_leaves() {
        let text = simple_branch().render();
        assert!(text.contains("srcport = 53"));
        assert!(text.contains("outport <- 6"));
        assert!(text.contains("{drop}"));
    }

    #[test]
    fn state_vars_collected_from_tests_and_leaves() {
        let mut p = Pool::new(VarOrder::empty());
        let incr = p.leaf(Leaf::single(Action::StateIncr {
            var: sv("write-me"),
            index: vec![],
        }));
        let drop = p.drop();
        let root = p.branch(
            Test::State {
                var: sv("read-me"),
                index: vec![],
                value: snap_lang::Expr::Value(Value::Int(0)),
            },
            incr,
            drop,
        );
        let d = Xfdd::new(p, root);
        let vars = d.state_vars();
        assert!(vars.contains(&sv("read-me")));
        assert!(vars.contains(&sv("write-me")));
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn clones_share_the_pool() {
        let d = simple_branch();
        let e = d.clone();
        assert!(std::ptr::eq(d.pool(), e.pool()));
        assert_eq!(d.root(), e.root());
    }
}
