//! The extended forwarding decision diagram itself.

use crate::action::Leaf;
use crate::test::{Test, VarOrder};
use serde::{Deserialize, Serialize};
use snap_lang::eval::{eval_expr, eval_index};
use snap_lang::{EvalError, Packet, StateVar, Store};
use std::collections::BTreeSet;
use std::fmt;

/// An extended forwarding decision diagram (Figure 6's `d`):
/// either a leaf (a set of action sequences) or a branch on a test.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Xfdd {
    /// A leaf.
    Leaf(Leaf),
    /// A branch: `test ? tru : fls`.
    Branch {
        /// The test at this node.
        test: Test,
        /// Sub-diagram for packets passing the test.
        tru: Box<Xfdd>,
        /// Sub-diagram for packets failing the test.
        fls: Box<Xfdd>,
    },
}

impl Xfdd {
    /// The `{id}` diagram.
    pub fn id() -> Xfdd {
        Xfdd::Leaf(Leaf::id())
    }

    /// The `{drop}` diagram.
    pub fn drop() -> Xfdd {
        Xfdd::Leaf(Leaf::drop())
    }

    /// A branch node. Collapses to a sub-diagram when both branches are
    /// identical, which keeps diagrams small without changing semantics.
    pub fn branch(test: Test, tru: Xfdd, fls: Xfdd) -> Xfdd {
        if tru == fls {
            return tru;
        }
        Xfdd::Branch {
            test,
            tru: Box::new(tru),
            fls: Box::new(fls),
        }
    }

    /// Is this diagram a single leaf?
    pub fn as_leaf(&self) -> Option<&Leaf> {
        match self {
            Xfdd::Leaf(l) => Some(l),
            Xfdd::Branch { .. } => None,
        }
    }

    /// Number of nodes (branches plus leaves).
    pub fn size(&self) -> usize {
        match self {
            Xfdd::Leaf(_) => 1,
            Xfdd::Branch { tru, fls, .. } => 1 + tru.size() + fls.size(),
        }
    }

    /// Number of branch (test) nodes.
    pub fn num_tests(&self) -> usize {
        match self {
            Xfdd::Leaf(_) => 0,
            Xfdd::Branch { tru, fls, .. } => 1 + tru.num_tests() + fls.num_tests(),
        }
    }

    /// Depth of the diagram (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Xfdd::Leaf(_) => 1,
            Xfdd::Branch { tru, fls, .. } => 1 + tru.depth().max(fls.depth()),
        }
    }

    /// All state variables referenced anywhere in the diagram (tests and
    /// leaf actions).
    pub fn state_vars(&self) -> BTreeSet<StateVar> {
        let mut out = BTreeSet::new();
        self.collect_state_vars(&mut out);
        out
    }

    fn collect_state_vars(&self, out: &mut BTreeSet<StateVar>) {
        match self {
            Xfdd::Leaf(leaf) => {
                out.extend(leaf.written_vars());
            }
            Xfdd::Branch { test, tru, fls } => {
                if let Some(v) = test.state_var() {
                    out.insert(v.clone());
                }
                tru.collect_state_vars(out);
                fls.collect_state_vars(out);
            }
        }
    }

    /// Check the ordering invariant: along every root-to-leaf path, tests are
    /// strictly increasing under the given variable order.
    pub fn is_well_formed(&self, order: &VarOrder) -> bool {
        fn go(d: &Xfdd, prev: Option<&Test>, order: &VarOrder) -> bool {
            match d {
                Xfdd::Leaf(_) => true,
                Xfdd::Branch { test, tru, fls } => {
                    if let Some(p) = prev {
                        if p.cmp_in(test, order) != std::cmp::Ordering::Less {
                            return false;
                        }
                    }
                    go(tru, Some(test), order) && go(fls, Some(test), order)
                }
            }
        }
        go(self, None, order)
    }

    /// If any leaf encodes a parallel race (two action sequences writing the
    /// same state variable), return that variable.
    pub fn find_race(&self) -> Option<StateVar> {
        match self {
            Xfdd::Leaf(leaf) => leaf.parallel_race(),
            Xfdd::Branch { tru, fls, .. } => tru.find_race().or_else(|| fls.find_race()),
        }
    }

    /// Evaluate one test against a packet and store.
    pub fn eval_test(test: &Test, pkt: &Packet, store: &Store) -> Result<bool, EvalError> {
        match test {
            Test::FieldValue(f, v) => Ok(match pkt.get(f) {
                Some(actual) => v.matches(actual),
                None => false,
            }),
            Test::FieldField(f, g) => Ok(match (pkt.get(f), pkt.get(g)) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            }),
            Test::State { var, index, value } => {
                let idx = eval_index(index, pkt)?;
                let expected = eval_expr(value, pkt)?;
                Ok(store.get(var, &idx) == expected)
            }
        }
    }

    /// Run the diagram on a packet and store: walk tests to a leaf, then
    /// apply the leaf's action sequences.
    pub fn evaluate(
        &self,
        pkt: &Packet,
        store: &Store,
    ) -> Result<(BTreeSet<Packet>, Store), EvalError> {
        match self {
            Xfdd::Leaf(leaf) => leaf.apply(pkt, store),
            Xfdd::Branch { test, tru, fls } => {
                if Self::eval_test(test, pkt, store)? {
                    tru.evaluate(pkt, store)
                } else {
                    fls.evaluate(pkt, store)
                }
            }
        }
    }

    /// Enumerate all root-to-leaf paths as `(tests-with-outcomes, leaf)`.
    /// Used by packet-state mapping (§4.3) and by rule generation.
    pub fn paths(&self) -> Vec<(Vec<(Test, bool)>, &Leaf)> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.collect_paths(&mut prefix, &mut out);
        out
    }

    fn collect_paths<'a>(
        &'a self,
        prefix: &mut Vec<(Test, bool)>,
        out: &mut Vec<(Vec<(Test, bool)>, &'a Leaf)>,
    ) {
        match self {
            Xfdd::Leaf(leaf) => out.push((prefix.clone(), leaf)),
            Xfdd::Branch { test, tru, fls } => {
                prefix.push((test.clone(), true));
                tru.collect_paths(prefix, out);
                prefix.pop();
                prefix.push((test.clone(), false));
                fls.collect_paths(prefix, out);
                prefix.pop();
            }
        }
    }

    /// Render the diagram as an indented tree (for debugging, examples and
    /// the Figure 3 reproduction binary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self {
            Xfdd::Leaf(leaf) => {
                out.push_str(&format!("{pad}{leaf:?}\n"));
            }
            Xfdd::Branch { test, tru, fls } => {
                out.push_str(&format!("{pad}{test:?} ?\n"));
                tru.render_into(depth + 1, out);
                out.push_str(&format!("{pad}:\n"));
                fls.render_into(depth + 1, out);
            }
        }
    }
}

impl fmt::Debug for Xfdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Xfdd::Leaf(l) => write!(f, "{l:?}"),
            Xfdd::Branch { test, tru, fls } => {
                write!(f, "({test:?} ? {tru:?} : {fls:?})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, ActionSeq};
    use snap_lang::builder::field;
    use snap_lang::{Field, Value};

    fn sv(s: &str) -> StateVar {
        StateVar::new(s)
    }

    fn simple_branch() -> Xfdd {
        Xfdd::branch(
            Test::FieldValue(Field::SrcPort, Value::Int(53)),
            Xfdd::Leaf(Leaf::single(Action::Modify(Field::OutPort, Value::Int(6)))),
            Xfdd::drop(),
        )
    }

    #[test]
    fn branch_collapses_equal_children() {
        let d = Xfdd::branch(
            Test::FieldValue(Field::SrcPort, Value::Int(53)),
            Xfdd::id(),
            Xfdd::id(),
        );
        assert_eq!(d, Xfdd::id());
        assert_eq!(d.size(), 1);
    }

    #[test]
    fn size_depth_and_tests() {
        let d = simple_branch();
        assert_eq!(d.size(), 3);
        assert_eq!(d.num_tests(), 1);
        assert_eq!(d.depth(), 2);
        assert_eq!(Xfdd::id().depth(), 1);
    }

    #[test]
    fn evaluate_walks_to_the_right_leaf() {
        let d = simple_branch();
        let dns = Packet::new().with(Field::SrcPort, 53);
        let other = Packet::new().with(Field::SrcPort, 80);
        let (pkts, _) = d.evaluate(&dns, &Store::new()).unwrap();
        assert_eq!(pkts.len(), 1);
        assert_eq!(
            pkts.iter().next().unwrap().get(&Field::OutPort),
            Some(&Value::Int(6))
        );
        let (pkts, _) = d.evaluate(&other, &Store::new()).unwrap();
        assert!(pkts.is_empty());
    }

    #[test]
    fn evaluate_state_test() {
        let d = Xfdd::branch(
            Test::State {
                var: sv("blacklist"),
                index: vec![field(Field::SrcIp)],
                value: snap_lang::Expr::Value(Value::Bool(true)),
            },
            Xfdd::drop(),
            Xfdd::id(),
        );
        let pkt = Packet::new().with(Field::SrcIp, Value::ip(10, 0, 6, 5));
        let (pkts, _) = d.evaluate(&pkt, &Store::new()).unwrap();
        assert_eq!(pkts.len(), 1);
        let mut store = Store::new();
        store.set(&sv("blacklist"), vec![Value::ip(10, 0, 6, 5)], Value::Bool(true));
        let (pkts, _) = d.evaluate(&pkt, &store).unwrap();
        assert!(pkts.is_empty());
    }

    #[test]
    fn field_field_test_requires_both_fields() {
        let t = Test::FieldField(Field::SrcIp, Field::DstIp);
        let both_equal = Packet::new()
            .with(Field::SrcIp, Value::ip(1, 1, 1, 1))
            .with(Field::DstIp, Value::ip(1, 1, 1, 1));
        let different = Packet::new()
            .with(Field::SrcIp, Value::ip(1, 1, 1, 1))
            .with(Field::DstIp, Value::ip(2, 2, 2, 2));
        let missing = Packet::new().with(Field::SrcIp, Value::ip(1, 1, 1, 1));
        let store = Store::new();
        assert!(Xfdd::eval_test(&t, &both_equal, &store).unwrap());
        assert!(!Xfdd::eval_test(&t, &different, &store).unwrap());
        assert!(!Xfdd::eval_test(&t, &missing, &store).unwrap());
    }

    #[test]
    fn well_formedness_checks_ordering() {
        let order = VarOrder::empty();
        let good = Xfdd::branch(
            Test::FieldValue(Field::DstIp, Value::ip(1, 1, 1, 1)),
            Xfdd::branch(
                Test::FieldField(Field::SrcIp, Field::DstIp),
                Xfdd::id(),
                Xfdd::drop(),
            ),
            Xfdd::drop(),
        );
        assert!(good.is_well_formed(&order));
        let bad = Xfdd::branch(
            Test::FieldField(Field::SrcIp, Field::DstIp),
            Xfdd::branch(
                Test::FieldValue(Field::DstIp, Value::ip(1, 1, 1, 1)),
                Xfdd::id(),
                Xfdd::drop(),
            ),
            Xfdd::drop(),
        );
        assert!(!bad.is_well_formed(&order));
        // A repeated test along a path is also ill-formed.
        let dup = Xfdd::branch(
            Test::FieldValue(Field::DstIp, Value::ip(1, 1, 1, 1)),
            Xfdd::branch(
                Test::FieldValue(Field::DstIp, Value::ip(1, 1, 1, 1)),
                Xfdd::id(),
                Xfdd::drop(),
            ),
            Xfdd::drop(),
        );
        assert!(!dup.is_well_formed(&order));
    }

    #[test]
    fn paths_enumeration() {
        let d = simple_branch();
        let paths = d.paths();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].0.len(), 1);
        assert!(paths[0].0[0].1);
        assert!(!paths[1].0[0].1);
        assert!(paths[1].1.is_drop());
    }

    #[test]
    fn race_detection_walks_all_leaves() {
        let mut racy = Leaf::drop();
        racy.0.insert(ActionSeq::single(Action::StateSet {
            var: sv("s"),
            index: vec![],
            value: snap_lang::Expr::Value(Value::Int(1)),
        }));
        racy.0.insert(ActionSeq::single(Action::StateSet {
            var: sv("s"),
            index: vec![],
            value: snap_lang::Expr::Value(Value::Int(2)),
        }));
        let d = Xfdd::branch(
            Test::FieldValue(Field::SrcPort, Value::Int(1)),
            Xfdd::id(),
            Xfdd::Leaf(racy),
        );
        assert_eq!(d.find_race(), Some(sv("s")));
        assert_eq!(simple_branch().find_race(), None);
    }

    #[test]
    fn render_contains_tests_and_leaves() {
        let text = simple_branch().render();
        assert!(text.contains("srcport = 53"));
        assert!(text.contains("outport <- 6"));
        assert!(text.contains("{drop}"));
    }

    #[test]
    fn state_vars_collected_from_tests_and_leaves() {
        let d = Xfdd::branch(
            Test::State {
                var: sv("read-me"),
                index: vec![],
                value: snap_lang::Expr::Value(Value::Int(0)),
            },
            Xfdd::Leaf(Leaf::single(Action::StateIncr {
                var: sv("write-me"),
                index: vec![],
            })),
            Xfdd::drop(),
        );
        let vars = d.state_vars();
        assert!(vars.contains(&sv("read-me")));
        assert!(vars.contains(&sv("write-me")));
        assert_eq!(vars.len(), 2);
    }
}
