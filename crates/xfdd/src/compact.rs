//! Pool garbage collection: a mark-from-roots compactor.
//!
//! A long-lived pool (incremental compilation sessions) accumulates dead
//! intermediate nodes: every composition interns its partial results, and a
//! superseded policy version leaves its whole diagram behind. [`Pool::compact`]
//! reclaims that memory in place:
//!
//! 1. **mark** — the shared preorder walker marks every node reachable from
//!    the given roots (plus the pre-interned `{drop}`/`{id}` leaves, which
//!    must keep their fixed ids 0 and 1);
//! 2. **sweep** — live nodes are rewritten into a fresh arena in index order.
//!    Children always have smaller indices than their parents (see the `push`
//!    invariant), so child ids are already remapped when a branch is visited;
//! 3. **rebuild** — the leaf/branch interners are reconstructed from the new
//!    arena, memo-table entries whose operands, results or contexts died are
//!    cleared, surviving entries are remapped, and the interned contexts are
//!    compacted the same way (a context is live when a surviving union memo
//!    entry references it, and then so are its interning ancestors).
//!
//! The returned [`RemapTable`] translates old ids to new ones so callers (a
//! compiler session's fingerprint cache, for example) can rewrite the ids
//! they hold; ids of collected nodes translate to `None`.

use crate::pool::{CtxId, Node, NodeId, Pool};

/// Old-id → new-id translation produced by [`Pool::compact`].
#[derive(Clone, Debug, Default)]
pub struct RemapTable {
    nodes: Vec<Option<NodeId>>,
    ctxs: Vec<Option<CtxId>>,
    live_nodes: usize,
}

impl RemapTable {
    /// The new id of a node, or `None` if it was collected (or the id is
    /// from a different pool generation).
    pub fn node(&self, old: NodeId) -> Option<NodeId> {
        self.nodes.get(old.index()).copied().flatten()
    }

    /// The new id of an interned context, or `None` if it was collected.
    pub fn ctx(&self, old: CtxId) -> Option<CtxId> {
        self.ctxs.get(old.index()).copied().flatten()
    }

    /// Number of nodes in the pool before compaction.
    pub fn nodes_before(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes that survived.
    pub fn nodes_after(&self) -> usize {
        self.live_nodes
    }

    /// Number of nodes reclaimed.
    pub fn nodes_reclaimed(&self) -> usize {
        self.nodes_before() - self.nodes_after()
    }
}

impl Pool {
    /// Compact the pool in place, keeping only nodes reachable from `roots`
    /// (plus the pre-interned `{drop}` and `{id}` leaves). Live nodes keep
    /// their relative order but are renumbered densely; the interners are
    /// rebuilt and stale memo entries cleared, so composition after a
    /// compaction behaves exactly as before (minus the cleared warm entries
    /// for collected diagrams). Never grows the pool.
    pub fn compact(&mut self, roots: &[NodeId]) -> RemapTable {
        // --- mark ------------------------------------------------------
        let mut live = vec![false; self.nodes.len()];
        live[self.drop().index()] = true;
        live[self.id().index()] = true;
        self.visit_reachable(roots.iter().copied(), |id, _| {
            live[id.index()] = true;
            true
        });

        // --- sweep -----------------------------------------------------
        // Children have smaller indices than parents, so one forward pass
        // can remap child links as it goes.
        let old_nodes = std::mem::take(&mut self.nodes);
        let mut node_map: Vec<Option<NodeId>> = vec![None; old_nodes.len()];
        let mut new_nodes = Vec::with_capacity(live.iter().filter(|l| **l).count());
        for (i, node) in old_nodes.into_iter().enumerate() {
            if !live[i] {
                continue;
            }
            let rewritten = match node {
                Node::Leaf(l) => Node::Leaf(l),
                Node::Branch { test, tru, fls } => Node::Branch {
                    test,
                    tru: node_map[tru.index()].expect("live child of live branch"),
                    fls: node_map[fls.index()].expect("live child of live branch"),
                },
            };
            node_map[i] = Some(NodeId(
                u32::try_from(new_nodes.len()).expect("compacted pool overflow"),
            ));
            new_nodes.push(rewritten);
        }
        let live_nodes = new_nodes.len();
        self.nodes = new_nodes;

        // --- rebuild interners -----------------------------------------
        self.leaf_intern.clear();
        self.branch_intern.clear();
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            match node {
                Node::Leaf(l) => {
                    self.leaf_intern.entry(l.clone()).or_insert(id);
                }
                Node::Branch { test, tru, fls } => {
                    self.branch_intern
                        .entry((test.clone(), *tru, *fls))
                        .or_insert(id);
                }
            }
        }

        let nmap = |id: NodeId| node_map[id.index()];

        // --- contexts --------------------------------------------------
        // A context is live when a surviving union memo entry references it;
        // its interning ancestors must then survive too so `ctx_with`
        // continues to deduplicate. Parents are created before children, so
        // one descending pass propagates liveness transitively.
        let mut ctx_map: Vec<Option<CtxId>> = vec![None; self.ctxs.len()];
        if !self.ctxs.is_empty() {
            let mut ctx_live = vec![false; self.ctxs.len()];
            ctx_live[CtxId::EMPTY.index()] = true;
            for ((a, b, ctx), r) in &self.union_memo {
                if nmap(*a).is_some() && nmap(*b).is_some() && nmap(*r).is_some() {
                    ctx_live[ctx.index()] = true;
                }
            }
            let mut parent_of: Vec<Option<CtxId>> = vec![None; self.ctxs.len()];
            for ((parent, _, _), child) in &self.ctx_intern {
                parent_of[child.index()] = Some(*parent);
            }
            for i in (0..ctx_live.len()).rev() {
                if ctx_live[i] {
                    if let Some(p) = parent_of[i] {
                        ctx_live[p.index()] = true;
                    }
                }
            }

            let old_ctxs = std::mem::take(&mut self.ctxs);
            for (i, ctx) in old_ctxs.into_iter().enumerate() {
                if !ctx_live[i] {
                    continue;
                }
                ctx_map[i] = Some(CtxId::new(self.ctxs.len()));
                self.ctxs.push(ctx);
            }
            let old_ctx_intern = std::mem::take(&mut self.ctx_intern);
            for ((parent, test, outcome), child) in old_ctx_intern {
                if let (Some(p), Some(c)) = (ctx_map[parent.index()], ctx_map[child.index()]) {
                    self.ctx_intern.insert((p, test, outcome), c);
                }
            }
        }
        let cmap = |id: CtxId| ctx_map.get(id.index()).copied().flatten();

        // --- memo tables -----------------------------------------------
        let old_union = std::mem::take(&mut self.union_memo);
        for ((a, b, ctx), r) in old_union {
            if let (Some(a), Some(b), Some(ctx), Some(r)) = (nmap(a), nmap(b), cmap(ctx), nmap(r)) {
                self.union_memo.insert((a, b, ctx), r);
            }
        }
        let old_seq = std::mem::take(&mut self.seq_memo);
        for ((a, b), r) in old_seq {
            if let (Some(a), Some(b)) = (nmap(a), nmap(b)) {
                // Error results reference no nodes; they stay valid for as
                // long as their operands live.
                match r {
                    Ok(d) => {
                        if let Some(d) = nmap(d) {
                            self.seq_memo.insert((a, b), Ok(d));
                        }
                    }
                    Err(e) => {
                        self.seq_memo.insert((a, b), Err(e));
                    }
                }
            }
        }
        let old_negate = std::mem::take(&mut self.negate_memo);
        for (a, r) in old_negate {
            if let (Some(a), Some(r)) = (nmap(a), nmap(r)) {
                self.negate_memo.insert(a, r);
            }
        }
        let old_restrict = std::mem::take(&mut self.restrict_memo);
        for ((a, test, positive), r) in old_restrict {
            if let (Some(a), Some(r)) = (nmap(a), nmap(r)) {
                self.restrict_memo.insert((a, test, positive), r);
            }
        }

        RemapTable {
            nodes: node_map,
            ctxs: ctx_map,
            live_nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, Leaf};
    use crate::test::{Test, VarOrder};
    use snap_lang::{Field, Packet, Store, Value};

    fn pool() -> Pool {
        Pool::new(VarOrder::empty())
    }

    fn branch_on(p: &mut Pool, port: i64) -> NodeId {
        let id = p.id();
        let drop = p.drop();
        p.branch(Test::FieldValue(Field::SrcPort, Value::Int(port)), id, drop)
    }

    #[test]
    fn compact_drops_unreachable_nodes_and_keeps_roots() {
        let mut p = pool();
        let keep = branch_on(&mut p, 53);
        let dead = branch_on(&mut p, 80);
        let dead2 = p.union(dead, keep);
        assert!(p.len() >= 5);
        let before = p.len();

        let remap = p.compact(&[keep]);
        assert!(p.len() < before);
        assert_eq!(remap.nodes_reclaimed(), before - p.len());
        // drop/id keep their fixed ids.
        assert_eq!(remap.node(NodeId(0)), Some(NodeId(0)));
        assert_eq!(remap.node(NodeId(1)), Some(NodeId(1)));
        // The kept diagram survives and still evaluates.
        let keep2 = remap.node(keep).expect("root survives");
        let dns = Packet::new().with(Field::SrcPort, 53);
        assert_eq!(p.evaluate(keep2, &dns, &Store::new()).unwrap().0.len(), 1);
        // Collected diagrams translate to None.
        assert_eq!(remap.node(dead), None);
        assert_eq!(remap.node(dead2), None);
    }

    #[test]
    fn compacted_pool_reinterns_to_identical_structure() {
        let mut p = pool();
        let keep = branch_on(&mut p, 53);
        let _dead = branch_on(&mut p, 80);
        let out = p.leaf(Leaf::single(Action::Modify(Field::OutPort, Value::Int(1))));
        let root = p.branch(Test::FieldValue(Field::DstPort, Value::Int(443)), out, keep);

        let remap = p.compact(&[root]);
        let root2 = remap.node(root).unwrap();
        let len = p.len();
        // Re-interning every live node must hit the rebuilt interners: same
        // ids, no growth.
        for id in p.reachable(root2) {
            match p.node(id).clone() {
                Node::Leaf(l) => assert_eq!(p.leaf(l), id),
                Node::Branch { test, tru, fls } => assert_eq!(p.branch(test, tru, fls), id),
            }
        }
        assert_eq!(p.len(), len, "re-interning grew the compacted pool");
    }

    #[test]
    fn warm_memo_entries_for_live_diagrams_survive_compaction() {
        let mut p = pool();
        let a = branch_on(&mut p, 53);
        let b = branch_on(&mut p, 80);
        let u = p.union(a, b);
        let remap = p.compact(&[a, b, u]);
        let (a2, b2) = (remap.node(a).unwrap(), remap.node(b).unwrap());
        let len = p.len();
        // The union is a memo hit after compaction: same result, no growth.
        assert_eq!(p.union(a2, b2), remap.node(u).unwrap());
        assert_eq!(p.len(), len);
    }

    #[test]
    fn compact_never_grows_and_is_idempotent() {
        let mut p = pool();
        let a = branch_on(&mut p, 53);
        let b = branch_on(&mut p, 80);
        let u = p.union(a, b);
        let before = p.len();
        let r1 = p.compact(&[u]);
        assert!(p.len() <= before);
        let mid = p.len();
        let u2 = r1.node(u).unwrap();
        let r2 = p.compact(&[u2]);
        assert_eq!(p.len(), mid, "second compaction reclaimed live nodes");
        assert_eq!(r2.node(u2), Some(u2));
    }
}
