//! xFDD tests and the total test order (§4.2).
//!
//! An xFDD branch node carries one of three kinds of tests: field-value
//! (`f = v`), field-field (`f1 = f2`, an extension needed when composing
//! stateful operations) and state (`s[e] = e`). The paper requires a total
//! order on tests so that every path of a composed diagram mentions each test
//! at most once: *all field-value tests precede all field-field tests, which
//! precede all state tests*; state tests are ordered by the state-variable
//! order derived from the dependency graph.

use serde::{Deserialize, Serialize};
use snap_lang::{Expr, Field, StateVar, Value};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// A test at an xFDD branch node.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Test {
    /// `f = v`
    FieldValue(Field, Value),
    /// `f1 = f2` — do two header fields of the packet hold equal values?
    FieldField(Field, Field),
    /// `s[⇀e] = e`
    State {
        /// The state variable read.
        var: StateVar,
        /// Index expressions (over the *original* packet header).
        index: Vec<Expr>,
        /// Compared value expression.
        value: Expr,
    },
}

impl Test {
    /// The state variable this test reads, if it is a state test.
    pub fn state_var(&self) -> Option<&StateVar> {
        match self {
            Test::State { var, .. } => Some(var),
            _ => None,
        }
    }

    /// Rank of the test *kind* in the global order.
    fn kind_rank(&self) -> u8 {
        match self {
            Test::FieldValue(_, _) => 0,
            Test::FieldField(_, _) => 1,
            Test::State { .. } => 2,
        }
    }

    /// Compare two tests under the given state-variable order.
    pub fn cmp_in(&self, other: &Test, order: &VarOrder) -> Ordering {
        match self.kind_rank().cmp(&other.kind_rank()) {
            Ordering::Equal => {}
            o => return o,
        }
        match (self, other) {
            (Test::FieldValue(f1, v1), Test::FieldValue(f2, v2)) => (f1, v1).cmp(&(f2, v2)),
            (Test::FieldField(a1, b1), Test::FieldField(a2, b2)) => (a1, b1).cmp(&(a2, b2)),
            (
                Test::State {
                    var: s1,
                    index: i1,
                    value: v1,
                },
                Test::State {
                    var: s2,
                    index: i2,
                    value: v2,
                },
            ) => order
                .rank(s1)
                .cmp(&order.rank(s2))
                .then_with(|| s1.cmp(s2))
                .then_with(|| i1.cmp(i2))
                .then_with(|| v1.cmp(v2)),
            _ => unreachable!("kind ranks already compared"),
        }
    }
}

impl fmt::Debug for Test {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Test::FieldValue(field, v) => write!(f, "{field} = {v}"),
            Test::FieldField(a, b) => write!(f, "{a} = {b}"),
            Test::State { var, index, value } => {
                write!(f, "{var}")?;
                for e in index {
                    write!(f, "[{e:?}]")?;
                }
                write!(f, " = {value:?}")
            }
        }
    }
}

/// The state-variable order used to place state tests in xFDDs.
///
/// Derived from the SCC condensation of the state dependency graph (see
/// [`crate::deps`]); variables not in the order are ranked after all ordered
/// ones and tie-broken by name, so an order built from an incomplete variable
/// list still yields a total order.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarOrder {
    ranks: BTreeMap<StateVar, usize>,
}

impl VarOrder {
    /// An order over the given variables (first = smallest).
    pub fn new(vars: impl IntoIterator<Item = StateVar>) -> Self {
        let mut ranks = BTreeMap::new();
        for (i, v) in vars.into_iter().enumerate() {
            ranks.entry(v).or_insert(i);
        }
        VarOrder { ranks }
    }

    /// An empty order (all variables tie-broken by name); convenient for
    /// stateless programs and unit tests.
    pub fn empty() -> Self {
        VarOrder::default()
    }

    /// The rank of a variable (unknown variables rank last).
    pub fn rank(&self, var: &StateVar) -> usize {
        self.ranks.get(var).copied().unwrap_or(usize::MAX)
    }

    /// The variables of this order, most-significant first.
    pub fn variables(&self) -> Vec<StateVar> {
        let mut vs: Vec<(usize, StateVar)> =
            self.ranks.iter().map(|(v, r)| (*r, v.clone())).collect();
        vs.sort();
        vs.into_iter().map(|(_, v)| v).collect()
    }

    /// Does the order mention this variable?
    pub fn contains(&self, var: &StateVar) -> bool {
        self.ranks.contains_key(var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_lang::builder::field;

    fn sv(s: &str) -> StateVar {
        StateVar::new(s)
    }

    fn state_test(var: &str) -> Test {
        Test::State {
            var: sv(var),
            index: vec![field(Field::SrcIp)],
            value: Expr::Value(Value::Bool(true)),
        }
    }

    #[test]
    fn kind_order_field_value_then_field_field_then_state() {
        let order = VarOrder::empty();
        let fv = Test::FieldValue(Field::SrcPort, Value::Int(53));
        let ff = Test::FieldField(Field::SrcIp, Field::DstIp);
        let st = state_test("s");
        assert_eq!(fv.cmp_in(&ff, &order), Ordering::Less);
        assert_eq!(ff.cmp_in(&st, &order), Ordering::Less);
        assert_eq!(fv.cmp_in(&st, &order), Ordering::Less);
        assert_eq!(st.cmp_in(&fv, &order), Ordering::Greater);
    }

    #[test]
    fn state_tests_ordered_by_var_order() {
        let order = VarOrder::new(vec![sv("orphan"), sv("susp-client"), sv("blacklist")]);
        let a = state_test("orphan");
        let b = state_test("susp-client");
        let c = state_test("blacklist");
        assert_eq!(a.cmp_in(&b, &order), Ordering::Less);
        assert_eq!(b.cmp_in(&c, &order), Ordering::Less);
        // Reversing the order reverses the comparison.
        let order2 = VarOrder::new(vec![sv("blacklist"), sv("susp-client"), sv("orphan")]);
        assert_eq!(a.cmp_in(&b, &order2), Ordering::Greater);
    }

    #[test]
    fn unknown_vars_rank_last_and_tie_break_by_name() {
        let order = VarOrder::new(vec![sv("known")]);
        let known = state_test("known");
        let zzz = state_test("zzz");
        let aaa = state_test("aaa");
        assert_eq!(known.cmp_in(&zzz, &order), Ordering::Less);
        assert_eq!(aaa.cmp_in(&zzz, &order), Ordering::Less);
        assert!(!order.contains(&sv("aaa")));
        assert!(order.contains(&sv("known")));
    }

    #[test]
    fn identical_tests_compare_equal() {
        let order = VarOrder::empty();
        let a = Test::FieldValue(Field::DstIp, Value::prefix(10, 0, 6, 0, 24));
        assert_eq!(a.cmp_in(&a.clone(), &order), Ordering::Equal);
        let s = state_test("s");
        assert_eq!(s.cmp_in(&s.clone(), &order), Ordering::Equal);
    }

    #[test]
    fn var_order_roundtrip() {
        let order = VarOrder::new(vec![sv("a"), sv("b"), sv("c")]);
        assert_eq!(order.variables(), vec![sv("a"), sv("b"), sv("c")]);
        assert_eq!(order.rank(&sv("a")), 0);
        assert_eq!(order.rank(&sv("c")), 2);
    }

    #[test]
    fn duplicate_vars_keep_first_rank() {
        let order = VarOrder::new(vec![sv("a"), sv("b"), sv("a")]);
        assert_eq!(order.rank(&sv("a")), 0);
        assert_eq!(order.rank(&sv("b")), 1);
    }
}
