//! A wire format for frozen diagrams: length-prefixed binary encoding of a
//! pool's node table plus a root id, with no serde dependency.
//!
//! Controller→switch distribution needs diagrams to cross process
//! boundaries. The arena already stores nodes in a flat table whose child
//! links always point at smaller indices, so the encoding is direct: a
//! header (magic, version, payload kind, variable order), a node table and
//! a root id. The decoder *re-interns* every node through the target pool's
//! constructors, so decoding is also a cross-pool import: structurally equal
//! nodes collapse onto existing ids, and decoding into a non-empty pool
//! shares everything it can.
//!
//! Two payload kinds exist, distinguished by a header byte so a receiver can
//! never misinterpret one as the other:
//!
//! * **full** ([`encode_diagram`] / [`decode_diagram`] / [`decode_into`]) —
//!   the subgraph reachable from one root, renumbered densely. Child links
//!   are local to the payload; the payload is self-contained.
//! * **delta** ([`encode_delta`] / [`apply_delta`]) — a *suffix* of the
//!   encoder pool's node table, for controller→switch distribution against a
//!   mirrored pool. Because the arena appends children before parents and
//!   never stores duplicates, the node table of an append-only distribution
//!   pool is itself a valid child-first encoding, and an update is just the
//!   bytes past what the receiver already holds. Child links are *absolute*
//!   arena indices; the receiver re-interns each node and verifies it lands
//!   at the expected absolute index, which proves its cached table is a
//!   node-for-node mirror of the encoder's (or fails the update cleanly).
//!
//! All integers are little-endian; strings and tables are `u32`
//! length-prefixed.

use crate::action::{Action, ActionSeq, Leaf};
use crate::pool::{Node, NodeId, Pool};
use crate::test::{Test, VarOrder};
use snap_lang::{Expr, Field, StateVar, Value};
use std::fmt;

const MAGIC: &[u8; 4] = b"XFDD";
/// Version 2 added the payload-kind byte (full vs delta).
const VERSION: u16 = 2;

/// Header byte of a full, self-contained diagram payload.
const KIND_FULL: u8 = 0;
/// Header byte of a node-table-suffix delta payload.
const KIND_DELTA: u8 = 1;

fn kind_name(kind: u8) -> &'static str {
    match kind {
        KIND_FULL => "full",
        KIND_DELTA => "delta",
        _ => "unknown",
    }
}

/// Errors surfaced while decoding a wire-format diagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the encoded structure did.
    Truncated,
    /// The buffer does not start with the `XFDD` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// An unknown enum tag was encountered.
    BadTag(&'static str, u8),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// The payload is of the other kind (a delta handed to a full-diagram
    /// decoder, or vice versa).
    WrongKind {
        /// The kind the decoder expected.
        expected: u8,
        /// The kind byte found in the header.
        found: u8,
    },
    /// A delta was cut at a different base length than the receiving pool
    /// holds: the receiver is ahead, behind, or was never synced.
    DeltaBaseMismatch {
        /// The node-table length the delta was encoded against.
        expected: u32,
        /// The receiving pool's actual node-table length.
        actual: u32,
    },
    /// Re-interning a delta node did not land at its expected absolute
    /// index: the receiving pool is not a node-for-node mirror of the
    /// encoder's base (it interned different nodes, or the same nodes in a
    /// different order). The receiver needs a full resync.
    DeltaNotCanonical {
        /// Absolute index the node should have occupied.
        node: u32,
    },
    /// A node referenced a child at or after itself (the child-first
    /// invariant is violated, so the table cannot be re-interned).
    BadNodeRef {
        /// Local (renumbered) id of the offending node.
        node: u32,
        /// The child id it referenced.
        child: u32,
    },
    /// The root id is outside the node table.
    BadRoot(u32),
    /// The encoded diagram was built under a different variable order than
    /// the target pool composes with.
    OrderMismatch,
    /// The buffer has trailing bytes after the encoded diagram.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer ends inside an encoded structure"),
            WireError::BadMagic => write!(f, "missing XFDD magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag(what, t) => write!(f, "unknown {what} tag {t}"),
            WireError::BadUtf8 => write!(f, "string is not valid UTF-8"),
            WireError::WrongKind { expected, found } => write!(
                f,
                "expected a {} payload, found a {} payload (kind byte {found})",
                kind_name(*expected),
                kind_name(*found)
            ),
            WireError::DeltaBaseMismatch { expected, actual } => write!(
                f,
                "delta encoded against a {expected}-node base, pool holds {actual} nodes"
            ),
            WireError::DeltaNotCanonical { node } => write!(
                f,
                "delta node did not re-intern at absolute index {node}; the pool is not a \
                 mirror of the encoder's base"
            ),
            WireError::BadNodeRef { node, child } => {
                write!(f, "node {node} references non-preceding child {child}")
            }
            WireError::BadRoot(r) => write!(f, "root id {r} outside the node table"),
            WireError::OrderMismatch => {
                write!(f, "diagram was encoded under a different variable order")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the diagram"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encode the diagram rooted at `root` as a self-contained byte buffer:
/// variable order, reachable-node table (children before parents) and root.
pub fn encode_diagram(pool: &Pool, root: NodeId) -> Vec<u8> {
    let mut w = encode_header(KIND_FULL, pool.order());

    // Reachable nodes in ascending arena order: the arena's child-first
    // invariant carries over to the dense renumbering.
    let mut ids = pool.reachable(root);
    ids.sort_unstable();
    let mut local = vec![u32::MAX; pool.len()];
    for (i, id) in ids.iter().enumerate() {
        local[id.index()] = i as u32;
    }

    put_u32(&mut w, ids.len() as u32);
    for id in &ids {
        match pool.node(*id) {
            Node::Leaf(leaf) => {
                w.push(0);
                put_leaf(&mut w, leaf);
            }
            Node::Branch { test, tru, fls } => {
                w.push(1);
                put_test(&mut w, test);
                put_u32(&mut w, local[tru.index()]);
                put_u32(&mut w, local[fls.index()]);
            }
        }
    }
    put_u32(&mut w, local[root.index()]);
    w
}

/// Decode a full diagram into a fresh pool created with the encoded
/// variable order. Returns the pool and the root id.
pub fn decode_diagram(bytes: &[u8]) -> Result<(Pool, NodeId), WireError> {
    let mut r = Reader::new(bytes);
    let order = decode_header(&mut r, KIND_FULL)?;
    let mut pool = Pool::new(order);
    let root = decode_body(&mut r, &mut pool)?;
    Ok((pool, root))
}

/// Decode a full diagram into an existing pool, re-interning every node (a
/// cross-pool import over the wire). The pool must compose under the same
/// variable order the diagram was encoded with.
pub fn decode_into(bytes: &[u8], pool: &mut Pool) -> Result<NodeId, WireError> {
    let mut r = Reader::new(bytes);
    let order = decode_header(&mut r, KIND_FULL)?;
    if &order != pool.order() {
        return Err(WireError::OrderMismatch);
    }
    decode_body(&mut r, pool)
}

/// Encode the suffix of `pool`'s node table past `base_len`, plus the root,
/// as a delta payload: what a controller ships to a switch whose cached pool
/// mirrors the first `base_len` nodes. Child references are absolute arena
/// indices (they may point into the base region). With `base_len` equal to a
/// fresh pool's length, the payload carries the *entire* table — the full
/// resync that (unlike [`encode_diagram`]'s reachable-only renumbering)
/// reproduces the distribution pool's exact node numbering, which every
/// mirror must share for flat packet tags to be portable across switches.
///
/// The root may lie anywhere in the table, including the base region: an
/// update that rolls back to an already-shipped program is a delta with zero
/// nodes and a new root.
pub fn encode_delta(pool: &Pool, base_len: usize, root: NodeId) -> Vec<u8> {
    assert!(
        base_len <= pool.len(),
        "delta base {base_len} past the pool's {} nodes",
        pool.len()
    );
    assert!(root.index() < pool.len(), "delta root outside the pool");
    let mut w = encode_header(KIND_DELTA, pool.order());
    put_u32(&mut w, base_len as u32);
    put_u32(&mut w, (pool.len() - base_len) as u32);
    for i in base_len..pool.len() {
        match pool.node(NodeId(i as u32)) {
            Node::Leaf(leaf) => {
                w.push(0);
                put_leaf(&mut w, leaf);
            }
            Node::Branch { test, tru, fls } => {
                w.push(1);
                put_test(&mut w, test);
                put_u32(&mut w, tru.0);
                put_u32(&mut w, fls.0);
            }
        }
    }
    put_u32(&mut w, root.0);
    w
}

/// Apply a delta to a mirrored pool: re-intern every suffix node, verifying
/// each lands at its expected absolute index, and return the new root.
///
/// Errors are total — [`WireError::DeltaBaseMismatch`] when the pool is not
/// at the delta's base length, [`WireError::DeltaNotCanonical`] when the
/// pool's contents diverge from the encoder's base (either way the receiver
/// needs a full resync), plus the usual malformed-payload errors. On error
/// the pool may retain some re-interned suffix nodes; they are ordinary
/// interned nodes and keep the pool structurally valid, but the mirror must
/// be considered out of sync.
pub fn apply_delta(bytes: &[u8], pool: &mut Pool) -> Result<NodeId, WireError> {
    let mut r = Reader::new(bytes);
    let order = decode_header(&mut r, KIND_DELTA)?;
    if &order != pool.order() {
        return Err(WireError::OrderMismatch);
    }
    apply_delta_body(&mut r, pool)
}

/// Decode a delta into a fresh pool created with the encoded variable order
/// — how a switch bootstraps (or resyncs) its mirror from a full-table delta
/// (one encoded at a fresh pool's base length). Returns the pool and root.
pub fn decode_delta_fresh(bytes: &[u8]) -> Result<(Pool, NodeId), WireError> {
    let mut r = Reader::new(bytes);
    let order = decode_header(&mut r, KIND_DELTA)?;
    let mut pool = Pool::new(order);
    let root = apply_delta_body(&mut r, &mut pool)?;
    Ok((pool, root))
}

fn apply_delta_body(r: &mut Reader<'_>, pool: &mut Pool) -> Result<NodeId, WireError> {
    let base = r.u32()?;
    if base as usize != pool.len() {
        return Err(WireError::DeltaBaseMismatch {
            expected: base,
            actual: pool.len() as u32,
        });
    }
    let count = r.u32()?;
    for i in 0..count {
        let absolute = base.checked_add(i).ok_or(WireError::Truncated)?;
        let tag = r.u8()?;
        let id = match tag {
            0 => {
                let leaf = get_leaf(r)?;
                pool.leaf(leaf)
            }
            1 => {
                let test = get_test(r)?;
                let tru = r.u32()?;
                let fls = r.u32()?;
                for child in [tru, fls] {
                    if child >= absolute {
                        return Err(WireError::BadNodeRef {
                            node: absolute,
                            child,
                        });
                    }
                }
                pool.branch(test, NodeId(tru), NodeId(fls))
            }
            t => return Err(WireError::BadTag("node", t)),
        };
        // The encoder's suffix nodes are new to its arena by construction
        // (an arena never holds duplicates), so on a faithful mirror each
        // re-interning appends at exactly the absolute index. Anything else
        // proves the mirror diverged.
        if id.index() != absolute as usize {
            return Err(WireError::DeltaNotCanonical { node: absolute });
        }
    }
    let root = r.u32()?;
    if root as usize >= pool.len() {
        return Err(WireError::BadRoot(root));
    }
    if !r.is_empty() {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(NodeId(root))
}

fn encode_header(kind: u8, order: &VarOrder) -> Vec<u8> {
    let mut w = Vec::new();
    w.extend_from_slice(MAGIC);
    put_u16(&mut w, VERSION);
    w.push(kind);
    let vars = order.variables();
    put_u32(&mut w, vars.len() as u32);
    for v in &vars {
        put_str(&mut w, v.name());
    }
    w
}

fn decode_header(r: &mut Reader<'_>, expected_kind: u8) -> Result<VarOrder, WireError> {
    if r.take(4)? != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = r.u8()?;
    if kind != KIND_FULL && kind != KIND_DELTA {
        return Err(WireError::BadTag("payload kind", kind));
    }
    if kind != expected_kind {
        return Err(WireError::WrongKind {
            expected: expected_kind,
            found: kind,
        });
    }
    let n = r.u32()? as usize;
    let mut vars = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        vars.push(StateVar::new(r.str()?));
    }
    Ok(VarOrder::new(vars))
}

fn decode_body(r: &mut Reader<'_>, pool: &mut Pool) -> Result<NodeId, WireError> {
    let count = r.u32()?;
    let mut map: Vec<NodeId> = Vec::with_capacity((count as usize).min(1 << 20));
    for i in 0..count {
        let tag = r.u8()?;
        let id = match tag {
            0 => {
                let leaf = get_leaf(r)?;
                pool.leaf(leaf)
            }
            1 => {
                let test = get_test(r)?;
                let tru = r.u32()?;
                let fls = r.u32()?;
                let resolve = |child: u32| {
                    if child >= i {
                        Err(WireError::BadNodeRef { node: i, child })
                    } else {
                        Ok(map[child as usize])
                    }
                };
                let (t, f) = (resolve(tru)?, resolve(fls)?);
                pool.branch(test, t, f)
            }
            t => return Err(WireError::BadTag("node", t)),
        };
        map.push(id);
    }
    let root = r.u32()?;
    let root = *map.get(root as usize).ok_or(WireError::BadRoot(root))?;
    if !r.is_empty() {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(root)
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

fn put_u16(w: &mut Vec<u8>, v: u16) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(w: &mut Vec<u8>, v: u32) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(w: &mut Vec<u8>, v: i64) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_str(w: &mut Vec<u8>, s: &str) {
    put_u32(w, s.len() as u32);
    w.extend_from_slice(s.as_bytes());
}

fn put_value(w: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            w.push(0);
            put_i64(w, *i);
        }
        Value::Bool(b) => {
            w.push(1);
            w.push(u8::from(*b));
        }
        Value::Ip(ip) => {
            w.push(2);
            put_u32(w, ip.0);
        }
        Value::Prefix(p) => {
            w.push(3);
            put_u32(w, p.addr.0);
            w.push(p.len);
        }
        Value::Str(s) => {
            w.push(4);
            put_str(w, s);
        }
        Value::Symbol(s) => {
            w.push(5);
            put_str(w, s);
        }
        Value::Tuple(vs) => {
            w.push(6);
            put_u32(w, vs.len() as u32);
            for v in vs {
                put_value(w, v);
            }
        }
    }
}

fn put_field(w: &mut Vec<u8>, f: &Field) {
    // Fields round-trip through their canonical surface-syntax name.
    put_str(w, f.name());
}

fn put_expr(w: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Value(v) => {
            w.push(0);
            put_value(w, v);
        }
        Expr::Field(f) => {
            w.push(1);
            put_field(w, f);
        }
        Expr::Tuple(es) => {
            w.push(2);
            put_u32(w, es.len() as u32);
            for e in es {
                put_expr(w, e);
            }
        }
    }
}

fn put_exprs(w: &mut Vec<u8>, es: &[Expr]) {
    put_u32(w, es.len() as u32);
    for e in es {
        put_expr(w, e);
    }
}

fn put_test(w: &mut Vec<u8>, t: &Test) {
    match t {
        Test::FieldValue(f, v) => {
            w.push(0);
            put_field(w, f);
            put_value(w, v);
        }
        Test::FieldField(a, b) => {
            w.push(1);
            put_field(w, a);
            put_field(w, b);
        }
        Test::State { var, index, value } => {
            w.push(2);
            put_str(w, var.name());
            put_exprs(w, index);
            put_expr(w, value);
        }
    }
}

fn put_action(w: &mut Vec<u8>, a: &Action) {
    match a {
        Action::Modify(f, v) => {
            w.push(0);
            put_field(w, f);
            put_value(w, v);
        }
        Action::StateSet { var, index, value } => {
            w.push(1);
            put_str(w, var.name());
            put_exprs(w, index);
            put_expr(w, value);
        }
        Action::StateIncr { var, index } => {
            w.push(2);
            put_str(w, var.name());
            put_exprs(w, index);
        }
        Action::StateDecr { var, index } => {
            w.push(3);
            put_str(w, var.name());
            put_exprs(w, index);
        }
    }
}

fn put_leaf(w: &mut Vec<u8>, leaf: &Leaf) {
    put_u32(w, leaf.0.len() as u32);
    for seq in &leaf.0 {
        w.push(u8::from(seq.drops));
        put_u32(w, seq.actions.len() as u32);
        for a in &seq.actions {
            put_action(w, a);
        }
    }
}

// ---------------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Truncated)?;
        let slice = self.bytes.get(self.at..end).ok_or(WireError::Truncated)?;
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn is_empty(&self) -> bool {
        self.at == self.bytes.len()
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }
}

fn get_value(r: &mut Reader<'_>) -> Result<Value, WireError> {
    match r.u8()? {
        0 => Ok(Value::Int(r.i64()?)),
        1 => Ok(Value::Bool(r.bool()?)),
        2 => Ok(Value::Ip(snap_lang::Ipv4(r.u32()?))),
        3 => {
            let addr = snap_lang::Ipv4(r.u32()?);
            let len = r.u8()?;
            if len > 32 {
                return Err(WireError::BadTag("prefix length", len));
            }
            Ok(Value::Prefix(snap_lang::Prefix::new(addr, len)))
        }
        4 => Ok(Value::Str(r.str()?)),
        5 => Ok(Value::Symbol(r.str()?)),
        6 => {
            let n = r.u32()? as usize;
            let mut vs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                vs.push(get_value(r)?);
            }
            Ok(Value::Tuple(vs))
        }
        t => Err(WireError::BadTag("value", t)),
    }
}

fn get_field(r: &mut Reader<'_>) -> Result<Field, WireError> {
    Ok(Field::from_name(&r.str()?))
}

fn get_expr(r: &mut Reader<'_>) -> Result<Expr, WireError> {
    match r.u8()? {
        0 => Ok(Expr::Value(get_value(r)?)),
        1 => Ok(Expr::Field(get_field(r)?)),
        2 => {
            let n = r.u32()? as usize;
            let mut es = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                es.push(get_expr(r)?);
            }
            Ok(Expr::Tuple(es))
        }
        t => Err(WireError::BadTag("expr", t)),
    }
}

fn get_exprs(r: &mut Reader<'_>) -> Result<Vec<Expr>, WireError> {
    let n = r.u32()? as usize;
    let mut es = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        es.push(get_expr(r)?);
    }
    Ok(es)
}

fn get_test(r: &mut Reader<'_>) -> Result<Test, WireError> {
    match r.u8()? {
        0 => Ok(Test::FieldValue(get_field(r)?, get_value(r)?)),
        1 => Ok(Test::FieldField(get_field(r)?, get_field(r)?)),
        2 => Ok(Test::State {
            var: StateVar::new(r.str()?),
            index: get_exprs(r)?,
            value: get_expr(r)?,
        }),
        t => Err(WireError::BadTag("test", t)),
    }
}

fn get_action(r: &mut Reader<'_>) -> Result<Action, WireError> {
    match r.u8()? {
        0 => Ok(Action::Modify(get_field(r)?, get_value(r)?)),
        1 => Ok(Action::StateSet {
            var: StateVar::new(r.str()?),
            index: get_exprs(r)?,
            value: get_expr(r)?,
        }),
        2 => Ok(Action::StateIncr {
            var: StateVar::new(r.str()?),
            index: get_exprs(r)?,
        }),
        3 => Ok(Action::StateDecr {
            var: StateVar::new(r.str()?),
            index: get_exprs(r)?,
        }),
        t => Err(WireError::BadTag("action", t)),
    }
}

fn get_leaf(r: &mut Reader<'_>) -> Result<Leaf, WireError> {
    let n = r.u32()? as usize;
    let mut leaf = Leaf::drop();
    for _ in 0..n {
        let drops = r.bool()?;
        let count = r.u32()? as usize;
        let mut actions = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            actions.push(get_action(r)?);
        }
        let mut seq = ActionSeq::from_actions(actions);
        if drops {
            seq = seq.with_drop();
        }
        leaf.insert(seq);
    }
    Ok(leaf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::to_xfdd;
    use snap_lang::builder::*;
    use snap_lang::{Packet, Policy, Store};
    use snap_xfdd_test_policies::*;

    // A couple of representative policies exercising every encoded shape:
    // all three test kinds, all four actions, tuples, prefixes, symbols.
    mod snap_xfdd_test_policies {
        use snap_lang::builder::*;
        use snap_lang::{Expr, Field, Policy, Value};

        pub fn stateful_policy() -> Policy {
            ite(
                test_prefix(Field::DstIp, 10, 0, 6, 0, 24)
                    .and(test(Field::SrcPort, Value::Int(53))),
                Policy::seq_all(vec![
                    state_set(
                        "orphan",
                        vec![field(Field::DstIp), field(Field::DnsRdata)],
                        Value::Bool(true),
                    ),
                    state_incr("susp", vec![field(Field::DstIp)]),
                    modify(Field::OutPort, Value::Int(6)),
                ]),
                ite(
                    state_test(
                        "mode",
                        vec![Expr::Tuple(vec![field(Field::SrcIp), int(1)])],
                        Expr::Value(Value::sym("ESTABLISHED")),
                    ),
                    state_decr("susp", vec![field(Field::SrcIp)]),
                    modify(Field::Content, Value::str("quarantine")),
                ),
            )
        }
    }

    #[test]
    fn roundtrip_through_a_fresh_pool() {
        let policy = stateful_policy();
        let deps = crate::deps::StateDependencies::analyze(&policy);
        let mut pool = Pool::new(deps.var_order());
        let root = to_xfdd(&policy, &mut pool).unwrap();

        let bytes = encode_diagram(&pool, root);
        let (decoded_pool, decoded_root) = decode_diagram(&bytes).unwrap();

        assert_eq!(decoded_pool.order(), pool.order());
        assert_eq!(decoded_pool.size(decoded_root), pool.size(root));
        assert_eq!(decoded_pool.debug(decoded_root), pool.debug(root));

        let store = Store::new();
        let pkt = Packet::new()
            .with(snap_lang::Field::DstIp, Value::ip(10, 0, 6, 9))
            .with(snap_lang::Field::SrcPort, 53)
            .with(snap_lang::Field::DnsRdata, Value::ip(1, 2, 3, 4));
        assert_eq!(
            decoded_pool.evaluate(decoded_root, &pkt, &store).unwrap(),
            pool.evaluate(root, &pkt, &store).unwrap()
        );
    }

    #[test]
    fn decode_into_reuses_existing_structure() {
        let policy = stateful_policy();
        let deps = crate::deps::StateDependencies::analyze(&policy);
        let mut pool = Pool::new(deps.var_order());
        let root = to_xfdd(&policy, &mut pool).unwrap();
        let bytes = encode_diagram(&pool, root);

        // Decoding back into the *same* pool re-interns onto existing ids
        // without growing the arena.
        let len = pool.len();
        let again = decode_into(&bytes, &mut pool).unwrap();
        assert_eq!(again, root);
        assert_eq!(pool.len(), len);

        // Decoding into a different, non-empty pool with the same order
        // shares whatever already exists there.
        let mut other = Pool::new(deps.var_order());
        let partial = to_xfdd(
            &modify(snap_lang::Field::OutPort, Value::Int(6)),
            &mut other,
        );
        partial.unwrap();
        let imported = decode_into(&bytes, &mut other).unwrap();
        assert_eq!(other.debug(imported), pool.debug(root));
    }

    #[test]
    fn decode_rejects_mismatched_variable_order() {
        let policy = stateful_policy();
        let deps = crate::deps::StateDependencies::analyze(&policy);
        let mut pool = Pool::new(deps.var_order());
        let root = to_xfdd(&policy, &mut pool).unwrap();
        let bytes = encode_diagram(&pool, root);

        let mut wrong = Pool::new(crate::test::VarOrder::new(vec![snap_lang::StateVar::new(
            "unrelated",
        )]));
        assert_eq!(
            decode_into(&bytes, &mut wrong),
            Err(WireError::OrderMismatch)
        );
    }

    #[test]
    fn delta_shipping_keeps_a_mirror_in_lockstep() {
        // Controller side: an append-only distribution pool, two program
        // versions imported in sequence.
        let policy_v1 = stateful_policy();
        let policy_v2 = ite(
            test(Field::SrcPort, Value::Int(80)),
            drop(),
            stateful_policy(),
        );
        let deps = crate::deps::StateDependencies::analyze(&policy_v1);
        let mut dist = Pool::new(deps.var_order());
        let root1 = to_xfdd(&policy_v1, &mut dist).unwrap();
        // Garbage from composition intermediates is fine: the mirror mirrors
        // the whole table, reachable or not.
        let fresh_len = Pool::new(deps.var_order()).len();

        // Switch side: bootstrap from a full-table delta.
        let boot = encode_delta(&dist, fresh_len, root1);
        let (mut mirror, mroot1) = decode_delta_fresh(&boot).unwrap();
        assert_eq!(mirror.len(), dist.len());
        assert_eq!(mroot1, root1);
        assert_eq!(mirror.debug(mroot1), dist.debug(root1));

        // Second version: ship only the suffix.
        let base = dist.len();
        let root2 = to_xfdd(&policy_v2, &mut dist).unwrap();
        let delta = encode_delta(&dist, base, root2);
        let full = encode_delta(&dist, fresh_len, root2);
        assert!(delta.len() < full.len(), "suffix not smaller than table");
        let mroot2 = apply_delta(&delta, &mut mirror).unwrap();
        assert_eq!(mirror.len(), dist.len());
        assert_eq!(mroot2, root2);
        assert_eq!(mirror.debug(mroot2), dist.debug(root2));

        // Rolling back to v1 is a zero-node delta with an old root.
        let rollback = encode_delta(&dist, dist.len(), root1);
        let len = mirror.len();
        let mroot = apply_delta(&rollback, &mut mirror).unwrap();
        assert_eq!(mroot, root1);
        assert_eq!(mirror.len(), len);
    }

    #[test]
    fn payload_kinds_never_cross_decode() {
        let policy = stateful_policy();
        let deps = crate::deps::StateDependencies::analyze(&policy);
        let mut pool = Pool::new(deps.var_order());
        let root = to_xfdd(&policy, &mut pool).unwrap();
        let fresh_len = Pool::new(deps.var_order()).len();

        let full = encode_diagram(&pool, root);
        let delta = encode_delta(&pool, fresh_len, root);

        // A delta handed to the full decoders errors out, and vice versa.
        assert!(matches!(
            decode_diagram(&delta),
            Err(WireError::WrongKind { .. })
        ));
        let mut target = Pool::new(deps.var_order());
        assert!(matches!(
            decode_into(&delta, &mut target),
            Err(WireError::WrongKind { .. })
        ));
        assert!(matches!(
            apply_delta(&full, &mut target),
            Err(WireError::WrongKind { .. })
        ));
        assert!(matches!(
            decode_delta_fresh(&full),
            Err(WireError::WrongKind { .. })
        ));
    }

    #[test]
    fn delta_against_the_wrong_base_is_rejected() {
        let policy = stateful_policy();
        let deps = crate::deps::StateDependencies::analyze(&policy);
        let mut pool = Pool::new(deps.var_order());
        let root = to_xfdd(&policy, &mut pool).unwrap();
        let fresh_len = Pool::new(deps.var_order()).len();
        let delta = encode_delta(&pool, fresh_len, root);

        // A pool that is already past the base (it holds the program) ...
        assert!(matches!(
            apply_delta(&delta, &mut pool.clone()),
            Err(WireError::DeltaBaseMismatch { .. })
        ));

        // ... and a same-length pool with *different* contents: the first
        // re-interned node collapses onto an existing id instead of
        // appending, which is exactly the divergence the check catches.
        let mut diverged = Pool::new(deps.var_order());
        to_xfdd(
            &ite(
                test_prefix(Field::DstIp, 10, 0, 6, 0, 24)
                    .and(test(Field::SrcPort, Value::Int(53))),
                Policy::seq_all(vec![
                    state_set(
                        "orphan",
                        vec![field(Field::DstIp), field(Field::DnsRdata)],
                        Value::Bool(true),
                    ),
                    state_incr("susp", vec![field(Field::DstIp)]),
                    modify(Field::OutPort, Value::Int(6)),
                ]),
                drop(),
            ),
            &mut diverged,
        )
        .unwrap();
        let at_base = encode_delta(&pool, diverged.len().min(pool.len()), root);
        let err = apply_delta(&at_base, &mut diverged).unwrap_err();
        assert!(
            matches!(
                err,
                WireError::DeltaNotCanonical { .. }
                    | WireError::DeltaBaseMismatch { .. }
                    | WireError::BadNodeRef { .. }
            ),
            "diverged mirror accepted a delta: {err}"
        );
    }

    #[test]
    fn truncated_and_corrupt_buffers_are_rejected() {
        let mut pool = Pool::new(crate::test::VarOrder::empty());
        let root = to_xfdd(
            &ite(
                test(snap_lang::Field::SrcPort, Value::Int(53)),
                modify(snap_lang::Field::OutPort, Value::Int(6)),
                drop(),
            ),
            &mut pool,
        )
        .unwrap();
        let bytes = encode_diagram(&pool, root);

        assert_eq!(decode_diagram(&[]).unwrap_err(), WireError::Truncated);
        assert_eq!(
            decode_diagram(b"NOPE____").unwrap_err(),
            WireError::BadMagic
        );
        for cut in [5, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_diagram(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.extend_from_slice(b"junk");
        assert_eq!(
            decode_diagram(&trailing).unwrap_err(),
            WireError::TrailingBytes(4)
        );
    }
}
