//! A wire format for frozen diagrams: length-prefixed binary encoding of a
//! pool's node table plus a root id, with no serde dependency.
//!
//! Controller→switch distribution needs diagrams to cross process
//! boundaries. The arena already stores nodes in a flat table whose child
//! links always point at smaller indices, so the encoding is direct: a
//! header (magic, version, variable order), the reachable nodes renumbered
//! densely in index order, and the root's local id. The decoder *re-interns*
//! every node through the target pool's constructors, so decoding is also a
//! cross-pool import: structurally equal nodes collapse onto existing ids,
//! and decoding into a non-empty pool shares everything it can.
//!
//! All integers are little-endian; strings and tables are `u32`
//! length-prefixed.

use crate::action::{Action, ActionSeq, Leaf};
use crate::pool::{Node, NodeId, Pool};
use crate::test::{Test, VarOrder};
use snap_lang::{Expr, Field, StateVar, Value};
use std::fmt;

const MAGIC: &[u8; 4] = b"XFDD";
const VERSION: u16 = 1;

/// Errors surfaced while decoding a wire-format diagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the encoded structure did.
    Truncated,
    /// The buffer does not start with the `XFDD` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// An unknown enum tag was encountered.
    BadTag(&'static str, u8),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A node referenced a child at or after itself (the child-first
    /// invariant is violated, so the table cannot be re-interned).
    BadNodeRef {
        /// Local (renumbered) id of the offending node.
        node: u32,
        /// The child id it referenced.
        child: u32,
    },
    /// The root id is outside the node table.
    BadRoot(u32),
    /// The encoded diagram was built under a different variable order than
    /// the target pool composes with.
    OrderMismatch,
    /// The buffer has trailing bytes after the encoded diagram.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer ends inside an encoded structure"),
            WireError::BadMagic => write!(f, "missing XFDD magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag(what, t) => write!(f, "unknown {what} tag {t}"),
            WireError::BadUtf8 => write!(f, "string is not valid UTF-8"),
            WireError::BadNodeRef { node, child } => {
                write!(f, "node {node} references non-preceding child {child}")
            }
            WireError::BadRoot(r) => write!(f, "root id {r} outside the node table"),
            WireError::OrderMismatch => {
                write!(f, "diagram was encoded under a different variable order")
            }
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the diagram"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encode the diagram rooted at `root` as a self-contained byte buffer:
/// variable order, reachable-node table (children before parents) and root.
pub fn encode_diagram(pool: &Pool, root: NodeId) -> Vec<u8> {
    let mut w = Vec::new();
    w.extend_from_slice(MAGIC);
    put_u16(&mut w, VERSION);

    let vars = pool.order().variables();
    put_u32(&mut w, vars.len() as u32);
    for v in &vars {
        put_str(&mut w, v.name());
    }

    // Reachable nodes in ascending arena order: the arena's child-first
    // invariant carries over to the dense renumbering.
    let mut ids = pool.reachable(root);
    ids.sort_unstable();
    let mut local = vec![u32::MAX; pool.len()];
    for (i, id) in ids.iter().enumerate() {
        local[id.index()] = i as u32;
    }

    put_u32(&mut w, ids.len() as u32);
    for id in &ids {
        match pool.node(*id) {
            Node::Leaf(leaf) => {
                w.push(0);
                put_leaf(&mut w, leaf);
            }
            Node::Branch { test, tru, fls } => {
                w.push(1);
                put_test(&mut w, test);
                put_u32(&mut w, local[tru.index()]);
                put_u32(&mut w, local[fls.index()]);
            }
        }
    }
    put_u32(&mut w, local[root.index()]);
    w
}

/// Decode a diagram into a fresh pool created with the encoded variable
/// order. Returns the pool and the root id.
pub fn decode_diagram(bytes: &[u8]) -> Result<(Pool, NodeId), WireError> {
    let mut r = Reader::new(bytes);
    let order = decode_header(&mut r)?;
    let mut pool = Pool::new(order);
    let root = decode_body(&mut r, &mut pool)?;
    Ok((pool, root))
}

/// Decode a diagram into an existing pool, re-interning every node (a
/// cross-pool import over the wire). The pool must compose under the same
/// variable order the diagram was encoded with.
pub fn decode_into(bytes: &[u8], pool: &mut Pool) -> Result<NodeId, WireError> {
    let mut r = Reader::new(bytes);
    let order = decode_header(&mut r)?;
    if &order != pool.order() {
        return Err(WireError::OrderMismatch);
    }
    decode_body(&mut r, pool)
}

fn decode_header(r: &mut Reader<'_>) -> Result<VarOrder, WireError> {
    if r.take(4)? != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let n = r.u32()? as usize;
    let mut vars = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        vars.push(StateVar::new(r.str()?));
    }
    Ok(VarOrder::new(vars))
}

fn decode_body(r: &mut Reader<'_>, pool: &mut Pool) -> Result<NodeId, WireError> {
    let count = r.u32()?;
    let mut map: Vec<NodeId> = Vec::with_capacity((count as usize).min(1 << 20));
    for i in 0..count {
        let tag = r.u8()?;
        let id = match tag {
            0 => {
                let leaf = get_leaf(r)?;
                pool.leaf(leaf)
            }
            1 => {
                let test = get_test(r)?;
                let tru = r.u32()?;
                let fls = r.u32()?;
                let resolve = |child: u32| {
                    if child >= i {
                        Err(WireError::BadNodeRef { node: i, child })
                    } else {
                        Ok(map[child as usize])
                    }
                };
                let (t, f) = (resolve(tru)?, resolve(fls)?);
                pool.branch(test, t, f)
            }
            t => return Err(WireError::BadTag("node", t)),
        };
        map.push(id);
    }
    let root = r.u32()?;
    let root = *map.get(root as usize).ok_or(WireError::BadRoot(root))?;
    if !r.is_empty() {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(root)
}

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

fn put_u16(w: &mut Vec<u8>, v: u16) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(w: &mut Vec<u8>, v: u32) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(w: &mut Vec<u8>, v: i64) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_str(w: &mut Vec<u8>, s: &str) {
    put_u32(w, s.len() as u32);
    w.extend_from_slice(s.as_bytes());
}

fn put_value(w: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            w.push(0);
            put_i64(w, *i);
        }
        Value::Bool(b) => {
            w.push(1);
            w.push(u8::from(*b));
        }
        Value::Ip(ip) => {
            w.push(2);
            put_u32(w, ip.0);
        }
        Value::Prefix(p) => {
            w.push(3);
            put_u32(w, p.addr.0);
            w.push(p.len);
        }
        Value::Str(s) => {
            w.push(4);
            put_str(w, s);
        }
        Value::Symbol(s) => {
            w.push(5);
            put_str(w, s);
        }
        Value::Tuple(vs) => {
            w.push(6);
            put_u32(w, vs.len() as u32);
            for v in vs {
                put_value(w, v);
            }
        }
    }
}

fn put_field(w: &mut Vec<u8>, f: &Field) {
    // Fields round-trip through their canonical surface-syntax name.
    put_str(w, f.name());
}

fn put_expr(w: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Value(v) => {
            w.push(0);
            put_value(w, v);
        }
        Expr::Field(f) => {
            w.push(1);
            put_field(w, f);
        }
        Expr::Tuple(es) => {
            w.push(2);
            put_u32(w, es.len() as u32);
            for e in es {
                put_expr(w, e);
            }
        }
    }
}

fn put_exprs(w: &mut Vec<u8>, es: &[Expr]) {
    put_u32(w, es.len() as u32);
    for e in es {
        put_expr(w, e);
    }
}

fn put_test(w: &mut Vec<u8>, t: &Test) {
    match t {
        Test::FieldValue(f, v) => {
            w.push(0);
            put_field(w, f);
            put_value(w, v);
        }
        Test::FieldField(a, b) => {
            w.push(1);
            put_field(w, a);
            put_field(w, b);
        }
        Test::State { var, index, value } => {
            w.push(2);
            put_str(w, var.name());
            put_exprs(w, index);
            put_expr(w, value);
        }
    }
}

fn put_action(w: &mut Vec<u8>, a: &Action) {
    match a {
        Action::Modify(f, v) => {
            w.push(0);
            put_field(w, f);
            put_value(w, v);
        }
        Action::StateSet { var, index, value } => {
            w.push(1);
            put_str(w, var.name());
            put_exprs(w, index);
            put_expr(w, value);
        }
        Action::StateIncr { var, index } => {
            w.push(2);
            put_str(w, var.name());
            put_exprs(w, index);
        }
        Action::StateDecr { var, index } => {
            w.push(3);
            put_str(w, var.name());
            put_exprs(w, index);
        }
    }
}

fn put_leaf(w: &mut Vec<u8>, leaf: &Leaf) {
    put_u32(w, leaf.0.len() as u32);
    for seq in &leaf.0 {
        w.push(u8::from(seq.drops));
        put_u32(w, seq.actions.len() as u32);
        for a in &seq.actions {
            put_action(w, a);
        }
    }
}

// ---------------------------------------------------------------------------
// Readers
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Truncated)?;
        let slice = self.bytes.get(self.at..end).ok_or(WireError::Truncated)?;
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn is_empty(&self) -> bool {
        self.at == self.bytes.len()
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }
}

fn get_value(r: &mut Reader<'_>) -> Result<Value, WireError> {
    match r.u8()? {
        0 => Ok(Value::Int(r.i64()?)),
        1 => Ok(Value::Bool(r.bool()?)),
        2 => Ok(Value::Ip(snap_lang::Ipv4(r.u32()?))),
        3 => {
            let addr = snap_lang::Ipv4(r.u32()?);
            let len = r.u8()?;
            if len > 32 {
                return Err(WireError::BadTag("prefix length", len));
            }
            Ok(Value::Prefix(snap_lang::Prefix::new(addr, len)))
        }
        4 => Ok(Value::Str(r.str()?)),
        5 => Ok(Value::Symbol(r.str()?)),
        6 => {
            let n = r.u32()? as usize;
            let mut vs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                vs.push(get_value(r)?);
            }
            Ok(Value::Tuple(vs))
        }
        t => Err(WireError::BadTag("value", t)),
    }
}

fn get_field(r: &mut Reader<'_>) -> Result<Field, WireError> {
    Ok(Field::from_name(&r.str()?))
}

fn get_expr(r: &mut Reader<'_>) -> Result<Expr, WireError> {
    match r.u8()? {
        0 => Ok(Expr::Value(get_value(r)?)),
        1 => Ok(Expr::Field(get_field(r)?)),
        2 => {
            let n = r.u32()? as usize;
            let mut es = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                es.push(get_expr(r)?);
            }
            Ok(Expr::Tuple(es))
        }
        t => Err(WireError::BadTag("expr", t)),
    }
}

fn get_exprs(r: &mut Reader<'_>) -> Result<Vec<Expr>, WireError> {
    let n = r.u32()? as usize;
    let mut es = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        es.push(get_expr(r)?);
    }
    Ok(es)
}

fn get_test(r: &mut Reader<'_>) -> Result<Test, WireError> {
    match r.u8()? {
        0 => Ok(Test::FieldValue(get_field(r)?, get_value(r)?)),
        1 => Ok(Test::FieldField(get_field(r)?, get_field(r)?)),
        2 => Ok(Test::State {
            var: StateVar::new(r.str()?),
            index: get_exprs(r)?,
            value: get_expr(r)?,
        }),
        t => Err(WireError::BadTag("test", t)),
    }
}

fn get_action(r: &mut Reader<'_>) -> Result<Action, WireError> {
    match r.u8()? {
        0 => Ok(Action::Modify(get_field(r)?, get_value(r)?)),
        1 => Ok(Action::StateSet {
            var: StateVar::new(r.str()?),
            index: get_exprs(r)?,
            value: get_expr(r)?,
        }),
        2 => Ok(Action::StateIncr {
            var: StateVar::new(r.str()?),
            index: get_exprs(r)?,
        }),
        3 => Ok(Action::StateDecr {
            var: StateVar::new(r.str()?),
            index: get_exprs(r)?,
        }),
        t => Err(WireError::BadTag("action", t)),
    }
}

fn get_leaf(r: &mut Reader<'_>) -> Result<Leaf, WireError> {
    let n = r.u32()? as usize;
    let mut leaf = Leaf::drop();
    for _ in 0..n {
        let drops = r.bool()?;
        let count = r.u32()? as usize;
        let mut actions = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            actions.push(get_action(r)?);
        }
        let mut seq = ActionSeq::from_actions(actions);
        if drops {
            seq = seq.with_drop();
        }
        leaf.insert(seq);
    }
    Ok(leaf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::to_xfdd;
    use snap_lang::builder::*;
    use snap_lang::{Packet, Store};
    use snap_xfdd_test_policies::*;

    // A couple of representative policies exercising every encoded shape:
    // all three test kinds, all four actions, tuples, prefixes, symbols.
    mod snap_xfdd_test_policies {
        use snap_lang::builder::*;
        use snap_lang::{Expr, Field, Policy, Value};

        pub fn stateful_policy() -> Policy {
            ite(
                test_prefix(Field::DstIp, 10, 0, 6, 0, 24)
                    .and(test(Field::SrcPort, Value::Int(53))),
                Policy::seq_all(vec![
                    state_set(
                        "orphan",
                        vec![field(Field::DstIp), field(Field::DnsRdata)],
                        Value::Bool(true),
                    ),
                    state_incr("susp", vec![field(Field::DstIp)]),
                    modify(Field::OutPort, Value::Int(6)),
                ]),
                ite(
                    state_test(
                        "mode",
                        vec![Expr::Tuple(vec![field(Field::SrcIp), int(1)])],
                        Expr::Value(Value::sym("ESTABLISHED")),
                    ),
                    state_decr("susp", vec![field(Field::SrcIp)]),
                    modify(Field::Content, Value::str("quarantine")),
                ),
            )
        }
    }

    #[test]
    fn roundtrip_through_a_fresh_pool() {
        let policy = stateful_policy();
        let deps = crate::deps::StateDependencies::analyze(&policy);
        let mut pool = Pool::new(deps.var_order());
        let root = to_xfdd(&policy, &mut pool).unwrap();

        let bytes = encode_diagram(&pool, root);
        let (decoded_pool, decoded_root) = decode_diagram(&bytes).unwrap();

        assert_eq!(decoded_pool.order(), pool.order());
        assert_eq!(decoded_pool.size(decoded_root), pool.size(root));
        assert_eq!(decoded_pool.debug(decoded_root), pool.debug(root));

        let store = Store::new();
        let pkt = Packet::new()
            .with(snap_lang::Field::DstIp, Value::ip(10, 0, 6, 9))
            .with(snap_lang::Field::SrcPort, 53)
            .with(snap_lang::Field::DnsRdata, Value::ip(1, 2, 3, 4));
        assert_eq!(
            decoded_pool.evaluate(decoded_root, &pkt, &store).unwrap(),
            pool.evaluate(root, &pkt, &store).unwrap()
        );
    }

    #[test]
    fn decode_into_reuses_existing_structure() {
        let policy = stateful_policy();
        let deps = crate::deps::StateDependencies::analyze(&policy);
        let mut pool = Pool::new(deps.var_order());
        let root = to_xfdd(&policy, &mut pool).unwrap();
        let bytes = encode_diagram(&pool, root);

        // Decoding back into the *same* pool re-interns onto existing ids
        // without growing the arena.
        let len = pool.len();
        let again = decode_into(&bytes, &mut pool).unwrap();
        assert_eq!(again, root);
        assert_eq!(pool.len(), len);

        // Decoding into a different, non-empty pool with the same order
        // shares whatever already exists there.
        let mut other = Pool::new(deps.var_order());
        let partial = to_xfdd(
            &modify(snap_lang::Field::OutPort, Value::Int(6)),
            &mut other,
        );
        partial.unwrap();
        let imported = decode_into(&bytes, &mut other).unwrap();
        assert_eq!(other.debug(imported), pool.debug(root));
    }

    #[test]
    fn decode_rejects_mismatched_variable_order() {
        let policy = stateful_policy();
        let deps = crate::deps::StateDependencies::analyze(&policy);
        let mut pool = Pool::new(deps.var_order());
        let root = to_xfdd(&policy, &mut pool).unwrap();
        let bytes = encode_diagram(&pool, root);

        let mut wrong = Pool::new(crate::test::VarOrder::new(vec![snap_lang::StateVar::new(
            "unrelated",
        )]));
        assert_eq!(
            decode_into(&bytes, &mut wrong),
            Err(WireError::OrderMismatch)
        );
    }

    #[test]
    fn truncated_and_corrupt_buffers_are_rejected() {
        let mut pool = Pool::new(crate::test::VarOrder::empty());
        let root = to_xfdd(
            &ite(
                test(snap_lang::Field::SrcPort, Value::Int(53)),
                modify(snap_lang::Field::OutPort, Value::Int(6)),
                drop(),
            ),
            &mut pool,
        )
        .unwrap();
        let bytes = encode_diagram(&pool, root);

        assert_eq!(decode_diagram(&[]).unwrap_err(), WireError::Truncated);
        assert_eq!(
            decode_diagram(b"NOPE____").unwrap_err(),
            WireError::BadMagic
        );
        for cut in [5, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_diagram(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.extend_from_slice(b"junk");
        assert_eq!(
            decode_diagram(&trailing).unwrap_err(),
            WireError::TrailingBytes(4)
        );
    }
}
