//! The hash-consed xFDD arena.
//!
//! Decision diagrams only scale through *structural sharing* (§4.2 builds
//! xFDDs precisely because of it), so diagrams are not trees but nodes in a
//! per-compilation [`Pool`]: an arena that owns every node, hands out
//! copyable [`NodeId`]s, deduplicates structurally-equal branches and leaves
//! at construction time, and memoizes the composition operators. Two
//! consequences follow:
//!
//! * structural equality of subdiagrams is id equality — `O(1)` instead of a
//!   deep tree walk — which is what makes the composition memo tables and the
//!   `branch` collapse cheap, and
//! * the ids are *stable*: they double as the paper's §4.5 packet-tag node
//!   identifiers, so the data plane executes diagrams directly by [`NodeId`]
//!   with no separate flattening pass.
//!
//! The pool is also where composition contexts (the decided-test sets of
//! Appendix E) are interned, so the union memo can be keyed on
//! `(lhs, rhs, ctx)` without hashing whole fact lists.

use crate::action::Leaf;
use crate::context::Context;
use crate::test::{Test, VarOrder};
use snap_lang::eval::{eval_expr, eval_index};
use snap_lang::{EvalError, Packet, StateVar, Store};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// Identifier of a node inside a [`Pool`]. Stable for the lifetime of the
/// pool; these are the node ids carried in the SNAP packet tag (§4.5).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index into the pool's node arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an interned composition context (see [`Context`]).
/// `CtxId::EMPTY` is the empty context.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CtxId(u32);

impl CtxId {
    /// The empty context.
    pub const EMPTY: CtxId = CtxId(0);

    /// The index into the pool's context table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn new(index: usize) -> CtxId {
        CtxId(u32::try_from(index).expect("xFDD pool context overflow"))
    }
}

/// One interned xFDD node: a leaf (set of action sequences) or a branch on a
/// test. Child links are [`NodeId`]s into the same pool.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// A leaf.
    Leaf(Leaf),
    /// A branch: `test ? tru : fls`.
    Branch {
        /// The test at this node.
        test: Test,
        /// Child taken when the test passes.
        tru: NodeId,
        /// Child taken when the test fails.
        fls: NodeId,
    },
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Leaf(l) => write!(f, "{l:?}"),
            Node::Branch { test, tru, fls } => write!(f, "({test:?} ? {tru:?} : {fls:?})"),
        }
    }
}

/// The per-compilation interner: owns all nodes of all diagrams built during
/// one compilation, plus the memo tables for the composition operators.
///
/// The pool is created with the state-variable order of the program being
/// compiled ([`VarOrder`], from dependency analysis); every composition uses
/// that order, which is what makes memoized results reusable.
#[derive(Clone, Debug, Default)]
pub struct Pool {
    pub(crate) order: VarOrder,
    pub(crate) nodes: Vec<Node>,
    pub(crate) leaf_intern: HashMap<Leaf, NodeId>,
    pub(crate) branch_intern: HashMap<(Test, NodeId, NodeId), NodeId>,
    // Interned composition contexts: ctxs[i] holds the full fact list.
    pub(crate) ctxs: Vec<Context>,
    pub(crate) ctx_intern: HashMap<(CtxId, Test, bool), CtxId>,
    // Memo tables for the composition operators.
    pub(crate) union_memo: HashMap<(NodeId, NodeId, CtxId), NodeId>,
    pub(crate) seq_memo: HashMap<(NodeId, NodeId), Result<NodeId, crate::CompileError>>,
    pub(crate) negate_memo: HashMap<NodeId, NodeId>,
    pub(crate) restrict_memo: HashMap<(NodeId, Test, bool), NodeId>,
}

impl Pool {
    /// A fresh pool for diagrams composed under the given state-variable
    /// order. The `{drop}` and `{id}` leaves are pre-interned.
    pub fn new(order: VarOrder) -> Pool {
        let mut pool = Pool {
            order,
            ..Pool::default()
        };
        let d = pool.leaf(Leaf::drop());
        let i = pool.leaf(Leaf::id());
        debug_assert_eq!(d, NodeId(0));
        debug_assert_eq!(i, NodeId(1));
        pool
    }

    /// The state-variable order this pool composes under.
    pub fn order(&self) -> &VarOrder {
        &self.order
    }

    /// The `{drop}` diagram.
    #[allow(clippy::should_implement_trait)]
    pub fn drop(&self) -> NodeId {
        NodeId(0)
    }

    /// The `{id}` diagram.
    pub fn id(&self) -> NodeId {
        NodeId(1)
    }

    /// Total number of interned nodes (across all diagrams in the pool).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the pool empty? (Never true: `{drop}` and `{id}` are pre-interned.)
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Intern a leaf, returning the id of the canonical copy.
    pub fn leaf(&mut self, leaf: Leaf) -> NodeId {
        if let Some(&id) = self.leaf_intern.get(&leaf) {
            return id;
        }
        let id = self.push(Node::Leaf(leaf.clone()));
        self.leaf_intern.insert(leaf, id);
        id
    }

    /// Intern a branch. Collapses to the child when both branches are the
    /// same node (id equality, thanks to hash-consing) — the classic BDD
    /// reduction rule.
    pub fn branch(&mut self, test: Test, tru: NodeId, fls: NodeId) -> NodeId {
        if tru == fls {
            return tru;
        }
        if let Some(&id) = self.branch_intern.get(&(test.clone(), tru, fls)) {
            return id;
        }
        let id = self.push(Node::Branch {
            test: test.clone(),
            tru,
            fls,
        });
        self.branch_intern.insert((test, tru, fls), id);
        id
    }

    // Invariant: a branch can only be interned once both children exist, so a
    // node's children always have *strictly smaller* indices. Compaction
    // ([`Pool::compact`]) and the wire decoder rely on this to process nodes
    // in index order with children already handled.
    fn push(&mut self, node: Node) -> NodeId {
        let id = u32::try_from(self.nodes.len()).expect("xFDD pool node count overflow");
        self.nodes.push(node);
        NodeId(id)
    }

    // -----------------------------------------------------------------------
    // Interned composition contexts
    // -----------------------------------------------------------------------

    /// The facts of an interned context.
    pub fn ctx(&self, id: CtxId) -> &Context {
        &self.ctxs[id.0 as usize]
    }

    /// Extend a context with the outcome of a test (interned: extending the
    /// same context with the same fact yields the same id).
    pub fn ctx_with(&mut self, ctx: CtxId, test: Test, outcome: bool) -> CtxId {
        if self.ctxs.is_empty() {
            self.ctxs.push(Context::new());
        }
        if let Some(&id) = self.ctx_intern.get(&(ctx, test.clone(), outcome)) {
            return id;
        }
        let extended = self.ctx(ctx).with(test.clone(), outcome);
        let id = CtxId(u32::try_from(self.ctxs.len()).expect("xFDD pool context overflow"));
        self.ctxs.push(extended);
        self.ctx_intern.insert((ctx, test, outcome), id);
        id
    }

    /// Does the context decide this test?
    pub(crate) fn ctx_implies(&self, ctx: CtxId, test: &Test) -> Option<bool> {
        if self.ctxs.is_empty() {
            return Context::new().implies(test);
        }
        self.ctx(ctx).implies(test)
    }

    /// Lazily materialize the empty context (pools start with no contexts
    /// until a composition first needs one).
    pub(crate) fn empty_ctx(&mut self) -> CtxId {
        if self.ctxs.is_empty() {
            self.ctxs.push(Context::new());
        }
        CtxId::EMPTY
    }

    // -----------------------------------------------------------------------
    // Structural queries — all built on two shared walkers so there is one
    // DFS implementation to get right: `visit_reachable` (top-down, preorder,
    // multi-root, early exit) and `fold_reachable` (bottom-up, children
    // folded before parents). The GC mark phase, the pool-to-pool import and
    // the wire encoder reuse the same walkers.
    // -----------------------------------------------------------------------

    /// Visit every *distinct* node reachable from the given roots exactly
    /// once, in preorder (a parent before its children, the true child before
    /// the false child). Return `false` from the callback to stop the walk
    /// early.
    pub fn visit_reachable<I, F>(&self, roots: I, mut f: F)
    where
        I: IntoIterator<Item = NodeId>,
        F: FnMut(NodeId, &Node) -> bool,
    {
        // Small arenas get a dense seen-bitmap; large ones (a long-lived
        // session pool can hold hundreds of thousands of nodes) a hash set,
        // so querying a small diagram stays O(diagram), not O(arena).
        let mut seen = SeenSet::with_arena_len(self.nodes.len());
        // Roots are pushed in reverse so they are visited in argument order.
        let mut stack: Vec<NodeId> = roots.into_iter().collect();
        stack.reverse();
        while let Some(n) = stack.pop() {
            if seen.insert(n) {
                continue;
            }
            let node = self.node(n);
            if !f(n, node) {
                return;
            }
            if let Node::Branch { tru, fls, .. } = node {
                // Push false first so the true child is visited first.
                stack.push(*fls);
                stack.push(*tru);
            }
        }
    }

    /// Fold the diagram bottom-up: `f` is called exactly once per distinct
    /// reachable node, with the already-computed results of its children
    /// (`None` for leaves), and the root's result is returned.
    pub fn fold_reachable<T, F>(&self, root: NodeId, mut f: F) -> T
    where
        F: FnMut(NodeId, &Node, Option<(&T, &T)>) -> T,
    {
        let mut memo: HashMap<NodeId, T> = HashMap::new();
        let mut stack = vec![root];
        while let Some(&n) = stack.last() {
            if memo.contains_key(&n) {
                stack.pop();
                continue;
            }
            let node = self.node(n);
            match node {
                Node::Leaf(_) => {
                    let v = f(n, node, None);
                    memo.insert(n, v);
                    stack.pop();
                }
                Node::Branch { tru, fls, .. } => match (memo.get(tru), memo.get(fls)) {
                    (Some(t), Some(fv)) => {
                        let v = f(n, node, Some((t, fv)));
                        memo.insert(n, v);
                        stack.pop();
                    }
                    (t, fv) => {
                        if fv.is_none() {
                            stack.push(*fls);
                        }
                        if t.is_none() {
                            stack.push(*tru);
                        }
                    }
                },
            }
        }
        memo.remove(&root)
            .expect("fold_reachable computed the root")
    }

    /// Number of *distinct* nodes reachable from `root` (the arena size of
    /// the diagram — what sharing actually stores).
    pub fn size(&self, root: NodeId) -> usize {
        let mut n = 0;
        self.visit_reachable([root], |_, _| {
            n += 1;
            true
        });
        n
    }

    /// Number of nodes the diagram would occupy as an unshared tree (every
    /// occurrence counted with multiplicity, saturating at `u64::MAX`). The
    /// baseline against which sharing is measured.
    pub fn tree_size(&self, root: NodeId) -> u64 {
        self.fold_reachable(root, |_, _, kids| match kids {
            None => 1u64,
            Some((t, f)) => 1u64.saturating_add(*t).saturating_add(*f),
        })
    }

    /// Number of distinct branch (test) nodes reachable from `root`.
    pub fn num_tests(&self, root: NodeId) -> usize {
        let mut n = 0;
        self.visit_reachable([root], |_, node| {
            if matches!(node, Node::Branch { .. }) {
                n += 1;
            }
            true
        });
        n
    }

    /// Depth of the diagram (a single leaf has depth 1).
    pub fn depth(&self, root: NodeId) -> usize {
        self.fold_reachable::<usize, _>(root, |_, _, kids| match kids {
            None => 1,
            Some((t, f)) => 1 + *t.max(f),
        })
    }

    /// The distinct nodes reachable from `root`, in preorder.
    pub fn reachable(&self, root: NodeId) -> Vec<NodeId> {
        let mut order = Vec::new();
        self.visit_reachable([root], |id, _| {
            order.push(id);
            true
        });
        order
    }

    /// All state variables referenced anywhere in the diagram (tests and
    /// leaf actions).
    pub fn state_vars(&self, root: NodeId) -> BTreeSet<StateVar> {
        let mut out = BTreeSet::new();
        self.visit_reachable([root], |_, node| {
            match node {
                Node::Leaf(leaf) => out.extend(leaf.written_vars()),
                Node::Branch { test, .. } => {
                    if let Some(v) = test.state_var() {
                        out.insert(v.clone());
                    }
                }
            }
            true
        });
        out
    }

    /// Check the ordering invariant: along every root-to-leaf path, tests are
    /// strictly increasing under the pool's variable order.
    pub fn is_well_formed(&self, root: NodeId) -> bool {
        // A node's validity depends only on the nearest preceding test, so
        // (node, prev) pairs can be memoized; the DAG is then checked without
        // enumerating its (possibly exponential) path set.
        let mut ok: HashSet<(NodeId, Option<Test>)> = HashSet::new();
        self.well_formed_from(root, None, &mut ok)
    }

    fn well_formed_from(
        &self,
        n: NodeId,
        prev: Option<&Test>,
        ok: &mut HashSet<(NodeId, Option<Test>)>,
    ) -> bool {
        let key = (n, prev.cloned());
        if ok.contains(&key) {
            return true;
        }
        let valid = match self.node(n) {
            Node::Leaf(_) => true,
            Node::Branch { test, tru, fls } => {
                if let Some(p) = prev {
                    if p.cmp_in(test, &self.order) != std::cmp::Ordering::Less {
                        return false;
                    }
                }
                let (test, tru, fls) = (test.clone(), *tru, *fls);
                self.well_formed_from(tru, Some(&test), ok)
                    && self.well_formed_from(fls, Some(&test), ok)
            }
        };
        if valid {
            ok.insert(key);
        }
        valid
    }

    /// If any leaf encodes a parallel race (two action sequences writing the
    /// same state variable), return that variable.
    pub fn find_race(&self, root: NodeId) -> Option<StateVar> {
        let mut found = None;
        self.visit_reachable([root], |_, node| {
            if let Node::Leaf(leaf) = node {
                if let Some(var) = leaf.parallel_race() {
                    found = Some(var);
                    return false;
                }
            }
            true
        });
        found
    }

    // -----------------------------------------------------------------------
    // Evaluation and path enumeration
    // -----------------------------------------------------------------------

    /// Run the diagram on a packet and store: walk tests to a leaf, then
    /// apply the leaf's action sequences.
    pub fn evaluate(
        &self,
        root: NodeId,
        pkt: &Packet,
        store: &Store,
    ) -> Result<(BTreeSet<Packet>, Store), EvalError> {
        let mut cur = root;
        loop {
            match self.node(cur) {
                Node::Leaf(leaf) => return leaf.apply(pkt, store),
                Node::Branch { test, tru, fls } => {
                    cur = if eval_test(test, pkt, store)? {
                        *tru
                    } else {
                        *fls
                    };
                }
            }
        }
    }

    /// Enumerate all root-to-leaf paths as `(tests-with-outcomes, leaf)`.
    /// Used by packet-state mapping (§4.3). Note this expands sharing: the
    /// number of paths can be exponential in the number of *nodes*.
    pub fn paths(&self, root: NodeId) -> Vec<(Vec<(Test, bool)>, &Leaf)> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.collect_paths(root, &mut prefix, &mut out);
        out
    }

    fn collect_paths<'a>(
        &'a self,
        n: NodeId,
        prefix: &mut Vec<(Test, bool)>,
        out: &mut Vec<(Vec<(Test, bool)>, &'a Leaf)>,
    ) {
        match self.node(n) {
            Node::Leaf(leaf) => out.push((prefix.clone(), leaf)),
            Node::Branch { test, tru, fls } => {
                prefix.push((test.clone(), true));
                self.collect_paths(*tru, prefix, out);
                prefix.pop();
                prefix.push((test.clone(), false));
                self.collect_paths(*fls, prefix, out);
                prefix.pop();
            }
        }
    }

    /// Render the diagram rooted at `root` as an indented tree (for
    /// debugging, examples and the Figure 3 reproduction binary).
    pub fn render(&self, root: NodeId) -> String {
        let mut out = String::new();
        self.render_into(root, 0, &mut out);
        out
    }

    fn render_into(&self, n: NodeId, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match self.node(n) {
            Node::Leaf(leaf) => {
                out.push_str(&format!("{pad}{leaf:?}\n"));
            }
            Node::Branch { test, tru, fls } => {
                out.push_str(&format!("{pad}{test:?} ?\n"));
                self.render_into(*tru, depth + 1, out);
                out.push_str(&format!("{pad}:\n"));
                self.render_into(*fls, depth + 1, out);
            }
        }
    }

    /// Render a node as a debug string (expands sharing; test helper).
    pub fn debug(&self, n: NodeId) -> String {
        match self.node(n) {
            Node::Leaf(l) => format!("{l:?}"),
            Node::Branch { test, tru, fls } => {
                format!("({test:?} ? {} : {})", self.debug(*tru), self.debug(*fls))
            }
        }
    }
}

/// Visited-set for the shared walkers: dense bitmap for small arenas (no
/// hashing), hash set for large ones (no O(arena) allocation per query).
enum SeenSet {
    Dense(Vec<bool>),
    Sparse(HashSet<NodeId>),
}

impl SeenSet {
    const DENSE_LIMIT: usize = 1 << 14;

    fn with_arena_len(len: usize) -> SeenSet {
        if len <= Self::DENSE_LIMIT {
            SeenSet::Dense(vec![false; len])
        } else {
            SeenSet::Sparse(HashSet::new())
        }
    }

    /// Mark a node, returning whether it was already marked.
    fn insert(&mut self, n: NodeId) -> bool {
        match self {
            SeenSet::Dense(v) => std::mem::replace(&mut v[n.index()], true),
            SeenSet::Sparse(s) => !s.insert(n),
        }
    }
}

/// Evaluate one test against a packet and store.
pub fn eval_test(test: &Test, pkt: &Packet, store: &Store) -> Result<bool, EvalError> {
    match test {
        Test::FieldValue(f, v) => Ok(match pkt.get(f) {
            Some(actual) => v.matches(actual),
            None => false,
        }),
        Test::FieldField(f, g) => Ok(match (pkt.get(f), pkt.get(g)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }),
        Test::State { var, index, value } => {
            let idx = eval_index(index, pkt)?;
            let expected = eval_expr(value, pkt)?;
            Ok(store.get(var, &idx) == expected)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use snap_lang::{Field, Value};

    fn pool() -> Pool {
        Pool::new(VarOrder::empty())
    }

    #[test]
    fn leaves_and_branches_are_interned() {
        let mut p = pool();
        let a = p.leaf(Leaf::single(Action::Modify(Field::OutPort, Value::Int(1))));
        let b = p.leaf(Leaf::single(Action::Modify(Field::OutPort, Value::Int(1))));
        assert_eq!(a, b);
        let t = Test::FieldValue(Field::SrcPort, Value::Int(53));
        let x = p.branch(t.clone(), a, p.drop());
        let y = p.branch(t, a, p.drop());
        assert_eq!(x, y);
        // Interning means the second build added no nodes.
        assert_eq!(p.size(x), 3);
    }

    #[test]
    fn branch_collapses_equal_children() {
        let mut p = pool();
        let id = p.id();
        let d = p.branch(Test::FieldValue(Field::SrcPort, Value::Int(53)), id, id);
        assert_eq!(d, id);
        assert_eq!(p.size(d), 1);
    }

    #[test]
    fn shared_subdiagrams_store_fewer_nodes_than_the_tree() {
        let mut p = pool();
        // (dstport = 80 ? out : drop), referenced from both sides of an outer
        // branch: 4 distinct nodes, 7 as a tree.
        let out = p.leaf(Leaf::single(Action::Modify(Field::OutPort, Value::Int(1))));
        let drop = p.drop();
        let shared = p.branch(Test::FieldValue(Field::DstPort, Value::Int(80)), out, drop);
        let top = p.branch(
            Test::FieldValue(Field::SrcPort, Value::Int(53)),
            shared,
            shared,
        );
        // Equal children collapse entirely...
        assert_eq!(top, shared);
        // ...so force distinct children that still share `out` and `drop`.
        let alt = p.branch(Test::FieldValue(Field::DstPort, Value::Int(443)), out, drop);
        let top = p.branch(
            Test::FieldValue(Field::SrcPort, Value::Int(53)),
            shared,
            alt,
        );
        assert_eq!(p.size(top), 5);
        assert_eq!(p.tree_size(top), 7);
        assert!(p.size(top) < p.tree_size(top) as usize);
    }

    #[test]
    fn contexts_are_interned() {
        let mut p = pool();
        let t = Test::FieldValue(Field::SrcPort, Value::Int(53));
        let base = p.empty_ctx();
        let a = p.ctx_with(base, t.clone(), true);
        let b = p.ctx_with(base, t.clone(), true);
        assert_eq!(a, b);
        let c = p.ctx_with(base, t.clone(), false);
        assert_ne!(a, c);
        assert_eq!(p.ctx_implies(a, &t), Some(true));
        assert_eq!(p.ctx_implies(c, &t), Some(false));
        assert_eq!(p.ctx_implies(base, &t), None);
    }

    #[test]
    fn reachable_is_preorder_from_root() {
        let mut p = pool();
        let id = p.id();
        let drop = p.drop();
        let inner = p.branch(Test::FieldValue(Field::DstPort, Value::Int(80)), id, drop);
        let root = p.branch(
            Test::FieldValue(Field::SrcPort, Value::Int(53)),
            inner,
            drop,
        );
        let order = p.reachable(root);
        assert_eq!(order[0], root);
        assert_eq!(order.len(), 4);
        // Every child id appears after its parent id in the order.
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(inner) > pos(root));
        assert!(pos(id) > pos(inner));
    }

    #[test]
    fn depth_and_num_tests() {
        let mut p = pool();
        let id = p.id();
        let drop = p.drop();
        let inner = p.branch(Test::FieldValue(Field::DstPort, Value::Int(80)), id, drop);
        let root = p.branch(
            Test::FieldValue(Field::SrcPort, Value::Int(53)),
            inner,
            drop,
        );
        assert_eq!(p.depth(root), 3);
        assert_eq!(p.num_tests(root), 2);
        assert_eq!(p.depth(p.id()), 1);
        assert_eq!(p.num_tests(p.id()), 0);
    }
}
