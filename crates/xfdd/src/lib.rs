//! # snap-xfdd
//!
//! Extended forwarding decision diagrams (xFDDs), the intermediate
//! representation of the SNAP compiler (§4.2 of the paper).
//!
//! An xFDD is a binary-decision-diagram-like structure whose interior nodes
//! are tests over packet fields (`f = v`), pairs of fields (`f1 = f2`) or
//! state variables (`s[e] = e`), and whose leaves are sets of action
//! sequences. Compared to the FDDs of stateless NetKAT compilers, the
//! field-field and state tests (and the state-variable ordering coming from
//! dependency analysis) are the extensions that make stateful compilation
//! possible.
//!
//! The crate provides:
//!
//! * the diagram type ([`Xfdd`]), tests ([`Test`]) and leaf actions
//!   ([`Action`], [`ActionSeq`], [`Leaf`]),
//! * the composition operators `⊕` ([`union`]), `⊖` ([`negate`]) and `⊙`
//!   ([`seq`]) with the context-based refinement of Appendix B/E,
//! * translation from SNAP policies ([`to_xfdd`]) including race detection,
//! * state dependency analysis ([`StateDependencies`]) and the derived
//!   state-variable order ([`VarOrder`]).
//!
//! ## Example
//!
//! ```
//! use snap_lang::prelude::*;
//! use snap_xfdd::{to_xfdd, StateDependencies};
//!
//! let program = ite(
//!     test(Field::SrcPort, Value::Int(53)),
//!     state_incr("dns-count", vec![field(Field::DstIp)]),
//!     id(),
//! );
//! let deps = StateDependencies::analyze(&program);
//! let xfdd = to_xfdd(&program, &deps.var_order()).unwrap();
//! assert!(xfdd.is_well_formed(&deps.var_order()));
//!
//! // The diagram behaves exactly like the program.
//! let pkt = Packet::new().with(Field::SrcPort, 53).with(Field::DstIp, Value::ip(10, 0, 0, 1));
//! let (packets, store) = xfdd.evaluate(&pkt, &Store::new()).unwrap();
//! assert_eq!(packets.len(), 1);
//! assert_eq!(store.get(&StateVar::new("dns-count"), &[Value::ip(10, 0, 0, 1)]), Value::Int(1));
//! ```

#![warn(missing_docs)]

pub mod action;
pub mod compose;
pub mod context;
pub mod deps;
pub mod diagram;
pub mod error;
pub mod test;
pub mod translate;

pub use action::{Action, ActionSeq, Leaf};
pub use compose::{make_branch, negate, restrict, seq, union};
pub use context::Context;
pub use deps::StateDependencies;
pub use diagram::Xfdd;
pub use error::CompileError;
pub use test::{Test, VarOrder};
pub use translate::{pred_to_xfdd, to_xfdd};
