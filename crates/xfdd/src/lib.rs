//! # snap-xfdd
//!
//! Extended forwarding decision diagrams (xFDDs), the intermediate
//! representation of the SNAP compiler (§4.2 of the paper) — hash-consed.
//!
//! An xFDD is a binary-decision-diagram-like structure whose interior nodes
//! are tests over packet fields (`f = v`), pairs of fields (`f1 = f2`) or
//! state variables (`s[e] = e`), and whose leaves are sets of action
//! sequences. Compared to the FDDs of stateless NetKAT compilers, the
//! field-field and state tests (and the state-variable ordering coming from
//! dependency analysis) are the extensions that make stateful compilation
//! possible.
//!
//! Diagrams live in a per-compilation arena, the [`Pool`]: structurally
//! equal subdiagrams are interned to a single [`NodeId`], the composition
//! operators are memoized, and the stable ids double as the §4.5 packet-tag
//! node identifiers executed directly by the data plane. A finished diagram
//! is frozen into a cheaply clonable [`Xfdd`] handle.
//!
//! The crate provides:
//!
//! * the arena ([`Pool`], [`Node`], [`NodeId`]) and the frozen diagram handle
//!   ([`Xfdd`]), plus tests ([`Test`]) and leaf actions ([`Action`],
//!   [`ActionSeq`], [`Leaf`]),
//! * the composition operators `⊕` ([`Pool::union`]), `⊖` ([`Pool::negate`])
//!   and `⊙` ([`Pool::seq`]) with the context-based refinement of
//!   Appendix B/E, all memoized,
//! * translation from SNAP policies ([`to_xfdd`], [`compile`]) including
//!   race detection,
//! * state dependency analysis ([`StateDependencies`]) and the derived
//!   state-variable order ([`VarOrder`]),
//! * the machinery for long-lived compilation sessions: pool-to-pool import
//!   ([`Pool::import`]) for merging per-thread translation pools, a
//!   mark-from-roots compactor ([`Pool::compact`]) bounding arena growth,
//!   and a serde-free wire format for frozen diagrams ([`encode_diagram`] /
//!   [`decode_diagram`]),
//! * a two-stage dataplane lowering: the flat struct-of-arrays program
//!   ([`FlatProgram`] — the reachable subgraph renumbered densely
//!   child-first, so per-packet evaluation is index arithmetic instead of
//!   arena chasing) and, below it, the table-compiled program
//!   ([`TableProgram`] — runs of same-field tests collapsed into per-field
//!   dispatch tables, so a whole field-test chain resolves with one field
//!   load and one indexed lookup).
//!
//! ## Example
//!
//! ```
//! use snap_lang::prelude::*;
//!
//! let program = ite(
//!     test(Field::SrcPort, Value::Int(53)),
//!     state_incr("dns-count", vec![field(Field::DstIp)]),
//!     id(),
//! );
//! let xfdd = snap_xfdd::compile(&program).unwrap();
//! assert!(xfdd.is_well_formed());
//!
//! // The diagram behaves exactly like the program.
//! let pkt = Packet::new().with(Field::SrcPort, 53).with(Field::DstIp, Value::ip(10, 0, 0, 1));
//! let (packets, store) = xfdd.evaluate(&pkt, &Store::new()).unwrap();
//! assert_eq!(packets.len(), 1);
//! assert_eq!(store.get(&StateVar::new("dns-count"), &[Value::ip(10, 0, 0, 1)]), Value::Int(1));
//! ```

#![warn(missing_docs)]

pub mod action;
pub mod compact;
pub mod compose;
pub mod context;
pub mod deps;
pub mod diagram;
pub mod error;
pub mod flat;
pub mod import;
pub mod pool;
pub mod tables;
pub mod test;
pub mod translate;
pub mod wire;

pub use action::{Action, ActionSeq, Leaf};
pub use compact::RemapTable;
pub use context::Context;
pub use deps::StateDependencies;
pub use diagram::{eval_test, Xfdd};
pub use error::CompileError;
pub use flat::{FlatId, FlatLeaf, FlatNode, FlatProgram, StateClass};
pub use pool::{CtxId, Node, NodeId, Pool};
pub use tables::{Lookup, TableProgram, TableStats};
pub use test::{Test, VarOrder};
pub use translate::{compile, pred_to_xfdd, to_xfdd};
pub use wire::{
    apply_delta, decode_delta_fresh, decode_diagram, decode_into, encode_delta, encode_diagram,
    WireError,
};
