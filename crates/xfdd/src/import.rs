//! Pool-to-pool import: structural re-interning of a diagram from one arena
//! into another.
//!
//! Parallel per-policy compilation translates the operands of a parallel
//! composition into *private* per-thread pools — no locking, private memo
//! tables — and then merges them into the session pool. The merge is a
//! bottom-up walk of the source diagram that re-interns every node through
//! the destination's `leaf`/`branch` constructors, threading a `NodeId`
//! remap table; structurally equal nodes therefore collapse onto the
//! destination's existing ids, and importing the same diagram twice is a
//! no-op returning the same root.

use crate::pool::{Node, NodeId, Pool};
use std::collections::HashMap;

impl Pool {
    /// Re-intern the diagram rooted at `root` in `src` into this pool,
    /// returning the root's id here. Nodes structurally equal to existing
    /// ones are shared, not duplicated.
    ///
    /// Both pools must use the same variable order — otherwise the imported
    /// diagram, while structurally intact, would violate this pool's
    /// ordering invariant when composed further.
    pub fn import(&mut self, src: &Pool, root: NodeId) -> NodeId {
        let mut remap = HashMap::new();
        self.import_with(src, root, &mut remap)
    }

    /// [`Pool::import`] with a caller-supplied remap table, so several roots
    /// of the same source pool can be imported while sharing the already
    /// re-interned nodes. The table maps source ids to destination ids and
    /// is extended in place.
    pub fn import_with(
        &mut self,
        src: &Pool,
        root: NodeId,
        remap: &mut HashMap<NodeId, NodeId>,
    ) -> NodeId {
        debug_assert_eq!(
            self.order(),
            src.order(),
            "importing between pools with different variable orders"
        );
        if let Some(&mapped) = remap.get(&root) {
            return mapped;
        }
        // Bottom-up: children are re-interned before their parents, exactly
        // the order `branch` needs. The fold's per-call result is the
        // destination id.
        let mapped = src.fold_reachable(root, |id, node, _| {
            if let Some(&m) = remap.get(&id) {
                return m;
            }
            let m = match node {
                Node::Leaf(l) => self.leaf(l.clone()),
                Node::Branch { test, tru, fls } => {
                    let t = remap[tru];
                    let f = remap[fls];
                    self.branch(test.clone(), t, f)
                }
            };
            remap.insert(id, m);
            m
        });
        mapped
    }

    /// Extract the diagram rooted at `root` into a fresh, minimal pool of its
    /// own (same variable order, only the reachable nodes, empty memo
    /// tables). This is how a long-lived session *publishes* a diagram: the
    /// frozen copy costs O(diagram) rather than O(arena), stays small no
    /// matter how much garbage the session pool has accumulated, and is
    /// detached from future mutation and GC.
    pub fn extract(&self, root: NodeId) -> (Pool, NodeId) {
        let mut out = Pool::new(self.order().clone());
        let r = out.import(self, root);
        (out, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{Action, Leaf};
    use crate::test::{Test, VarOrder};
    use crate::translate::to_xfdd;
    use snap_lang::builder::*;
    use snap_lang::{Field, Packet, Store, Value};

    #[test]
    fn import_preserves_semantics_and_dedups() {
        let mut src = Pool::new(VarOrder::empty());
        let policy = ite(
            test(Field::SrcPort, Value::Int(53)),
            modify(Field::OutPort, Value::Int(6)),
            modify(Field::OutPort, Value::Int(1)),
        );
        let root = to_xfdd(&policy, &mut src).unwrap();

        let mut dst = Pool::new(VarOrder::empty());
        let imported = dst.import(&src, root);
        assert_eq!(dst.size(imported), src.size(root));

        let store = Store::new();
        for port in [53i64, 80] {
            let pkt = Packet::new().with(Field::SrcPort, port);
            assert_eq!(
                dst.evaluate(imported, &pkt, &store).unwrap(),
                src.evaluate(root, &pkt, &store).unwrap()
            );
        }

        // Importing again is a pure re-interning no-op.
        let len = dst.len();
        assert_eq!(dst.import(&src, root), imported);
        assert_eq!(dst.len(), len);
    }

    #[test]
    fn import_shares_nodes_already_in_the_destination() {
        let mut dst = Pool::new(VarOrder::empty());
        let out = dst.leaf(Leaf::single(Action::Modify(Field::OutPort, Value::Int(6))));
        let existing = dst.branch(Test::FieldValue(Field::SrcPort, Value::Int(53)), out, {
            dst.drop()
        });
        let len = dst.len();

        // Build the same diagram in a separate pool and import it.
        let mut src = Pool::new(VarOrder::empty());
        let out_s = src.leaf(Leaf::single(Action::Modify(Field::OutPort, Value::Int(6))));
        let drop_s = src.drop();
        let root_s = src.branch(
            Test::FieldValue(Field::SrcPort, Value::Int(53)),
            out_s,
            drop_s,
        );

        let imported = dst.import(&src, root_s);
        assert_eq!(imported, existing);
        assert_eq!(dst.len(), len, "import duplicated structurally equal nodes");
    }

    #[test]
    fn import_with_shares_the_remap_across_roots() {
        let mut src = Pool::new(VarOrder::empty());
        let shared = src.leaf(Leaf::single(Action::Modify(Field::OutPort, Value::Int(9))));
        let drop = src.drop();
        let r1 = src.branch(
            Test::FieldValue(Field::SrcPort, Value::Int(1)),
            shared,
            drop,
        );
        let r2 = src.branch(
            Test::FieldValue(Field::SrcPort, Value::Int(2)),
            shared,
            drop,
        );

        let mut dst = Pool::new(VarOrder::empty());
        let mut remap = HashMap::new();
        let m1 = dst.import_with(&src, r1, &mut remap);
        let before = dst.len();
        let m2 = dst.import_with(&src, r2, &mut remap);
        assert_ne!(m1, m2);
        // Only the second branch node is new; the shared leaf came from the
        // remap table.
        assert_eq!(dst.len(), before + 1);
        assert_eq!(remap[&shared], {
            match dst.node(m2) {
                Node::Branch { tru, .. } => *tru,
                _ => unreachable!(),
            }
        });
    }

    #[test]
    fn imported_diagrams_compose_in_the_destination() {
        // Translate two policies in two private pools, import both, and
        // union them in the destination — mirroring the parallel-translation
        // merge step.
        let order = VarOrder::empty();
        let mut p1 = Pool::new(order.clone());
        let d1 = to_xfdd(&filter(test(Field::SrcPort, Value::Int(53))), &mut p1).unwrap();
        let mut p2 = Pool::new(order.clone());
        let d2 = to_xfdd(&filter(test(Field::DstPort, Value::Int(53))), &mut p2).unwrap();

        let mut dst = Pool::new(order);
        let i1 = dst.import(&p1, d1);
        let i2 = dst.import(&p2, d2);
        let u = dst.union(i1, i2);
        assert!(dst.is_well_formed(u));
        let store = Store::new();
        let hit = Packet::new()
            .with(Field::SrcPort, 80)
            .with(Field::DstPort, 53);
        let miss = Packet::new()
            .with(Field::SrcPort, 80)
            .with(Field::DstPort, 80);
        assert_eq!(dst.evaluate(u, &hit, &store).unwrap().0.len(), 1);
        assert!(dst.evaluate(u, &miss, &store).unwrap().0.is_empty());
    }
}
