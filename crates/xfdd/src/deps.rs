//! State dependency analysis (§4.1, Appendix B Figure 14).
//!
//! A state variable `t` *depends on* `s` when the program may write `t` after
//! reading `s`; any realization on a physical network must then route packets
//! through `s`'s switch before `t`'s. Sequential composition and conditionals
//! introduce dependencies, parallel composition does not, and an `atomic`
//! block makes all of its variables mutually dependent (so they end up
//! co-located).
//!
//! The analysis produces:
//! * the dependency graph,
//! * its strongly connected components,
//! * the total state-variable order used for xFDD state tests ([`VarOrder`]),
//! * the `dep` (ordered, not co-located) and `tied` (co-located) relations
//!   consumed by the placement/routing MILP.

use crate::test::VarOrder;
use serde::{Deserialize, Serialize};
use snap_lang::{Policy, Pred, StateVar};
use std::collections::{BTreeMap, BTreeSet};

/// The result of state dependency analysis for one policy.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateDependencies {
    /// All state variables mentioned by the policy.
    pub variables: BTreeSet<StateVar>,
    /// Directed dependency edges `(s, t)`: `t` is written after reading `s`,
    /// so `s` must come before `t`.
    pub edges: BTreeSet<(StateVar, StateVar)>,
    /// Strongly connected components, in topological order of the condensation.
    pub sccs: Vec<Vec<StateVar>>,
    /// Pairs of distinct variables that must be co-located (same SCC).
    pub tied: BTreeSet<(StateVar, StateVar)>,
    /// Ordered-but-not-co-located pairs: `(s, t)` with an edge `s → t`
    /// crossing SCCs.
    pub dep: BTreeSet<(StateVar, StateVar)>,
}

impl StateDependencies {
    /// Analyze a policy.
    pub fn analyze(policy: &Policy) -> StateDependencies {
        let variables = policy.state_vars();
        let mut edges = BTreeSet::new();
        st_dep(policy, &mut edges);
        // Self-edges carry no ordering information.
        edges.retain(|(a, b)| a != b);

        let sccs = tarjan_sccs(&variables, &edges);
        let mut scc_of: BTreeMap<StateVar, usize> = BTreeMap::new();
        for (i, comp) in sccs.iter().enumerate() {
            for v in comp {
                scc_of.insert(v.clone(), i);
            }
        }

        let mut tied = BTreeSet::new();
        for comp in &sccs {
            for a in comp {
                for b in comp {
                    if a != b {
                        tied.insert((a.clone(), b.clone()));
                    }
                }
            }
        }

        let mut dep = BTreeSet::new();
        for (s, t) in &edges {
            if scc_of.get(s) != scc_of.get(t) {
                dep.insert((s.clone(), t.clone()));
            }
        }

        StateDependencies {
            variables,
            edges,
            sccs,
            tied,
            dep,
        }
    }

    /// The total state-variable order used by xFDDs: SCCs in topological
    /// order, variables within an SCC ordered by name.
    pub fn var_order(&self) -> VarOrder {
        let mut vars = Vec::new();
        for comp in &self.sccs {
            let mut c = comp.clone();
            c.sort();
            vars.extend(c);
        }
        VarOrder::new(vars)
    }

    /// Does `t` (transitively) depend on `s`, i.e. must `s` come before `t`?
    pub fn must_precede(&self, s: &StateVar, t: &StateVar) -> bool {
        // BFS over the edge relation.
        let mut seen = BTreeSet::new();
        let mut stack = vec![s.clone()];
        while let Some(cur) = stack.pop() {
            if !seen.insert(cur.clone()) {
                continue;
            }
            for (a, b) in &self.edges {
                if *a == cur {
                    if b == t {
                        return true;
                    }
                    stack.push(b.clone());
                }
            }
        }
        false
    }

    /// Are the two variables required to sit on the same switch?
    pub fn co_located(&self, s: &StateVar, t: &StateVar) -> bool {
        self.tied.contains(&(s.clone(), t.clone()))
    }
}

/// Figure 14's `st-dep`, accumulating `reads(p) × writes(q)`-style edges.
fn st_dep(policy: &Policy, edges: &mut BTreeSet<(StateVar, StateVar)>) {
    match policy {
        Policy::Filter(_)
        | Policy::Modify(_, _)
        | Policy::StateSet { .. }
        | Policy::StateIncr { .. }
        | Policy::StateDecr { .. } => {}
        Policy::Par(p, q) => {
            st_dep(p, edges);
            st_dep(q, edges);
        }
        Policy::Seq(p, q) => {
            for r in p.reads() {
                for w in q.writes() {
                    edges.insert((r.clone(), w.clone()));
                }
            }
            st_dep(p, edges);
            st_dep(q, edges);
        }
        Policy::If(a, p, q) => {
            let reads = pred_reads(a);
            for r in &reads {
                for w in p.writes().union(&q.writes()).cloned().collect::<Vec<_>>() {
                    edges.insert((r.clone(), w));
                }
            }
            st_dep(p, edges);
            st_dep(q, edges);
        }
        Policy::Atomic(p) => {
            let all: BTreeSet<StateVar> = p.state_vars();
            for a in &all {
                for b in &all {
                    edges.insert((a.clone(), b.clone()));
                }
            }
            st_dep(p, edges);
        }
    }
}

fn pred_reads(p: &Pred) -> BTreeSet<StateVar> {
    p.reads()
}

/// Tarjan's strongly connected components, returned in topological order of
/// the condensation (sources first).
fn tarjan_sccs(
    nodes: &BTreeSet<StateVar>,
    edges: &BTreeSet<(StateVar, StateVar)>,
) -> Vec<Vec<StateVar>> {
    let idx: BTreeMap<&StateVar, usize> = nodes.iter().enumerate().map(|(i, v)| (v, i)).collect();
    let n = nodes.len();
    let node_list: Vec<&StateVar> = nodes.iter().collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, b) in edges {
        if let (Some(&ia), Some(&ib)) = (idx.get(a), idx.get(b)) {
            adj[ia].push(ib);
        }
    }

    struct State {
        index_counter: usize,
        indices: Vec<Option<usize>>,
        lowlink: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        sccs: Vec<Vec<usize>>,
    }

    fn strongconnect(v: usize, adj: &[Vec<usize>], st: &mut State) {
        st.indices[v] = Some(st.index_counter);
        st.lowlink[v] = st.index_counter;
        st.index_counter += 1;
        st.stack.push(v);
        st.on_stack[v] = true;
        for &w in &adj[v] {
            if st.indices[w].is_none() {
                strongconnect(w, adj, st);
                st.lowlink[v] = st.lowlink[v].min(st.lowlink[w]);
            } else if st.on_stack[w] {
                st.lowlink[v] = st.lowlink[v].min(st.indices[w].unwrap());
            }
        }
        if st.lowlink[v] == st.indices[v].unwrap() {
            let mut comp = Vec::new();
            loop {
                let w = st.stack.pop().unwrap();
                st.on_stack[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            st.sccs.push(comp);
        }
    }

    let mut st = State {
        index_counter: 0,
        indices: vec![None; n],
        lowlink: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        sccs: Vec::new(),
    };
    for v in 0..n {
        if st.indices[v].is_none() {
            strongconnect(v, &adj, &mut st);
        }
    }

    // Tarjan emits SCCs in *reverse* topological order; reverse to get
    // sources first.
    st.sccs.reverse();
    st.sccs
        .into_iter()
        .map(|comp| comp.into_iter().map(|i| node_list[i].clone()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snap_lang::builder::*;
    use snap_lang::{Field, Value};

    fn sv(s: &str) -> StateVar {
        StateVar::new(s)
    }

    #[test]
    fn sequential_read_then_write_creates_edge() {
        // if s[srcip] = 1 then id else id ; t[srcip] <- 2
        let p = ite(
            state_test("s", vec![field(Field::SrcIp)], int(1)),
            id(),
            id(),
        )
        .seq(state_set("t", vec![field(Field::SrcIp)], int(2)));
        let deps = StateDependencies::analyze(&p);
        assert!(deps.edges.contains(&(sv("s"), sv("t"))));
        assert!(deps.must_precede(&sv("s"), &sv("t")));
        assert!(!deps.must_precede(&sv("t"), &sv("s")));
        assert!(deps.dep.contains(&(sv("s"), sv("t"))));
        assert!(deps.tied.is_empty());
    }

    #[test]
    fn parallel_composition_creates_no_edges() {
        let p = state_incr("a", vec![field(Field::SrcIp)]).par(ite(
            state_test("b", vec![], int(0)),
            id(),
            id(),
        ));
        let deps = StateDependencies::analyze(&p);
        assert!(deps.edges.is_empty());
        assert_eq!(deps.sccs.len(), 2);
    }

    #[test]
    fn conditional_condition_reads_precede_branch_writes() {
        let p = ite(
            state_test("cond", vec![], int(1)),
            state_incr("then-var", vec![]),
            state_incr("else-var", vec![]),
        );
        let deps = StateDependencies::analyze(&p);
        assert!(deps.edges.contains(&(sv("cond"), sv("then-var"))));
        assert!(deps.edges.contains(&(sv("cond"), sv("else-var"))));
    }

    #[test]
    fn atomic_block_ties_all_variables() {
        let p = atomic(
            state_set("hon-ip", vec![field(Field::InPort)], field(Field::SrcIp)).seq(state_set(
                "hon-dstport",
                vec![field(Field::InPort)],
                field(Field::DstPort),
            )),
        );
        let deps = StateDependencies::analyze(&p);
        assert!(deps.co_located(&sv("hon-ip"), &sv("hon-dstport")));
        assert!(deps.co_located(&sv("hon-dstport"), &sv("hon-ip")));
        assert_eq!(deps.sccs.len(), 1);
        assert_eq!(deps.sccs[0].len(), 2);
    }

    #[test]
    fn dns_tunnel_dependency_chain() {
        // Figure 1: blacklist depends on susp-client which depends on orphan.
        let detect = ite(
            test_prefix(Field::DstIp, 10, 0, 6, 0, 24).and(test(Field::SrcPort, Value::Int(53))),
            Policy::seq_all(vec![
                state_set(
                    "orphan",
                    vec![field(Field::DstIp), field(Field::DnsRdata)],
                    Value::Bool(true),
                ),
                state_incr("susp-client", vec![field(Field::DstIp)]),
                ite(
                    state_test("susp-client", vec![field(Field::DstIp)], int(5)),
                    state_set("blacklist", vec![field(Field::DstIp)], Value::Bool(true)),
                    id(),
                ),
            ]),
            ite(
                test_prefix(Field::SrcIp, 10, 0, 6, 0, 24).and(state_truthy(
                    "orphan",
                    vec![field(Field::SrcIp), field(Field::DstIp)],
                )),
                state_set(
                    "orphan",
                    vec![field(Field::SrcIp), field(Field::DstIp)],
                    Value::Bool(false),
                )
                .seq(state_decr("susp-client", vec![field(Field::SrcIp)])),
                id(),
            ),
        );
        let deps = StateDependencies::analyze(&detect);
        assert!(deps.must_precede(&sv("susp-client"), &sv("blacklist")));
        assert!(deps.must_precede(&sv("orphan"), &sv("susp-client")));
        let order = deps.var_order();
        assert!(order.rank(&sv("orphan")) < order.rank(&sv("susp-client")));
        assert!(order.rank(&sv("susp-client")) < order.rank(&sv("blacklist")));
    }

    #[test]
    fn cycle_forms_a_single_scc_and_is_tied() {
        // (if a[..] then b[..]<-1 else id) ; (if b[..] then a[..]<-1 else id)
        let p = ite(
            state_truthy("a", vec![]),
            state_set("b", vec![], int(1)),
            id(),
        )
        .seq(ite(
            state_truthy("b", vec![]),
            state_set("a", vec![], int(1)),
            id(),
        ));
        let deps = StateDependencies::analyze(&p);
        assert!(deps.edges.contains(&(sv("a"), sv("b"))));
        assert!(deps.edges.contains(&(sv("b"), sv("a"))));
        assert_eq!(deps.sccs.len(), 1);
        assert!(deps.co_located(&sv("a"), &sv("b")));
        assert!(deps.dep.is_empty());
    }

    #[test]
    fn var_order_is_topological_for_dag() {
        // chain a -> b -> c plus isolated d
        let p = Policy::seq_all(vec![
            ite(
                state_truthy("a", vec![]),
                state_set("b", vec![], int(1)),
                id(),
            ),
            ite(
                state_truthy("b", vec![]),
                state_set("c", vec![], int(1)),
                id(),
            ),
            state_incr("d", vec![]),
        ]);
        let deps = StateDependencies::analyze(&p);
        let order = deps.var_order();
        assert!(order.rank(&sv("a")) < order.rank(&sv("b")));
        assert!(order.rank(&sv("b")) < order.rank(&sv("c")));
        assert!(order.contains(&sv("d")));
        assert_eq!(deps.variables.len(), 4);
    }

    #[test]
    fn self_dependency_is_ignored_for_ordering() {
        // s is read and then written: a self-edge, which must not create a
        // bogus tied pair or break the order.
        let p = ite(
            state_truthy("s", vec![]),
            state_set("s", vec![], int(1)),
            id(),
        );
        let deps = StateDependencies::analyze(&p);
        assert!(deps.edges.is_empty());
        assert!(deps.tied.is_empty());
        assert_eq!(deps.sccs.len(), 1);
    }
}
