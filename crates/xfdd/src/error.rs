//! Compile errors raised while building xFDDs.

use snap_lang::StateVar;
use std::fmt;

/// Errors detected during translation to (or composition of) xFDDs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// A leaf of the final diagram contains two parallel action sequences
    /// that write the same state variable: the program has a race condition
    /// and is rejected (§4.2).
    StateRace {
        /// The variable written in parallel.
        var: StateVar,
    },
    /// An increment/decrement of a state variable is sequentially followed by
    /// a test of the same entry against a non-constant value; the resulting
    /// condition cannot be expressed as an xFDD test.
    UnsupportedStateArithmetic {
        /// The variable involved.
        var: StateVar,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::StateRace { var } => write!(
                f,
                "race condition: parallel updates to state variable `{var}` reach the same xFDD leaf"
            ),
            CompileError::UnsupportedStateArithmetic { var } => write!(
                f,
                "cannot compile a test of `{var}` against a non-constant value after an increment/decrement of the same entry"
            ),
        }
    }
}

impl std::error::Error for CompileError {}
