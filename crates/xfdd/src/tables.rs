//! Table-compiled programs: the second lowering stage below [`FlatProgram`].
//!
//! A [`FlatProgram`] already turns per-packet evaluation into index
//! arithmetic, but it still resolves one *test per step*: a policy that
//! discriminates one field over many values (an egress map over dstip
//! prefixes, a port whitelist, a DNS/port classifier) becomes a chain of
//! `Test::FieldValue` branches threaded along `fls` edges, and the packet
//! pays a field lookup plus a compare-and-branch per chain node.
//!
//! A [`TableProgram`] collapses every maximal run of same-field
//! `FieldValue` branches into one **dispatch stage**: a single field load
//! followed by one indexed lookup picks the successor for the whole run.
//! The lookup structure is chosen per run by key shape and density:
//!
//! * [`Lookup::Dense`] — a jump table indexed by `value - base`, for integer
//!   key sets dense enough that the table stays small (ports, opcodes);
//! * [`Lookup::Sorted`] — binary search over sorted keys, for sparse
//!   integer/string/symbol/bool/tuple key sets (exact-equality kinds);
//! * [`Lookup::Intervals`] — binary search over the elementary interval
//!   decomposition of the run's IP/prefix keys, so prefix containment
//!   (including nested prefixes, resolved by chain priority) is one probe;
//! * [`Lookup::Scan`] — first-match linear scan via [`Value::matches`],
//!   the fallback for mixed-kind runs.
//!
//! `Test::FieldField` and `Test::State` branches remain explicit branch
//! steps between stages, exactly as in the flat program: field-field tests
//! are rare, and state tests are where distributed execution must stop
//! anyway (the switch may not own the variable, and the store lock is only
//! taken past this point).
//!
//! The table program is a *view over* its flat program — successors are
//! [`FlatId`]s into the same arrays, leaves are applied through the flat
//! leaf tables, and the §4.5 packet tags stay flat ids, so the wire format
//! and resume semantics are untouched. Any flat id minted mid-run (a packet
//! paused at an interior chain node by an older snapshot, or resumed on
//! another switch) stays a valid entry point: interior nodes map to their
//! run's stage with a `min_pos` cursor, and lookups only honour matches at
//! chain positions ≥ that cursor (all positions of a run share the run's
//! final default, so the suffix semantics are exact).
//!
//! [`TableProgram::advance_stateless`] walks stages and stateless branches
//! until a leaf or a state test **without ever touching a store** — it is
//! infallible, which is what lets the batched driver run the stateless
//! prefix of a whole wave before acquiring any store lease.

use crate::flat::{FlatId, FlatNode, FlatProgram};
use crate::pool::eval_test;
use crate::test::Test;
use snap_lang::{EvalError, Field, Packet, Prefix, Store, Value};
use std::collections::BTreeSet;

/// How a branch of the flat program executes under the table compilation.
#[derive(Clone, Copy, Debug)]
enum Entry {
    /// An explicit stateless branch step (`FieldField`, or a `FieldValue`
    /// run of length one that a table would not improve).
    FieldBranch,
    /// A state test: the stateless prefix stops here.
    StateBranch,
    /// Member of a collapsed same-field run: dispatch through
    /// `stages[stage]`, honouring matches at chain positions ≥ `min_pos`
    /// only (this branch is the `min_pos`-th test of the run).
    Stage { stage: u32, min_pos: u32 },
}

/// The per-run lookup structure, chosen by key shape and density.
#[derive(Clone, Debug)]
pub enum Lookup {
    /// Dense integer jump table: `slots[value - base]` holds the chain
    /// position and successor, `None` slots fall through to the default.
    Dense {
        /// Smallest key of the run.
        base: i64,
        /// One slot per integer in `[base, base + slots.len())`.
        slots: Vec<Option<(u32, FlatId)>>,
    },
    /// Binary search over keys sorted by [`Value`] order (exact-equality
    /// key kinds only — never IPs or prefixes).
    Sorted {
        /// `(key, chain position, successor)` sorted by key.
        entries: Vec<(Value, u32, FlatId)>,
    },
    /// Elementary interval decomposition of IP/prefix keys: segment `i`
    /// spans `[starts[i], starts[i+1])` (the last segment ends at the top
    /// of the address space) and `covers[i]` lists the chain entries
    /// containing it, in chain order (first match wins, so nested prefixes
    /// resolve exactly like the original test chain).
    Intervals {
        /// Segment start addresses, ascending; addresses below `starts[0]`
        /// match nothing.
        starts: Vec<u32>,
        /// Matching `(chain position, successor)` pairs per segment.
        covers: Vec<Vec<(u32, FlatId)>>,
    },
    /// First-match linear scan over the chain via [`Value::matches`] —
    /// the fallback for runs mixing key kinds.
    Scan,
}

/// One collapsed run of same-field `FieldValue` branches.
#[derive(Clone, Debug)]
struct Stage {
    /// The field every test of the run reads.
    field: Field,
    /// Where the run falls through when no key matches (the `fls` successor
    /// of the run's last test — shared by every suffix of the run).
    default: FlatId,
    /// `(key, successor)` in chain order; the ground truth the lookup
    /// structures are compiled from, and the scan fallback.
    chain: Vec<(Value, FlatId)>,
    /// The compiled lookup.
    lookup: Lookup,
}

impl Stage {
    /// Resolve one packet through this stage, honouring only chain
    /// positions ≥ `min_pos` (resume mid-run keeps suffix semantics; every
    /// suffix shares the run's default).
    #[inline]
    fn dispatch(&self, pkt: &Packet, min_pos: u32) -> FlatId {
        let Some(actual) = pkt.get(&self.field) else {
            // Missing field: every test of the run is false.
            return self.default;
        };
        match &self.lookup {
            Lookup::Dense { base, slots } => {
                let Value::Int(i) = actual else {
                    // Integer keys never match a non-integer value.
                    return self.default;
                };
                let Some(off) = i.checked_sub(*base) else {
                    return self.default;
                };
                match slots.get(off as usize).copied().flatten() {
                    Some((pos, target)) if pos >= min_pos => target,
                    _ => self.default,
                }
            }
            Lookup::Sorted { entries } => {
                // Exact-equality key kinds: `Value::matches` degenerates to
                // `==`, so Ord-based binary search is the whole test.
                match entries.binary_search_by(|(k, _, _)| k.cmp(actual)) {
                    Ok(i) if entries[i].1 >= min_pos => entries[i].2,
                    _ => self.default,
                }
            }
            Lookup::Intervals { starts, covers } => match actual {
                Value::Ip(ip) => {
                    let seg = starts.partition_point(|s| *s <= ip.0);
                    if seg == 0 {
                        return self.default;
                    }
                    covers[seg - 1]
                        .iter()
                        .find(|(pos, _)| *pos >= min_pos)
                        .map(|&(_, target)| target)
                        .unwrap_or(self.default)
                }
                // A prefix-valued header compares by equality against
                // prefix keys but by containment against IP keys
                // (`Value::matches`); the scan keeps those semantics exact.
                Value::Prefix(_) => self.scan(actual, min_pos),
                // IP/prefix keys never match any other kind.
                _ => self.default,
            },
            Lookup::Scan => self.scan(actual, min_pos),
        }
    }

    /// First-match linear scan from `min_pos` — the semantic reference the
    /// compiled lookups must agree with.
    fn scan(&self, actual: &Value, min_pos: u32) -> FlatId {
        self.chain
            .iter()
            .enumerate()
            .skip(min_pos as usize)
            .find(|(_, (key, _))| key.matches(actual))
            .map(|(_, (_, target))| *target)
            .unwrap_or(self.default)
    }
}

/// Shape statistics of a compiled [`TableProgram`], for benches and the
/// perf trajectory (`BENCH_dataplane.json`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Number of dispatch stages (collapsed runs).
    pub stages: usize,
    /// Stages compiled to a dense jump table.
    pub dense: usize,
    /// Stages compiled to a sorted exact-match table.
    pub sorted: usize,
    /// Stages compiled to an interval table.
    pub intervals: usize,
    /// Stages left as linear scans (mixed key kinds).
    pub scans: usize,
    /// Flat branches absorbed into stages (tests a packet no longer
    /// evaluates one by one).
    pub collapsed_tests: usize,
    /// Longest collapsed run, in tests.
    pub longest_chain: usize,
    /// Flat branches kept as explicit stateless steps.
    pub field_branches: usize,
    /// Flat branches that are state tests (stateless-prefix stops).
    pub state_branches: usize,
}

/// A table-compiled program: per-field dispatch stages over a
/// [`FlatProgram`] (see the module docs).
///
/// A `TableProgram` is only meaningful together with the exact
/// `FlatProgram` it was compiled from — every evaluation entry point takes
/// both, and pairing it with any other program is a logic error (checked
/// only by the shared `FlatId` bounds).
#[derive(Clone, Debug)]
pub struct TableProgram {
    /// How each flat branch executes, parallel to the flat branch arrays.
    entries: Vec<Entry>,
    /// The collapsed runs.
    stages: Vec<Stage>,
}

/// Dense jump tables are capped at this many slots; sparser integer runs
/// fall back to binary search.
const DENSE_SLOT_CAP: i128 = 1024;

impl TableProgram {
    /// Compile the dispatch tables for `flat`.
    ///
    /// Runs are discovered greedily from parents down (child-first
    /// numbering means scanning branch indices in descending order visits a
    /// run's head before its interior), following `fls` edges while the
    /// successor is an unclaimed `FieldValue` branch on the same field.
    /// Runs of length one stay explicit branches.
    pub fn compile(flat: &FlatProgram) -> TableProgram {
        let nb = flat.num_branches();
        let mut entries = vec![Entry::FieldBranch; nb];
        let mut claimed = vec![false; nb];
        let mut stages: Vec<Stage> = Vec::new();
        for b in (0..nb).rev() {
            let head = flat.branch_id(b);
            let FlatNode::Branch { test, .. } = flat.node(head) else {
                unreachable!("branch ids resolve to branches")
            };
            let field = match test {
                Test::State { .. } => {
                    entries[b] = Entry::StateBranch;
                    continue;
                }
                Test::FieldField(_, _) => continue, // stays FieldBranch
                Test::FieldValue(field, _) if !claimed[b] => field.clone(),
                Test::FieldValue(_, _) => continue, // interior of a prior run
            };
            // Trace the run: same-field FieldValue branches threaded along
            // `fls`, stopping at leaves, other tests, already-claimed
            // branches, or a repeated key (impossible in an ordered xFDD,
            // where chain keys ascend strictly, but kept for generality).
            let mut chain: Vec<(Value, FlatId)> = Vec::new();
            let mut members: Vec<usize> = Vec::new();
            let mut cur = head;
            let default = loop {
                if cur.is_leaf() {
                    break cur;
                }
                let i = cur.branch_index();
                if claimed[i] {
                    break cur;
                }
                let FlatNode::Branch { test, tru, fls, .. } = flat.node(cur) else {
                    unreachable!("branch ids resolve to branches")
                };
                match test {
                    Test::FieldValue(f, v) if *f == field && !chain.iter().any(|(k, _)| k == v) => {
                        members.push(i);
                        chain.push((v.clone(), tru));
                        cur = fls;
                    }
                    _ => break cur,
                }
            };
            if chain.len() < 2 {
                continue; // a table would not beat the single compare
            }
            let stage = u32::try_from(stages.len()).expect("stage count fits u32");
            for (pos, &i) in members.iter().enumerate() {
                claimed[i] = true;
                entries[i] = Entry::Stage {
                    stage,
                    min_pos: pos as u32,
                };
            }
            let lookup = build_lookup(&chain);
            stages.push(Stage {
                field,
                default,
                chain,
                lookup,
            });
        }
        TableProgram { entries, stages }
    }

    /// One stateless dispatch step from branch `at`: the successor after
    /// resolving the branch's test — or its whole run, when `at` belongs to
    /// a collapsed stage — against the packet. `None` means `at` is a state
    /// test and the stateless prefix ends here. Infallible: field tests
    /// cannot error and no store is touched.
    #[inline]
    pub fn step_stateless(&self, flat: &FlatProgram, at: FlatId, pkt: &Packet) -> Option<FlatId> {
        match self.entries[at.branch_index()] {
            Entry::StateBranch => None,
            Entry::Stage { stage, min_pos } => {
                Some(self.stages[stage as usize].dispatch(pkt, min_pos))
            }
            Entry::FieldBranch => {
                let FlatNode::Branch { test, tru, fls, .. } = flat.node(at) else {
                    unreachable!("branch ids resolve to branches")
                };
                Some(if eval_field_test(test, pkt) { tru } else { fls })
            }
        }
    }

    /// Advance from `from` through dispatch stages and stateless branches
    /// until a leaf or a state test, without touching any store. Returns
    /// the leaf id, or the id of the first state branch reached.
    #[inline]
    pub fn advance_stateless(&self, flat: &FlatProgram, from: FlatId, pkt: &Packet) -> FlatId {
        let mut cur = from;
        while !cur.is_leaf() {
            match self.step_stateless(flat, cur, pkt) {
                Some(next) => cur = next,
                None => return cur,
            }
        }
        cur
    }

    /// Walk from `from` to a leaf, dispatching stateless spans through the
    /// tables and evaluating state tests against `store` — the table
    /// counterpart of [`FlatProgram::walk`], with identical results.
    pub fn walk(
        &self,
        flat: &FlatProgram,
        from: FlatId,
        pkt: &Packet,
        store: &Store,
    ) -> Result<FlatId, EvalError> {
        let mut cur = from;
        loop {
            cur = self.advance_stateless(flat, cur, pkt);
            if cur.is_leaf() {
                return Ok(cur);
            }
            let FlatNode::Branch { test, tru, fls, .. } = flat.node(cur) else {
                unreachable!("branch ids resolve to branches")
            };
            cur = if eval_test(test, pkt, store)? {
                tru
            } else {
                fls
            };
        }
    }

    /// Run the program on a packet and store with one-big-switch semantics
    /// — the table counterpart of [`FlatProgram::evaluate`], with identical
    /// results.
    pub fn evaluate(
        &self,
        flat: &FlatProgram,
        pkt: &Packet,
        store: &Store,
    ) -> Result<(BTreeSet<Packet>, Store), EvalError> {
        let leaf = self.walk(flat, flat.root(), pkt, store)?;
        flat.leaf(leaf).apply(pkt, store)
    }

    /// Number of dispatch stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Shape statistics (stage kinds, collapsed test counts) for benches
    /// and perf tracking.
    pub fn stats(&self) -> TableStats {
        let mut s = TableStats {
            stages: self.stages.len(),
            ..TableStats::default()
        };
        for stage in &self.stages {
            match stage.lookup {
                Lookup::Dense { .. } => s.dense += 1,
                Lookup::Sorted { .. } => s.sorted += 1,
                Lookup::Intervals { .. } => s.intervals += 1,
                Lookup::Scan => s.scans += 1,
            }
            s.collapsed_tests += stage.chain.len();
            s.longest_chain = s.longest_chain.max(stage.chain.len());
        }
        for e in &self.entries {
            match e {
                Entry::FieldBranch => s.field_branches += 1,
                Entry::StateBranch => s.state_branches += 1,
                Entry::Stage { .. } => {}
            }
        }
        s
    }

    /// The lookup structure compiled for the run containing branch `at`,
    /// if `at` was collapsed into a stage (diagnostics and tests).
    pub fn lookup_at(&self, at: FlatId) -> Option<&Lookup> {
        match self.entries[at.branch_index()] {
            Entry::Stage { stage, .. } => Some(&self.stages[stage as usize].lookup),
            _ => None,
        }
    }
}

/// Evaluate a stateless (field-only) test. State tests are unreachable
/// here: the entry classification routes them to the caller before any
/// evaluation.
#[inline]
fn eval_field_test(test: &Test, pkt: &Packet) -> bool {
    match test {
        Test::FieldValue(f, v) => pkt.get(f).is_some_and(|actual| v.matches(actual)),
        Test::FieldField(f, g) => match (pkt.get(f), pkt.get(g)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        },
        Test::State { .. } => unreachable!("state tests are classified as StateBranch"),
    }
}

/// Choose and build the lookup structure for one run.
fn build_lookup(chain: &[(Value, FlatId)]) -> Lookup {
    let all_int = chain.iter().all(|(k, _)| matches!(k, Value::Int(_)));
    if all_int {
        let ints: Vec<i64> = chain
            .iter()
            .map(|(k, _)| match k {
                Value::Int(i) => *i,
                _ => unreachable!("checked all-int"),
            })
            .collect();
        let base = *ints.iter().min().expect("run has ≥ 2 keys");
        let max = *ints.iter().max().expect("run has ≥ 2 keys");
        let span = i128::from(max) - i128::from(base) + 1;
        // Dense only when the table stays small and at least a quarter
        // full — sparse ports would waste cache for no fewer probes.
        if span <= DENSE_SLOT_CAP && span <= 4 * chain.len() as i128 {
            let mut slots: Vec<Option<(u32, FlatId)>> = vec![None; span as usize];
            for (pos, (&key, &(_, target))) in ints.iter().zip(chain.iter()).enumerate() {
                let slot = &mut slots[(key - base) as usize];
                if slot.is_none() {
                    *slot = Some((pos as u32, target));
                }
            }
            return Lookup::Dense { base, slots };
        }
    }
    let any_addr = chain
        .iter()
        .any(|(k, _)| matches!(k, Value::Ip(_) | Value::Prefix(_)));
    if !any_addr {
        // Exact-equality key kinds: matching is Value equality, so a
        // sorted table probed by Ord is exact for every actual value.
        let mut entries: Vec<(Value, u32, FlatId)> = chain
            .iter()
            .enumerate()
            .map(|(pos, (k, t))| (k.clone(), pos as u32, *t))
            .collect();
        entries.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        entries.dedup_by(|later, first| later.0 == first.0); // keep first pos
        return Lookup::Sorted { entries };
    }
    let all_addr = chain
        .iter()
        .all(|(k, _)| matches!(k, Value::Ip(_) | Value::Prefix(_)));
    if !all_addr {
        return Lookup::Scan; // mixed kinds: keep exact first-match semantics
    }
    // Elementary interval decomposition over the address space: every key
    // is a contiguous `[lo, hi]` range (an IP is a point, a prefix a
    // block), and cutting the space at every range boundary yields
    // segments each key either fully covers or misses.
    let ranges: Vec<(u32, u32, u32, FlatId)> = chain
        .iter()
        .enumerate()
        .map(|(pos, (k, t))| {
            let (lo, hi) = match k {
                Value::Ip(ip) => (ip.0, ip.0),
                Value::Prefix(p) => (p.addr.0, p.addr.0 | prefix_host_mask(p)),
                _ => unreachable!("checked all-addr"),
            };
            (lo, hi, pos as u32, *t)
        })
        .collect();
    let mut points: BTreeSet<u32> = BTreeSet::new();
    for &(lo, hi, _, _) in &ranges {
        points.insert(lo);
        if let Some(above) = hi.checked_add(1) {
            points.insert(above);
        }
    }
    let starts: Vec<u32> = points.into_iter().collect();
    let covers: Vec<Vec<(u32, FlatId)>> = starts
        .iter()
        .map(|&seg_lo| {
            // A segment never straddles a range boundary, so covering its
            // first address is covering all of it.
            let mut cover: Vec<(u32, FlatId)> = ranges
                .iter()
                .filter(|&&(lo, hi, _, _)| lo <= seg_lo && seg_lo <= hi)
                .map(|&(_, _, pos, target)| (pos, target))
                .collect();
            cover.sort_by_key(|&(pos, _)| pos);
            cover
        })
        .collect();
    Lookup::Intervals { starts, covers }
}

/// The host-bits mask of a prefix (`!network_mask`): OR-ing it onto the
/// network address yields the top of the prefix's range.
fn prefix_host_mask(p: &Prefix) -> u32 {
    if p.len == 0 {
        u32::MAX
    } else {
        u32::MAX.checked_shr(u32::from(p.len)).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{NodeId, Pool};
    use crate::translate::to_xfdd;
    use snap_lang::builder::*;
    use snap_lang::{Field, Policy, Value};

    fn compile_both(policy: &Policy) -> (Pool, NodeId, FlatProgram, TableProgram) {
        let deps = crate::deps::StateDependencies::analyze(policy);
        let mut pool = Pool::new(deps.var_order());
        let root = to_xfdd(policy, &mut pool).unwrap();
        let flat = FlatProgram::from_pool(&pool, root);
        let tables = TableProgram::compile(&flat);
        (pool, root, flat, tables)
    }

    /// Chain of ite's over one field — the table-collapse showcase.
    fn chain_over(field: Field, keys: &[Value]) -> Policy {
        let mut p = drop();
        for (i, k) in keys.iter().enumerate().rev() {
            p = ite(
                test(field.clone(), k.clone()),
                modify(Field::OutPort, Value::Int(i as i64 + 1)),
                p,
            );
        }
        p
    }

    fn assert_equiv(policy: &Policy, packets: &[Packet]) {
        let (pool, root, flat, tables) = compile_both(policy);
        let mut store_flat = Store::new();
        let mut store_tab = Store::new();
        for pkt in packets {
            let a = flat.evaluate(pkt, &store_flat);
            let b = tables.evaluate(&flat, pkt, &store_tab);
            match (a, b) {
                (Ok((pa, sa)), Ok((pb, sb))) => {
                    // The source diagram agrees too (sanity anchor).
                    let (pp, _) = pool.evaluate(root, pkt, &store_flat).unwrap();
                    assert_eq!(pa, pp, "flat diverged from pool on {pkt:?}");
                    assert_eq!(pa, pb, "packets diverged on {pkt:?}");
                    assert_eq!(sa, sb, "stores diverged on {pkt:?}");
                    store_flat = sa;
                    store_tab = sb;
                }
                (Err(ea), Err(eb)) => assert_eq!(ea, eb),
                (a, b) => panic!("result kinds diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn dense_table_for_dense_int_run() {
        let keys: Vec<Value> = (50i64..58).map(Value::Int).collect();
        let policy = chain_over(Field::SrcPort, &keys);
        let (_, _, flat, tables) = compile_both(&policy);
        let stats = tables.stats();
        assert_eq!(stats.stages, 1);
        assert_eq!(stats.dense, 1);
        assert_eq!(stats.collapsed_tests, 8);
        assert!(matches!(
            tables.lookup_at(flat.root()),
            Some(Lookup::Dense { .. })
        ));
        let pkts: Vec<Packet> = (45i64..62)
            .map(|p| Packet::new().with(Field::SrcPort, p))
            .chain([Packet::new()]) // missing field
            .collect();
        assert_equiv(&policy, &pkts);
    }

    #[test]
    fn sorted_table_for_sparse_int_run() {
        let keys: Vec<Value> = [22i64, 53, 80, 443, 8080, 123456].map(Value::Int).to_vec();
        let policy = chain_over(Field::DstPort, &keys);
        let (_, _, flat, tables) = compile_both(&policy);
        assert_eq!(tables.stats().sorted, 1);
        assert!(matches!(
            tables.lookup_at(flat.root()),
            Some(Lookup::Sorted { .. })
        ));
        let pkts: Vec<Packet> = [21i64, 22, 53, 80, 443, 8080, 123456, 9]
            .iter()
            .map(|&p| Packet::new().with(Field::DstPort, p))
            .collect();
        assert_equiv(&policy, &pkts);
    }

    #[test]
    fn interval_table_resolves_nested_prefixes_by_chain_order() {
        let keys = vec![
            Value::prefix(10, 0, 6, 0, 24), // tested first: wins inside 10.0.6.0/24
            Value::prefix(10, 0, 0, 0, 8),
            Value::ip(192, 168, 1, 1),
        ];
        let policy = chain_over(Field::DstIp, &keys);
        let (_, _, flat, tables) = compile_both(&policy);
        assert_eq!(tables.stats().intervals, 1);
        assert!(matches!(
            tables.lookup_at(flat.root()),
            Some(Lookup::Intervals { .. })
        ));
        let pkts: Vec<Packet> = [
            Value::ip(10, 0, 6, 7),    // inner prefix
            Value::ip(10, 1, 0, 1),    // outer prefix only
            Value::ip(192, 168, 1, 1), // exact ip
            Value::ip(192, 168, 1, 2), // miss
            Value::ip(9, 255, 255, 255),
            Value::prefix(10, 0, 6, 0, 24), // prefix-valued header: scan path
            Value::Int(4),                  // wrong kind
        ]
        .into_iter()
        .map(|v| Packet::new().with(Field::DstIp, v))
        .collect();
        assert_equiv(&policy, &pkts);
    }

    #[test]
    fn zero_len_prefix_covers_the_whole_space() {
        let keys = vec![Value::prefix(0, 0, 0, 0, 0), Value::prefix(10, 0, 0, 0, 8)];
        let policy = chain_over(Field::SrcIp, &keys);
        let pkts: Vec<Packet> = [
            Value::ip(0, 0, 0, 0),
            Value::ip(10, 2, 3, 4),
            Value::ip(255, 255, 255, 255),
        ]
        .into_iter()
        .map(|v| Packet::new().with(Field::SrcIp, v))
        .collect();
        assert_equiv(&policy, &pkts);
    }

    #[test]
    fn mixed_equality_kinds_use_a_sorted_table() {
        // Int/Str/Symbol all match by plain equality, so one sorted table
        // covers the mixed-kind run.
        let keys = vec![Value::Int(53), Value::str("evil.test"), Value::sym("SYN")];
        let policy = chain_over(Field::Custom("meta".into()), &keys);
        let (_, _, flat, tables) = compile_both(&policy);
        assert_eq!(tables.stats().sorted, 1);
        assert!(matches!(
            tables.lookup_at(flat.root()),
            Some(Lookup::Sorted { .. })
        ));
        let pkts: Vec<Packet> = [
            Value::Int(53),
            Value::str("evil.test"),
            Value::sym("SYN"),
            Value::Bool(true),
        ]
        .into_iter()
        .map(|v| Packet::new().with(Field::Custom("meta".into()), v))
        .collect();
        assert_equiv(&policy, &pkts);
    }

    #[test]
    fn address_and_equality_kinds_mixed_fall_back_to_scan() {
        // A prefix key matches by containment while an int key matches by
        // equality — no single table covers both, so the run scans.
        let keys = vec![
            Value::Int(53),
            Value::prefix(10, 0, 0, 0, 8),
            Value::str("evil.test"),
        ];
        let policy = chain_over(Field::Custom("meta".into()), &keys);
        let (_, _, flat, tables) = compile_both(&policy);
        assert_eq!(tables.stats().scans, 1);
        assert!(matches!(tables.lookup_at(flat.root()), Some(Lookup::Scan)));
        let pkts: Vec<Packet> = [
            Value::Int(53),
            Value::ip(10, 3, 2, 1),
            Value::ip(11, 0, 0, 1),
            Value::str("evil.test"),
            Value::prefix(10, 0, 0, 0, 8),
        ]
        .into_iter()
        .map(|v| Packet::new().with(Field::Custom("meta".into()), v))
        .collect();
        assert_equiv(&policy, &pkts);
    }

    #[test]
    fn state_tests_stop_the_stateless_prefix() {
        let policy = ite(
            test(Field::SrcPort, Value::Int(53)),
            state_incr("dns", vec![field(Field::DstIp)]).seq(modify(Field::OutPort, Value::Int(6))),
            ite(
                state_test("dns", vec![field(Field::SrcIp)], int(2)),
                drop(),
                modify(Field::OutPort, Value::Int(1)),
            ),
        );
        let (_, _, flat, tables) = compile_both(&policy);
        assert!(tables.stats().state_branches > 0);
        let pkt = Packet::new()
            .with(Field::SrcPort, 80)
            .with(Field::SrcIp, Value::ip(10, 0, 0, 1));
        // The stateless prefix must stop *at* the state branch, not pass it.
        let stop = tables.advance_stateless(&flat, flat.root(), &pkt);
        assert!(!stop.is_leaf());
        assert!(flat.branch_var(stop).is_some());
        // Full walk with a store agrees with the flat walk.
        let store = Store::new();
        assert_eq!(
            tables.walk(&flat, flat.root(), &pkt, &store).unwrap(),
            flat.walk(flat.root(), &pkt, &store).unwrap()
        );
        assert_equiv(
            &policy,
            &[
                Packet::new()
                    .with(Field::SrcPort, 53)
                    .with(Field::SrcIp, Value::ip(1, 1, 1, 1))
                    .with(Field::DstIp, Value::ip(2, 2, 2, 2)),
                pkt,
            ],
        );
    }

    #[test]
    fn every_branch_id_is_a_valid_entry_point() {
        // Packets can resume mid-run on another switch: walking from *any*
        // interior branch id must match the flat walk from the same id.
        let policy = chain_over(
            Field::DstIp,
            &[
                Value::prefix(10, 0, 1, 0, 24),
                Value::prefix(10, 0, 2, 0, 24),
                Value::prefix(10, 0, 0, 0, 16),
                Value::ip(172, 16, 0, 1),
            ],
        )
        .par(chain_over(
            Field::SrcPort,
            &(1i64..9).map(Value::Int).collect::<Vec<_>>(),
        ));
        let (_, _, flat, tables) = compile_both(&policy);
        let store = Store::new();
        let pkts: Vec<Packet> = (0i64..16)
            .map(|i| {
                Packet::new()
                    .with(Field::DstIp, Value::ip(10, 0, (i % 4) as u8, 7))
                    .with(Field::SrcPort, i % 10)
            })
            .collect();
        for b in 0..flat.num_branches() {
            let from = flat.branch_id(b);
            for pkt in &pkts {
                assert_eq!(
                    tables.walk(&flat, from, pkt, &store).unwrap(),
                    flat.walk(from, pkt, &store).unwrap(),
                    "walks diverged from {from:?} on {pkt:?}"
                );
            }
        }
    }

    #[test]
    fn field_field_tests_stay_explicit_branches() {
        // No surface builder produces FieldField tests; build the diagram
        // by hand the way composition would.
        use crate::action::{Action, Leaf};
        use crate::test::VarOrder;
        let mut pool = Pool::new(VarOrder::empty());
        let to1 = pool.leaf(Leaf::single(Action::Modify(Field::OutPort, Value::Int(1))));
        let to2 = pool.leaf(Leaf::single(Action::Modify(Field::OutPort, Value::Int(2))));
        let root = pool.branch(Test::FieldField(Field::SrcIp, Field::DstIp), to1, to2);
        let flat = FlatProgram::from_pool(&pool, root);
        let tables = TableProgram::compile(&flat);
        assert_eq!(tables.num_stages(), 0);
        assert_eq!(tables.stats().field_branches, flat.num_branches());
        let same = Packet::new()
            .with(Field::SrcIp, Value::ip(1, 2, 3, 4))
            .with(Field::DstIp, Value::ip(1, 2, 3, 4));
        let diff = Packet::new()
            .with(Field::SrcIp, Value::ip(1, 2, 3, 4))
            .with(Field::DstIp, Value::ip(4, 3, 2, 1));
        let store = Store::new();
        for pkt in [&same, &diff, &Packet::new()] {
            assert_eq!(
                tables.evaluate(&flat, pkt, &store).unwrap(),
                flat.evaluate(pkt, &store).unwrap()
            );
        }
    }

    #[test]
    fn single_leaf_program_compiles_to_empty_tables() {
        let policy = modify(Field::OutPort, Value::Int(3));
        let (_, _, flat, tables) = compile_both(&policy);
        assert_eq!(tables.num_stages(), 0);
        let pkt = Packet::new();
        assert_eq!(
            tables.advance_stateless(&flat, flat.root(), &pkt),
            flat.root()
        );
        assert_equiv(&policy, &[pkt]);
    }

    #[test]
    fn drop_leaves_are_preserved() {
        let policy = chain_over(Field::SrcPort, &[Value::Int(1), Value::Int(2)]);
        // Everything not matching 1 or 2 hits the drop default.
        assert_equiv(
            &policy,
            &(0..4)
                .map(|p| Packet::new().with(Field::SrcPort, p))
                .collect::<Vec<_>>(),
        );
    }
}
